"""Live (adaptive) sampled simulation: controller behaviour and accuracy.

Three layers of contract:

* **Config validation** — :class:`LiveSamplingConfig` rejects nonsense
  knobs, and the jitter seed makes runs bit-reproducible.
* **Phase-detector edge cases** — a constant-CPI stream never triggers a
  re-sample (the span grows monotonically to its cap), an abrupt phase
  change at a window boundary collapses the span and is counted, and a
  trace shorter than one warm-up window degrades to a fully detailed
  run instead of crashing or extrapolating from nothing.
* **Accuracy** — live-sampled chip CPI stays within 3 % of the full run
  on the canonical validation mixes (including the sampling-hostile
  all-memory-bound mix), solo runs stay within 5 %, and a detail-only
  configuration reproduces the full run *exactly*, proving the lockstep
  window machinery itself is bit-faithful (every residual error comes
  from priced fast-forwards, not from the sampling loop).
"""

import pytest

from repro.core.designs import ChipDesign, get_design
from repro.core.scheduler import Scheduler
from repro.microarch.config import BIG
from repro.sim.multicore import MulticoreSimulator, ThreadSim
from repro.sim.sampling import (
    LiveController,
    LiveSamplingConfig,
    execute_sampled_live,
)
from repro.workloads.spec import get_profile

SINGLE = ChipDesign(name="live-1B", cores=(BIG,))


def _chip_threads(design_name, mix):
    design = get_design(design_name)
    placement = Scheduler(design, smt=True).place(
        [get_profile(name) for name in mix]
    )
    return design, [
        ThreadSim(spec.profile, core_index=core_index, seed=11 + slot)
        for core_index, specs in enumerate(placement.core_threads)
        for slot, spec in enumerate(specs)
    ]


class TestLiveSamplingConfig:
    def test_defaults_are_valid(self):
        cfg = LiveSamplingConfig()
        assert 0.0 < cfg.target_error < 1.0
        assert cfg.window == max(2 * cfg.warmup, cfg.min_window)

    def test_target_error_bounds(self):
        with pytest.raises(ValueError, match="target_error"):
            LiveSamplingConfig(target_error=0.0)
        with pytest.raises(ValueError, match="target_error"):
            LiveSamplingConfig(target_error=1.5)

    def test_span_ordering(self):
        with pytest.raises(ValueError, match="max_span"):
            LiveSamplingConfig(min_span=2_000, max_span=1_000)

    def test_max_window_must_cover_base_window(self):
        with pytest.raises(ValueError, match="max_window"):
            LiveSamplingConfig(min_window=4_000, max_window=1_000)

    def test_grow_shrink_must_not_invert(self):
        with pytest.raises(ValueError, match="grow"):
            LiveSamplingConfig(grow=0.5)

    def test_max_skip_must_be_positive(self):
        with pytest.raises(ValueError, match="max_skip"):
            LiveSamplingConfig(max_skip=0.0)

    def test_same_jitter_seed_is_bit_reproducible(self):
        results = []
        for _ in range(2):
            sim = MulticoreSimulator(SINGLE)
            hierarchy, cores = sim.prepare(
                [ThreadSim(get_profile("mcf"), core_index=0)], 6_000
            )
            flat, total, diag = execute_sampled_live(
                hierarchy, cores, LiveSamplingConfig(jitter_seed=7)
            )
            results.append((flat[0][1].stats.cycles, total, diag))
        assert results[0][0] == results[1][0]
        assert results[0][1] == results[1][1]
        assert results[0][2] == results[1][2]


class TestPhaseDetectorEdgeCases:
    def _stable_controller(self):
        cfg = LiveSamplingConfig()
        ctl = LiveController(cfg)
        # Identical windows with a healthy model error: no phase change.
        for _ in range(12):
            ctl.observe_window(1000, 1500, 20, 10, 5, 8, model_error=0.005)
        return cfg, ctl

    def test_constant_cpi_never_resamples(self):
        cfg, ctl = self._stable_controller()
        assert ctl.phase_changes == 0
        # Stable, well-predicted behaviour earns the span cap.
        assert ctl.span == cfg.max_span
        assert ctl.window == cfg.window

    def test_abrupt_phase_change_collapses_span(self):
        cfg, ctl = self._stable_controller()
        grown = ctl.span
        # The next window boundary reveals a very different signature
        # (CPI tripled, misses an order of magnitude up).
        ctl.observe_window(1000, 4500, 200, 120, 80, 8, model_error=0.005)
        assert ctl.phase_changes == 1
        assert ctl.span < grown
        # The reference resets to the new phase: an identical follow-up
        # window is *not* another phase change.
        ctl.observe_window(1000, 4500, 200, 120, 80, 8, model_error=0.005)
        assert ctl.phase_changes == 1

    def test_error_overrun_throttles_the_budget(self):
        # Rising model error is the *budget's* lever, not the span's:
        # the warmed fraction is capped at target_error / err_ewma, so a
        # model that stops generalizing loses its fast-forward allowance
        # even though no phase change fired.
        cfg, ctl = self._stable_controller()
        healthy = ctl.warm_budget(100_000, 0)
        for _ in range(10):
            ctl.observe_window(
                1000, 1500, 20, 10, 5, 8, model_error=50 * cfg.target_error
            )
        assert ctl.phase_changes == 0
        assert ctl.warm_budget(100_000, 0) < healthy

    def test_unproven_model_earns_no_fast_forward(self):
        ctl = LiveController(LiveSamplingConfig())
        assert ctl.warm_budget(10_000, 0) == 0  # err_ewma still None

    def test_max_skip_caps_the_budget(self):
        cfg = LiveSamplingConfig(max_skip=0.05)
        ctl = LiveController(cfg)
        for _ in range(6):
            ctl.observe_window(1000, 1500, 20, 10, 5, 8, model_error=1e-6)
        # The model looks perfect, so only the hard cap limits the skip.
        detailed = 100_000
        budget = ctl.warm_budget(detailed, 0, max_fraction=cfg.max_skip)
        total = detailed + ctl.window
        assert budget <= cfg.max_skip * (total + budget) + 1

    def test_trace_shorter_than_one_warmup_window_runs_detailed(self):
        sim = MulticoreSimulator(SINGLE)
        budget = 300  # below the 500-instruction base window
        threads = [ThreadSim(get_profile("hmmer"), core_index=0)]
        full = sim.run(threads, budget)
        hierarchy, cores = sim.prepare(threads, budget)
        flat, total, diag = execute_sampled_live(hierarchy, cores)
        stats = flat[0][1].stats
        assert stats.instructions == budget
        # Nothing was fast-forwarded; the run *is* the full run.
        assert diag.warmed_instructions == 0
        assert diag.detailed_fraction == 1.0
        assert stats.cycles == full.thread_stats[0][1].cycles


@pytest.mark.slow
class TestLiveAccuracy:
    #: The chip-level contract from the validation suite: live-sampled
    #: total chip IPC within 3 % of the full run.
    CHIP_BOUND = 0.03

    def _chip_error(self, design_name, mix, instructions=10_000):
        design, threads = _chip_threads(design_name, mix)
        sim = MulticoreSimulator(design)
        full = sim.run(list(threads), instructions)
        live = MulticoreSimulator(design).run(
            list(threads), instructions, sampling="live"
        )
        return abs(live.total_ipc - full.total_ipc) / full.total_ipc

    def test_canonical_smt_chip_within_3_percent(self):
        err = self._chip_error(
            "4B",
            (
                "mcf", "tonto", "hmmer", "libquantum",
                "omnetpp", "calculix", "astar", "gobmk",
            ),
        )
        assert err < self.CHIP_BOUND, f"4B chip error {100 * err:.2f}%"

    def test_memory_bound_chip_within_3_percent(self):
        # The hostile case: every thread memory-bound, contention
        # everywhere the estimator extrapolates.
        err = self._chip_error("3B2m", ("mcf", "libquantum", "milc", "lbm"))
        assert err < self.CHIP_BOUND, f"3B2m chip error {100 * err:.2f}%"

    @pytest.mark.parametrize("name", ["mcf", "libquantum", "hmmer", "astar"])
    def test_solo_within_5_percent(self, name):
        sim = MulticoreSimulator(SINGLE)
        threads = [ThreadSim(get_profile(name), core_index=0)]
        full = sim.run(threads, 30_000)
        live = sim.run(threads, 30_000, sampling="live")
        f = full.ipc_of(0)
        err = abs(live.ipc_of(0) - f) / f
        assert err < 0.05, f"{name}: live solo error {100 * err:.2f}%"

    def test_detail_only_config_is_exact(self):
        # With a target error so tight the controller never earns a
        # fast-forward, the live loop must reproduce the full run *bit
        # for bit* — windows, lockstep bells, prefix accounting and
        # boundary snapshots introduce no approximation of their own.
        design, threads = _chip_threads(
            "3B2m", ("mcf", "libquantum", "milc", "lbm")
        )
        sim = MulticoreSimulator(design)
        full = sim.run(list(threads), 10_000)
        hierarchy, cores = MulticoreSimulator(design).prepare(
            list(threads), 10_000
        )
        flat, total, diag = execute_sampled_live(
            hierarchy, cores, LiveSamplingConfig(target_error=1e-9)
        )
        assert diag.warmed_instructions == 0
        live_cycles = sorted(t.stats.cycles for _, t in flat)
        full_cycles = sorted(s.cycles for _, s in full.thread_stats)
        assert live_cycles == full_cycles

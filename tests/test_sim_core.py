"""Cycle-level pipeline models: OoO and in-order cores, SMT sharing."""

import pytest

from repro.memory.hierarchy import MemoryHierarchy
from repro.microarch.config import BIG, MEDIUM, SMALL
from repro.microarch.uncore import DEFAULT_UNCORE
from repro.sim.core import PipelineCore
from repro.workloads.profiles import BenchmarkProfile, MissRateCurve
from repro.workloads.spec import get_profile
from repro.workloads.tracegen import TraceGenerator

QUIET = MissRateCurve(0.05, 0.3, floor_mpki=0.01)


def pure_compute(ilp=4.0, name="pure"):
    return BenchmarkProfile(
        name=name,
        ilp=ilp,
        ilp_inorder=min(ilp, 1.5),
        mem_frac=0.01,
        branch_frac=0.01,
        branch_mpki=0.01,
        dcurve=QUIET,
        icurve=QUIET,
        mlp=1.0,
    )


def run_core(core, profiles, n=6000, seeds=None):
    hierarchy = MemoryHierarchy((core,), DEFAULT_UNCORE)
    traces = []
    for i, p in enumerate(profiles):
        gen = TraceGenerator(p, seed=(seeds[i] if seeds else 7 + i))
        hierarchy.warm(0, gen.warm_addresses())
        traces.append(gen.generate(n))
    pipeline = PipelineCore(core, 0, hierarchy, traces)
    pipeline.run()
    return pipeline


class TestOutOfOrder:
    def test_high_ilp_code_approaches_width(self):
        pipeline = run_core(BIG, [pure_compute()])
        ipc = pipeline.threads[0].stats.ipc
        assert 2.5 < ipc <= BIG.width

    def test_low_ilp_code_is_slower(self):
        fast = run_core(BIG, [pure_compute(4.0)]).threads[0].stats.ipc
        slow = run_core(BIG, [pure_compute(1.2, "slow")]).threads[0].stats.ipc
        assert slow < fast

    def test_memory_bound_profile_much_slower(self):
        compute = run_core(BIG, [pure_compute()]).threads[0].stats.ipc
        memory = run_core(BIG, [get_profile("mcf")]).threads[0].stats.ipc
        assert memory < compute / 2

    def test_all_instructions_retired(self):
        pipeline = run_core(BIG, [get_profile("tonto")], n=3000)
        assert pipeline.threads[0].cursor == 3000

    def test_branch_mispredicts_counted(self):
        pipeline = run_core(BIG, [get_profile("gobmk")], n=8000)
        assert pipeline.threads[0].stats.branch_mispredicts > 10


class TestInOrder:
    def test_slower_than_out_of_order(self):
        big = run_core(BIG, [get_profile("tonto")]).threads[0].stats.ipc
        small = run_core(SMALL, [get_profile("tonto")]).threads[0].stats.ipc
        assert small < big

    def test_ooo_advantage_substantial_on_latency_bound_code(self):
        # The reorder window overlaps long-latency misses that stall-on-use
        # must expose serially: the big core must hold a clear (>2x) lead
        # on the cache-missing profile, and stay within a sane band.
        def ratio(profile):
            b = run_core(BIG, [profile]).threads[0].stats.ipc
            s = run_core(SMALL, [profile]).threads[0].stats.ipc
            return b / s

        for bench in ("mcf", "hmmer", "libquantum"):
            assert 1.5 < ratio(get_profile(bench)) < 5.0
        assert ratio(get_profile("mcf")) > 2.0

    def test_fgmt_two_threads_improve_throughput(self):
        p = get_profile("mcf")
        one = run_core(SMALL, [p], n=4000)
        two = run_core(SMALL, [p, p], n=4000)
        total_one = one.threads[0].stats.ipc
        total_two = sum(t.stats.ipc for t in two.threads)
        assert total_two > total_one * 1.1


class TestSmt:
    def test_smt_raises_core_throughput(self):
        p = get_profile("mcf")
        one = run_core(BIG, [p], n=4000)
        four = run_core(BIG, [p] * 4, n=4000)
        assert sum(t.stats.ipc for t in four.threads) > one.threads[0].stats.ipc

    def test_per_thread_ipc_drops_under_smt(self):
        p = get_profile("hmmer")
        one = run_core(BIG, [p], n=4000).threads[0].stats.ipc
        four = run_core(BIG, [p] * 4, n=4000)
        assert all(t.stats.ipc < one for t in four.threads)

    def test_context_limit_enforced(self):
        hierarchy = MemoryHierarchy((BIG,), DEFAULT_UNCORE)
        traces = [TraceGenerator(pure_compute()).generate(100)] * 7
        with pytest.raises(ValueError, match="hardware"):
            PipelineCore(BIG, 0, hierarchy, traces)

    def test_empty_traces_rejected(self):
        hierarchy = MemoryHierarchy((BIG,), DEFAULT_UNCORE)
        with pytest.raises(ValueError, match="at least one"):
            PipelineCore(BIG, 0, hierarchy, [])

    def test_runaway_guard(self):
        hierarchy = MemoryHierarchy((BIG,), DEFAULT_UNCORE)
        trace = TraceGenerator(pure_compute()).generate(5000)
        pipeline = PipelineCore(BIG, 0, hierarchy, [trace])
        with pytest.raises(RuntimeError, match="cycles"):
            pipeline.run(max_cycles=10)


class TestMediumCore:
    def test_between_big_and_small(self):
        p = get_profile("tonto")
        big = run_core(BIG, [p]).threads[0].stats.ipc
        med = run_core(MEDIUM, [p]).threads[0].stats.ipc
        small = run_core(SMALL, [p]).threads[0].stats.ipc
        assert small < med < big


class TestFetchPolicyCycleTier:
    def test_invalid_policy_rejected(self):
        from repro.memory.hierarchy import MemoryHierarchy
        from repro.microarch.uncore import DEFAULT_UNCORE

        hierarchy = MemoryHierarchy((BIG,), DEFAULT_UNCORE)
        trace = TraceGenerator(pure_compute()).generate(100)
        with pytest.raises(ValueError, match="fetch_policy"):
            PipelineCore(BIG, 0, hierarchy, [trace], fetch_policy="magic")

    def test_icount_runs_and_retires_everything(self):
        from repro.memory.hierarchy import MemoryHierarchy
        from repro.microarch.uncore import DEFAULT_UNCORE

        hierarchy = MemoryHierarchy((BIG,), DEFAULT_UNCORE)
        traces = [
            TraceGenerator(get_profile("mcf"), seed=s).generate(3000)
            for s in (1, 2)
        ]
        core = PipelineCore(BIG, 0, hierarchy, traces, fetch_policy="icount")
        core.run()
        assert all(t.cursor == 3000 for t in core.threads)

"""Command-line interface."""

import pytest

from repro.cli import _figure_registry, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["list-designs"],
            ["list-benchmarks"],
            ["list-experiments"],
            ["evaluate", "--mix", "mcf"],
            ["curve", "--design", "8m"],
            ["figure", "table1"],
            ["figure", "fig03", "--jobs", "4", "--cache-dir", "/tmp/x"],
            ["sweep", "--design", "4B", "--jobs", "2"],
            ["cache", "stats"],
            ["cache", "clear", "--cache-dir", "/tmp/x"],
            ["findings"],
            ["validate"],
            ["list-scenarios"],
            ["explore", "--scenario", "datacenter"],
            ["explore", "--scenario", "bursty", "--design", "4B,8m",
             "--ga", "2", "--budget", "0.3", "--jobs", "2"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)


class TestCommands:
    def test_list_designs(self, capsys):
        assert main(["list-designs"]) == 0
        out = capsys.readouterr().out
        assert "4B" in out and "1B15s" in out

    def test_list_benchmarks(self, capsys):
        assert main(["list-benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "libquantum" in out and "blackscholes" in out

    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig15" in out and "ext-acs" in out

    def test_evaluate(self, capsys):
        assert main(["evaluate", "--design", "4B", "--mix", "mcf,tonto"]) == 0
        out = capsys.readouterr().out
        assert "STP" in out and "power" in out

    def test_evaluate_empty_mix(self, capsys):
        assert main(["evaluate", "--mix", " , "]) == 2

    def test_evaluate_no_smt_flag(self, capsys):
        assert main(["evaluate", "--mix", "mcf", "--no-smt"]) == 0
        assert "SMT             : off" in capsys.readouterr().out

    def test_list_scenarios(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "datacenter" in out and "flash-crowd" in out

    def test_explore(self, capsys):
        assert main(
            ["explore", "--scenario", "flash-crowd", "--design", "4B,8m,20s",
             "--max-threads", "6", "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "winner" in out and "full-grid" in out

    def test_explore_unknown_scenario(self, capsys):
        assert main(["explore", "--scenario", "nope", "--no-cache"]) == 2

    def test_explore_unknown_design(self, capsys):
        assert main(
            ["explore", "--scenario", "steady", "--design", "9Z",
             "--no-cache"]
        ) == 2

    def test_curve(self, capsys):
        assert main(["curve", "--design", "20s", "--max-threads", "4"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 4

    def test_figure_table1(self, capsys):
        assert main(["figure", "table1"]) == 0
        assert "ROB size" in capsys.readouterr().out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_registry_covers_all_paper_figures(self):
        registry = _figure_registry()
        for fig in [f"fig{i:02d}" for i in range(1, 18)] + ["table1"]:
            assert fig in registry


class TestSweepAndCache:
    def test_sweep_writes_store_and_cache_stats_reads_it(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = [
            "sweep", "--design", "4B", "--max-threads", "2",
            "--jobs", "1", "--cache-dir", cache_dir,
        ]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "mean STP" in cold.out
        assert "store hits=0" in cold.err

        # Warm run against the same cache dir: everything served from disk.
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out  # numerically identical table
        assert "(100%)" in warm.err

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        stats_out = capsys.readouterr().out
        assert "records" in stats_out and "100.0%" in stats_out

    def test_cache_stats_json(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        main(["sweep", "--design", "8m", "--max-threads", "1",
              "--cache-dir", cache_dir])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["store"]["records"] > 0
        assert payload["last_run"]["units_total"] > 0

    def test_cache_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        main(["sweep", "--design", "8m", "--max-threads", "1",
              "--cache-dir", cache_dir])
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "evicted" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["store"]["records"] == 0

    def test_sweep_no_cache_flag(self, tmp_path, capsys):
        assert main(["sweep", "--design", "8m", "--max-threads", "1",
                     "--no-cache"]) == 0
        assert "mean STP" in capsys.readouterr().out

    def test_sweep_unknown_design(self, capsys):
        assert main(["sweep", "--design", "5Z", "--max-threads", "1",
                     "--no-cache"]) == 2
        assert "not in this study" in capsys.readouterr().err

    def test_sweep_empty_design_list(self, capsys):
        assert main(["sweep", "--design", " , ", "--no-cache"]) == 2

    def test_figure_with_engine_matches_serial(self, tmp_path, capsys):
        from repro.experiments.context import get_engine

        assert main(["figure", "fig02", "--json"]) == 0
        serial = capsys.readouterr().out
        cache_dir = str(tmp_path / "cache")
        assert main(["figure", "fig02", "--json", "--jobs", "2",
                     "--cache-dir", cache_dir]) == 0
        engine_run = capsys.readouterr()
        assert engine_run.out == serial
        assert "engine:" in engine_run.err
        # The figure command uninstalls its engine when done.
        assert get_engine() is None


class TestJsonExport:
    def test_figure_json(self, capsys):
        assert main(["figure", "fig02", "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "Figure 2"
        assert len(payload["rows"]) == 9

    def test_table_to_json_roundtrip(self):
        import json

        from repro.experiments.base import ExperimentTable

        t = ExperimentTable("X", "title", columns=["a", "b"])
        t.add_row(a=1, b=2.5)
        t.notes.append("n")
        data = json.loads(t.to_json())
        assert data["rows"] == [{"a": 1, "b": 2.5}]
        assert data["notes"] == ["n"]


@pytest.mark.slow
class TestReport:
    def test_report_restricted_set(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        from repro.experiments.report import generate_report

        text = generate_report(include=["table1", "fig02"])
        assert "Table 1" in text
        assert "Figure 2" in text
        assert "eleven findings" in text

    def test_report_unknown_experiment(self):
        from repro.experiments.report import generate_report

        import pytest as _pytest

        with _pytest.raises(ValueError, match="unknown experiments"):
            generate_report(include=["fig99"])

"""Chip-level contention solver: caches, bus, DRAM banks, fixed point."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.designs import ChipDesign, get_design
from repro.interval.contention import (
    ChipModel,
    Placement,
    ThreadSpec,
    _demand_shares,
    isolated_ips,
)
from repro.microarch.config import BIG, SMALL
from repro.microarch.uncore import DEFAULT_UNCORE, HIGH_BANDWIDTH_UNCORE
from repro.workloads.spec import get_profile


def placement_on(design, assignment):
    """assignment: list per core of benchmark names (or (name, duty))."""
    core_threads = []
    for core_list in assignment:
        specs = []
        for item in core_list:
            if isinstance(item, tuple):
                name, duty = item
                specs.append(ThreadSpec(get_profile(name), duty_cycle=duty))
            else:
                specs.append(ThreadSpec(get_profile(item)))
        core_threads.append(specs)
    return Placement.from_lists(core_threads)


class TestDemandShares:
    def test_equal_weights_split_evenly(self):
        shares = _demand_shares(100.0, [1.0, 1.0], [1.0, 1.0])
        assert shares == [pytest.approx(50.0)] * 2

    def test_hungry_thread_gets_more(self):
        shares = _demand_shares(100.0, [3.0, 1.0], [1.0, 1.0])
        assert shares[0] > shares[1]
        assert sum(shares) == pytest.approx(100.0)

    def test_single_thread_gets_everything(self):
        assert _demand_shares(100.0, [2.5], [1.0]) == [pytest.approx(100.0)]

    def test_time_shared_thread_sees_nearly_full_cache(self):
        # With many low-duty co-residents, a thread's share while running
        # approaches the full capacity.
        shares = _demand_shares(100.0, [1.0] * 6, [1.0 / 6] * 6)
        assert all(s > 50.0 for s in shares)

    def test_empty(self):
        assert _demand_shares(100.0, [], []) == []

    @given(
        weights=st.lists(st.floats(0.01, 50.0), min_size=1, max_size=8),
    )
    @settings(max_examples=60)
    def test_full_duty_shares_partition_capacity(self, weights):
        duties = [1.0] * len(weights)
        shares = _demand_shares(64.0, weights, duties)
        assert sum(shares) == pytest.approx(64.0)
        assert all(s > 0 for s in shares)

    @given(
        weights=st.lists(st.floats(0.01, 50.0), min_size=1, max_size=8),
        duties=st.lists(st.floats(0.05, 1.0), min_size=8, max_size=8),
    )
    @settings(max_examples=60)
    def test_shares_never_exceed_capacity(self, weights, duties):
        shares = _demand_shares(64.0, weights, duties[: len(weights)])
        assert all(0 < s <= 64.0 + 1e-9 for s in shares)


class TestPlacementValidation:
    def test_wrong_core_count_rejected(self):
        model = ChipModel(get_design("4B"))
        with pytest.raises(ValueError, match="core slots"):
            model.evaluate(placement_on(get_design("8m"), [["tonto"]] * 8))

    def test_too_many_smt_threads_rejected(self):
        design = get_design("4B")
        bad = placement_on(design, [["tonto"] * 7, [], [], []])
        with pytest.raises(ValueError, match="SMT contexts"):
            ChipModel(design).evaluate(bad, smt=True)

    def test_time_sharing_allowed_without_smt(self):
        design = get_design("4B")
        okay = placement_on(
            design, [[("tonto", 0.5), ("mcf", 0.5)], [], [], []]
        )
        result = ChipModel(design).evaluate(okay, smt=False)
        assert len(result.threads) == 2

    def test_zero_duty_rejected(self):
        with pytest.raises(ValueError, match="duty_cycle"):
            ThreadSpec(get_profile("tonto"), duty_cycle=0.0)


class TestChipBehaviour:
    def test_single_thread_matches_isolated(self):
        design = get_design("4B")
        p = placement_on(design, [["tonto"], [], [], []])
        result = ChipModel(design).evaluate(p)
        iso = isolated_ips(get_profile("tonto"), BIG)
        assert result.threads[0].ips == pytest.approx(iso, rel=1e-6)

    def test_bus_saturates_for_streaming_threads(self):
        design = get_design("4B")
        p = placement_on(design, [["libquantum"] * 6] * 4)
        result = ChipModel(design).evaluate(p)
        assert result.bus_utilization > 0.8
        assert result.mem_latency_inflation > 2.0

    def test_compute_threads_leave_bus_idle(self):
        design = get_design("4B")
        p = placement_on(design, [["hmmer"], [], [], []])
        result = ChipModel(design).evaluate(p)
        assert result.bus_utilization < 0.2
        assert result.mem_latency_inflation < 1.2

    def test_throughput_monotone_in_thread_count(self):
        design = get_design("4B")
        model = ChipModel(design)
        one = model.evaluate(placement_on(design, [["tonto"], [], [], []]))
        four = model.evaluate(placement_on(design, [["tonto"]] * 4))
        assert four.total_ips > one.total_ips * 2

    def test_co_runner_interference(self):
        # A cache-hungry co-runner on the same core slows mcf down.
        design = get_design("4B")
        model = ChipModel(design)
        alone = model.evaluate(placement_on(design, [["mcf"], [], [], []]))
        shared = model.evaluate(placement_on(design, [["mcf", "omnetpp"], [], [], []]))
        assert shared.threads[0].ips < alone.threads[0].ips

    def test_higher_bandwidth_helps_streaming(self):
        # Gains are modest because the eight DRAM banks become the next
        # bottleneck (8 banks / 45 ns ~ 11 GB/s of line fills) — matching
        # the paper's "performance increases ... albeit by a small margin".
        base = get_design("4B")
        fast = base.with_uncore(HIGH_BANDWIDTH_UNCORE)
        p = [["libquantum"] * 6] * 4
        slow_ips = ChipModel(base).evaluate(placement_on(base, p)).total_ips
        fast_ips = ChipModel(fast).evaluate(placement_on(fast, p)).total_ips
        assert fast_ips > slow_ips * 1.05

    def test_deterministic(self):
        design = get_design("3B5s")
        p = placement_on(design, [["mcf"], ["tonto"], ["libquantum"]] + [[]] * 5)
        a = ChipModel(design).evaluate(p)
        b = ChipModel(design).evaluate(p)
        assert [t.ips for t in a.threads] == [t.ips for t in b.threads]

    def test_empty_cores_report_zero_utilization(self):
        design = get_design("4B")
        result = ChipModel(design).evaluate(
            placement_on(design, [["tonto"], [], [], []])
        )
        assert result.core_utilizations[1] == 0.0
        assert result.core_utilizations[0] > 0.0

    def test_hf_cores_convert_latency_correctly(self):
        # Same profile, same uncore: a 3.33 GHz small core sees more cycles
        # of memory latency but still wins on wall-clock rate.
        from repro.microarch.config import SMALL_HF

        slow = isolated_ips(get_profile("hmmer"), SMALL)
        fast = isolated_ips(get_profile("hmmer"), SMALL_HF)
        assert fast > slow
        assert fast < slow * 3.33 / 2.66 + 1e9  # sublinear in frequency


class TestIsolatedIps:
    def test_reference_uses_big_core_by_default(self):
        tonto = get_profile("tonto")
        assert isolated_ips(tonto) == isolated_ips(tonto, BIG)

    def test_small_core_slower(self):
        tonto = get_profile("tonto")
        assert isolated_ips(tonto, SMALL) < isolated_ips(tonto, BIG)

"""Prefetcher models and their hierarchy integration."""

import pytest

from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.prefetch import NextLinePrefetcher, StridePrefetcher
from repro.microarch.config import BIG
from repro.microarch.uncore import DEFAULT_UNCORE


class TestNextLine:
    def test_prefetches_after_miss(self):
        p = NextLinePrefetcher(degree=2)
        targets = p.observe(pc=0x100, address=0x1000, was_miss=True)
        assert targets == [0x1040, 0x1080]

    def test_quiet_on_hits(self):
        p = NextLinePrefetcher()
        assert p.observe(0x100, 0x1000, was_miss=False) == []

    def test_stats(self):
        p = NextLinePrefetcher(degree=1)
        p.observe(0, 0, True)
        p.observe(0, 0, False)
        assert p.stats.observations == 2
        assert p.stats.issued == 1


class TestStride:
    def test_detects_constant_stride(self):
        p = StridePrefetcher(degree=2, confidence_threshold=2)
        pc = 0x400
        targets = []
        for i in range(6):
            targets = p.observe(pc, 0x1000 + i * 256, was_miss=True)
        assert targets == [0x1000 + 5 * 256 + 256, 0x1000 + 5 * 256 + 512]

    def test_no_prefetch_before_confidence(self):
        p = StridePrefetcher(confidence_threshold=2)
        pc = 0x400
        assert p.observe(pc, 0x1000, True) == []
        assert p.observe(pc, 0x1100, True) == []  # stride learned, conf 0

    def test_stride_change_resets(self):
        p = StridePrefetcher(confidence_threshold=1)
        pc = 0x400
        p.observe(pc, 0x1000, True)
        p.observe(pc, 0x1100, True)
        p.observe(pc, 0x1200, True)
        assert p.observe(pc, 0x5000, True) == []  # broken stride

    def test_distinct_pcs_tracked_separately(self):
        p = StridePrefetcher(confidence_threshold=1, degree=1)
        for i in range(4):
            a = p.observe(0x400, 0x1000 + i * 64, True)
            b = p.observe(0x800, 0x9000 + i * 4096, True)
        assert a == [0x1000 + 3 * 64 + 64]
        assert b == [0x9000 + 3 * 4096 + 4096]

    def test_table_bounded(self):
        p = StridePrefetcher(table_entries=4)
        for pc in range(0, 4096, 4):
            p.observe(pc, pc * 16, True)
        assert len(p._table) <= 4 + 1

    def test_negative_targets_dropped(self):
        p = StridePrefetcher(confidence_threshold=1, degree=2)
        pc = 0x400
        p.observe(pc, 0x300, True)
        p.observe(pc, 0x200, True)
        targets = p.observe(pc, 0x100, True)
        assert all(t >= 0 for t in targets)


class TestHierarchyIntegration:
    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="prefetcher"):
            MemoryHierarchy((BIG,), DEFAULT_UNCORE, prefetcher="oracle")

    def test_nextline_turns_stream_misses_into_hits(self):
        plain = MemoryHierarchy((BIG,), DEFAULT_UNCORE)
        fetching = MemoryHierarchy((BIG,), DEFAULT_UNCORE, prefetcher="nextline")
        t = 0.0
        plain_dram = fetch_dram = 0
        for i in range(200):
            addr = 0x100000 + i * 64  # pure streaming
            if plain.data_access(0, addr, t).level == "dram":
                plain_dram += 1
            if fetching.data_access(0, addr, t, pc=0x40).level == "dram":
                fetch_dram += 1
            t += 100.0
        assert fetch_dram < plain_dram / 4

    def test_stride_covers_large_steps(self):
        fetching = MemoryHierarchy((BIG,), DEFAULT_UNCORE, prefetcher="stride")
        t = 0.0
        dram_hits = 0
        for i in range(100):
            addr = 0x100000 + i * 1024  # stride of 16 lines
            if fetching.data_access(0, addr, t, pc=0x40).level == "dram":
                dram_hits += 1
            t += 100.0
        assert dram_hits < 30  # most covered after warm-up

    def test_prefetch_traffic_reaches_dram(self):
        fetching = MemoryHierarchy((BIG,), DEFAULT_UNCORE, prefetcher="nextline")
        fetching.data_access(0, 0x100000, 0.0, pc=0x40)  # miss -> 2 prefetches
        assert fetching.dram.stats.requests == 3

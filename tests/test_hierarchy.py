"""Memory hierarchy composition: levels, latencies, sharing."""

import pytest

from repro.memory.hierarchy import MemoryHierarchy
from repro.microarch.config import BIG, SMALL
from repro.microarch.uncore import DEFAULT_UNCORE


@pytest.fixture()
def hierarchy():
    return MemoryHierarchy((BIG, BIG), DEFAULT_UNCORE)


class TestLevels:
    def test_cold_access_goes_to_dram(self, hierarchy):
        result = hierarchy.data_access(0, 0x1000, 0.0)
        assert result.level == "dram"

    def test_second_access_hits_l1(self, hierarchy):
        hierarchy.data_access(0, 0x1000, 0.0)
        result = hierarchy.data_access(0, 0x1000, 100.0)
        assert result.level == "l1"

    def test_latencies_increase_down_the_hierarchy(self, hierarchy):
        cold = hierarchy.data_access(0, 0x2000, 0.0)
        warm = hierarchy.data_access(0, 0x2000, 100.0)
        assert cold.latency_ns > warm.latency_ns
        assert warm.latency_ns == pytest.approx(
            BIG.l1d.latency_cycles / BIG.frequency_ghz
        )

    def test_llc_shared_across_cores(self, hierarchy):
        # Core 0 brings a line to the LLC; core 1's first access finds it
        # there (not in its private levels).
        hierarchy.data_access(0, 0x3000, 0.0)
        result = hierarchy.data_access(1, 0x3000, 100.0)
        assert result.level == "llc"

    def test_private_caches_not_shared(self, hierarchy):
        hierarchy.data_access(0, 0x4000, 0.0)
        hierarchy.data_access(0, 0x4000, 50.0)  # in core 0's L1 now
        result = hierarchy.data_access(1, 0x4000, 100.0)
        assert result.level in ("llc", "dram")  # never l1/l2 of core 1

    def test_instruction_access_separate_path(self, hierarchy):
        cold = hierarchy.instruction_access(0, 0x8000, 0.0)
        warm = hierarchy.instruction_access(0, 0x8000, 100.0)
        assert cold.level == "dram"
        assert warm.level == "l1"

    def test_warm_preloads_all_levels(self, hierarchy):
        hierarchy.warm(0, [0x9000])
        assert hierarchy.data_access(0, 0x9000, 0.0).level == "l1"

    def test_warm_respects_capacity(self, hierarchy):
        # Warming far more lines than L1 capacity leaves only the most
        # recent ones there; older ones still hit in L2/LLC.
        lines = [0x100000 + 64 * i for i in range(4096)]
        hierarchy.warm(0, lines)
        early = hierarchy.data_access(0, lines[0], 0.0)
        late = hierarchy.data_access(0, lines[-1], 0.0)
        assert late.level == "l1"
        assert early.level in ("l2", "llc")


class TestFrequencyConversion:
    def test_small_core_latency_in_ns(self):
        h = MemoryHierarchy((SMALL,), DEFAULT_UNCORE)
        h.data_access(0, 0x1000, 0.0)
        warm = h.data_access(0, 0x1000, 100.0)
        assert warm.latency_ns == pytest.approx(
            SMALL.l1d.latency_cycles / SMALL.frequency_ghz
        )


class TestLlcWritebacks:
    def test_dirty_llc_victims_reach_dram(self):
        from repro.microarch.config import CacheConfig
        from repro.microarch.uncore import UncoreConfig
        from repro.util import KB

        # A tiny LLC so evictions happen quickly.
        uncore = UncoreConfig(llc=CacheConfig(4 * KB, 2, latency_cycles=10))
        h = MemoryHierarchy((BIG,), uncore)
        # Write lines that all land in the same LLC set and overflow it.
        set_stride = uncore.llc.num_sets * 64
        for i in range(8):
            h.data_access(0, i * set_stride, float(i) * 1000, is_write=True)
        demand_fills = 8
        assert h.dram.stats.requests > demand_fills  # writebacks added traffic

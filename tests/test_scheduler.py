"""Scheduling policy: big-first, spread-before-SMT, co-schedule quality."""

import pytest

from repro.core.designs import get_design
from repro.core.scheduler import Scheduler, big_core_affinity, optimize_coschedule
from repro.interval.contention import ChipModel
from repro.microarch.config import SMALL
from repro.workloads.spec import SPEC_ORDER, get_profile


class TestSlotCountsSmt:
    def test_spread_before_smt(self):
        counts = Scheduler(get_design("4B"), smt=True).slot_counts(4)
        assert counts == [1, 1, 1, 1]

    def test_stacking_after_spread(self):
        counts = Scheduler(get_design("4B"), smt=True).slot_counts(10)
        assert sum(counts) == 10
        assert all(c >= 2 for c in counts)  # everyone spread first

    def test_full_capacity(self):
        counts = Scheduler(get_design("4B"), smt=True).slot_counts(24)
        assert counts == [6, 6, 6, 6]

    def test_big_cores_first_in_heterogeneous(self):
        # 1B15s with one thread: it must land on the big core (index 0).
        counts = Scheduler(get_design("1B15s"), smt=True).slot_counts(1)
        assert counts[0] == 1
        assert sum(counts) == 1

    def test_big_core_stacks_before_small_smt(self):
        # After spreading 16 threads on 1B15s, extras fill the big core's
        # SMT contexts first (lowest occupancy ratio): the big core absorbs
        # three extras before its ratio (4/6) exceeds a small core's (1/2).
        counts = Scheduler(get_design("1B15s"), smt=True).slot_counts(20)
        assert counts[0] == 4
        assert sum(counts) == 20

    def test_mixed_design_capacity(self):
        # 3B5s: 3x6 + 5x2 = 28 hardware threads.
        counts = Scheduler(get_design("3B5s"), smt=True).slot_counts(24)
        assert sum(counts) == 24
        assert all(c <= 6 for c in counts[:3])
        assert all(c <= 2 for c in counts[3:])


class TestSlotCountsNoSmt:
    def test_one_thread_per_core(self):
        counts = Scheduler(get_design("4B"), smt=False).slot_counts(4)
        assert counts == [1, 1, 1, 1]

    def test_time_sharing_beyond_core_count(self):
        counts = Scheduler(get_design("4B"), smt=False).slot_counts(24)
        assert counts == [6, 6, 6, 6]

    def test_remainder_lands_on_big_cores(self):
        counts = Scheduler(get_design("1B6m"), smt=False).slot_counts(8)
        assert counts[0] == 2  # the big core takes the extra thread
        assert sum(counts) == 8


class TestPlacement:
    def test_duty_cycles_for_time_sharing(self):
        design = get_design("4B")
        placement = Scheduler(design, smt=False).place(
            [get_profile("tonto")] * 8
        )
        for threads in placement.core_threads:
            assert len(threads) == 2
            for spec in threads:
                assert spec.duty_cycle == pytest.approx(0.5)

    def test_smt_placement_full_duty(self):
        design = get_design("4B")
        placement = Scheduler(design, smt=True).place(
            [get_profile("tonto")] * 8
        )
        for threads in placement.core_threads:
            for spec in threads:
                assert spec.duty_cycle == 1.0

    def test_high_affinity_thread_gets_big_core(self):
        design = get_design("1B15s")
        profiles = [get_profile("hmmer"), get_profile("libquantum")]
        placement = Scheduler(design, smt=True).place(profiles)
        big_core_threads = placement.core_threads[0]
        assert len(big_core_threads) == 1
        weakest = design.cores[-1]
        placed_on_big = big_core_threads[0].profile
        other = [p for p in profiles if p.name != placed_on_big.name][0]
        assert big_core_affinity(placed_on_big, weakest) >= big_core_affinity(
            other, weakest
        )

    def test_smt_coscheduling_mixes_pressure(self):
        # 8 threads (4 hungry, 4 quiet) on 4B: each core should co-run one
        # hungry with one quiet thread rather than pairing hungry together.
        design = get_design("4B")
        profiles = [get_profile("mcf")] * 4 + [get_profile("hmmer")] * 4
        placement = Scheduler(design, smt=True).place(profiles)
        for threads in placement.core_threads:
            names = {t.profile.name for t in threads}
            assert names == {"mcf", "hmmer"}

    def test_placement_evaluates(self):
        design = get_design("3B5s")
        profiles = [get_profile(n) for n in SPEC_ORDER]
        placement = Scheduler(design, smt=True).place(profiles)
        result = ChipModel(design).evaluate(placement)
        assert len(result.threads) == 12

    def test_empty_thread_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Scheduler(get_design("4B")).place([])

    def test_all_threads_placed(self):
        design = get_design("2B10s")
        for n in (1, 5, 12, 24):
            placement = Scheduler(design, smt=True).place(
                [get_profile("astar")] * n
            )
            assert placement.num_threads == n


class TestAffinity:
    def test_affinity_above_one(self):
        for name in SPEC_ORDER:
            assert big_core_affinity(get_profile(name), SMALL) > 1.0

    def test_compute_bound_has_high_affinity(self):
        assert big_core_affinity(get_profile("hmmer"), SMALL) > 2.0


class TestOptimizeCoschedule:
    def test_never_worse_than_heuristic(self):
        from repro.core.metrics import stp
        from repro.core.scheduler import _cached_isolated_ips
        from repro.microarch.config import BIG

        design = get_design("4B")
        profiles = [
            get_profile(n)
            for n in ("mcf", "mcf", "hmmer", "hmmer", "libquantum", "tonto")
        ]
        heuristic = Scheduler(design, smt=True).place(profiles)
        optimized = optimize_coschedule(design, heuristic, max_rounds=1)

        def score(p):
            result = ChipModel(design).evaluate(p)
            specs = [s for ts in p.core_threads for s in ts]
            refs = [_cached_isolated_ips(s.profile, BIG) for s in specs]
            return stp([t.ips for t in result.threads], refs)

        assert score(optimized) >= score(heuristic) - 1e-9

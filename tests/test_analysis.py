"""Offline analyses: benchmark selection and tier cross-validation plumbing."""

import pytest

from repro.analysis.selection import relative_performance, select_representatives
from repro.analysis.validation import CrossValidation, _ranks
from repro.microarch.config import MEDIUM, SMALL
from repro.workloads.spec import all_profiles, get_profile


class TestRelativePerformance:
    def test_below_one_for_weaker_core(self):
        for target in (MEDIUM, SMALL):
            assert relative_performance(get_profile("tonto"), target=target) < 1.0

    def test_small_weaker_than_medium(self):
        p = get_profile("hmmer")
        assert relative_performance(p, target=SMALL) < relative_performance(
            p, target=MEDIUM
        )


class TestSelection:
    def test_selects_requested_count(self):
        chosen = select_representatives(all_profiles(), 5)
        assert len(chosen) == 5
        assert len({p.name for p in chosen}) == 5

    def test_extremes_always_included(self):
        profiles = all_profiles()
        scored = sorted(profiles, key=lambda p: relative_performance(p))
        chosen = select_representatives(profiles, 4)
        names = {p.name for p in chosen}
        assert scored[0].name in names
        assert scored[-1].name in names

    def test_full_selection_is_identity(self):
        profiles = all_profiles()
        chosen = select_representatives(profiles, len(profiles))
        assert {p.name for p in chosen} == {p.name for p in profiles}

    def test_single_selection(self):
        assert len(select_representatives(all_profiles(), 1)) == 1

    def test_too_many_rejected(self):
        with pytest.raises(ValueError, match="cannot select"):
            select_representatives(all_profiles(), 13)

    def test_result_sorted_by_relative_performance(self):
        chosen = select_representatives(all_profiles(), 6)
        scores = [relative_performance(p) for p in chosen]
        assert scores == sorted(scores)


class TestCrossValidationMath:
    def test_ranks(self):
        assert _ranks([10.0, 30.0, 20.0]) == [0.0, 2.0, 1.0]

    def test_perfect_agreement(self):
        cv = CrossValidation(
            core_name="big",
            interval_ipc={"a": 1.0, "b": 2.0, "c": 3.0},
            cycle_ipc={"a": 0.9, "b": 1.8, "c": 2.5},
        )
        assert cv.rank_correlation == pytest.approx(1.0)

    def test_inverted_ranking(self):
        cv = CrossValidation(
            core_name="big",
            interval_ipc={"a": 1.0, "b": 2.0, "c": 3.0},
            cycle_ipc={"a": 3.0, "b": 2.0, "c": 1.0},
        )
        assert cv.rank_correlation == pytest.approx(-1.0)

    def test_ratios(self):
        cv = CrossValidation(
            core_name="big",
            interval_ipc={"a": 2.0},
            cycle_ipc={"a": 1.0},
        )
        assert cv.ratios == {"a": pytest.approx(0.5)}

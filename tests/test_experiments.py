"""Experiment drivers: every figure's table has the right shape and content.

These are integration tests over the full study pipeline; numeric claims
here mirror the paper's qualitative anchors with reproduction tolerances.
Heavier thread-count sweeps use reduced ranges where the shape survives.
"""

import pytest

from repro.core.designs import DESIGN_ORDER
from repro.experiments import (
    fig01_parsec_threads,
    fig02_design_space,
    fig03_throughput_curves,
    fig04_tonto_libquantum,
    fig05_antt,
    fig06_fig07_fig08_uniform,
    fig09_per_benchmark,
    fig10_datacenter,
    fig11_fig12_parsec,
    fig13_dynamic,
    fig14_power,
    fig15_pareto,
    fig16_alternatives,
    fig17_bandwidth,
    table1_configs,
)
from repro.experiments.base import ExperimentTable


class TestTableInfrastructure:
    def test_add_row_validates_columns(self):
        t = ExperimentTable("X", "t", columns=["a", "b"])
        with pytest.raises(ValueError, match="missing columns"):
            t.add_row(a=1)

    def test_column_access(self):
        t = ExperimentTable("X", "t", columns=["a"])
        t.add_row(a=1)
        t.add_row(a=2)
        assert t.column("a") == [1, 2]
        with pytest.raises(KeyError):
            t.column("z")

    def test_row_by(self):
        t = ExperimentTable("X", "t", columns=["k", "v"])
        t.add_row(k="x", v=1)
        assert t.row_by("k", "x")["v"] == 1
        with pytest.raises(KeyError):
            t.row_by("k", "y")

    def test_formatted_renders(self):
        t = ExperimentTable("X", "title", columns=["a"])
        t.add_row(a=1.23456)
        t.notes.append("note")
        text = t.formatted()
        assert "X: title" in text
        assert "1.235" in text
        assert "# note" in text


class TestStaticTables:
    def test_table1_matches_paper(self):
        t = table1_configs.run()
        widths = t.row_by("parameter", "width")
        assert (widths["big"], widths["medium"], widths["small"]) == ("4", "2", "2")
        rob = t.row_by("parameter", "ROB size")
        assert rob["small"] == "N/A"

    def test_fig02_design_space(self):
        t = fig02_design_space.run()
        assert len(t.rows) == 9
        assert t.row_by("design", "2B10s")["small"] == 10
        for row in t.rows:
            assert row["power weight (B-equiv)"] == pytest.approx(4.0)


class TestFig01:
    def test_distribution_rows(self):
        t = fig01_parsec_threads.run()
        assert len(t.rows) == 8
        for row in t.rows:
            total = sum(row[b[0]] for b in fig01_parsec_threads.BUCKETS)
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_headline_statistics(self):
        t = fig01_parsec_threads.run()
        # blackscholes-class apps live at 20 threads; bodytrack does not.
        assert t.row_by("benchmark", "blackscholes")["20"] > 0.75
        assert t.row_by("benchmark", "bodytrack")["20"] < 0.6
        assert t.row_by("benchmark", "bodytrack")["1"] > 0.2


class TestFig03Fig04:
    def test_fig03_shape(self):
        t = fig03_throughput_curves.run(
            "heterogeneous", thread_counts=[1, 8, 24]
        )
        assert t.column("threads") == [1, 8, 24]
        first, last = t.rows[0], t.rows[-1]
        assert first["4B"] == max(first[d] for d in DESIGN_ORDER)  # 4B best at 1
        assert last["4B"] >= 0.75 * max(last[d] for d in DESIGN_ORDER)

    def test_fig04_classes(self):
        tonto = fig04_tonto_libquantum.run("tonto", thread_counts=[1, 24])
        libq = fig04_tonto_libquantum.run("libquantum", thread_counts=[1, 24])
        # tonto: many-core designs clearly ahead at 24 threads.
        t24 = tonto.rows[-1]
        assert t24["20s"] > 1.1 * t24["4B"]
        assert max(t24[d] for d in DESIGN_ORDER) > 1.15 * t24["4B"]
        # libquantum: bandwidth flattens the design space at 24 threads.
        l24 = libq.rows[-1]
        values = [l24[d] for d in DESIGN_ORDER]
        assert max(values) < 1.15 * min(values)


class TestFig05:
    def test_antt_ordering(self):
        t = fig05_antt.run(thread_counts=[1, 24])
        first = t.rows[0]
        assert first["4B"] == min(first[d] for d in DESIGN_ORDER)
        last = t.rows[-1]
        assert last["4B"] > first["4B"]


class TestFig06to08:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="SMT policy"):
            fig06_fig07_fig08_uniform.smt_enabled("sometimes", "4B")

    def test_fig6_heterogeneous_wins_without_smt(self):
        t = fig06_fig07_fig08_uniform.run("none")
        for kind in ("homogeneous", "heterogeneous"):
            vals = {row["design"]: row[kind] for row in t.rows}
            best = max(vals, key=vals.get)
            assert best not in ("4B", "8m", "20s")

    def test_fig7_4b_wins_with_homogeneous_smt(self):
        t = fig06_fig07_fig08_uniform.run("homogeneous-only")
        for kind in ("homogeneous", "heterogeneous"):
            vals = {row["design"]: row[kind] for row in t.rows}
            assert max(vals, key=vals.get) == "4B"

    def test_fig8_4b_within_hair_of_best(self):
        t = fig06_fig07_fig08_uniform.run("all")
        for kind in ("homogeneous", "heterogeneous"):
            vals = {row["design"]: row[kind] for row in t.rows}
            assert vals["4B"] >= 0.97 * max(vals.values())


class TestFig09:
    def test_per_benchmark_structure(self):
        t = fig09_per_benchmark.run()
        assert len(t.rows) == 12
        # Bandwidth-bound benchmarks: 4B matches the best design.
        libq = t.row_by("benchmark", "libquantum")
        assert libq["4B"] >= 0.97 * libq[libq["best"]]


class TestFig10:
    def test_distribution_table(self):
        t = fig10_datacenter.run_distribution()
        probs = t.column("probability")
        assert sum(probs) == pytest.approx(1.0)
        assert probs[0] == max(probs)

    def test_average_table(self):
        t = fig10_datacenter.run()
        vals_smt = {row["design"]: row["datacenter SMT"] for row in t.rows}
        assert max(vals_smt, key=vals_smt.get) == "4B"
        vals_no = {row["design"]: row["mirrored noSMT"] for row in t.rows}
        best_no = max(vals_no, key=vals_no.get)
        assert best_no in ("1B15s", "2B10s", "20s")  # many-core optimum


class TestFig11Fig12:
    def test_fig11_roi(self):
        t = fig11_fig12_parsec.run_average("roi")
        vals_no = {r["design"]: r["without SMT"] for r in t.rows}
        vals_smt = {r["design"]: r["with SMT"] for r in t.rows}
        # SMT boosts 4B substantially; without SMT 4B is not the winner.
        assert vals_smt["4B"] > vals_no["4B"] * 1.2
        assert max(vals_no, key=vals_no.get) != "4B"

    def test_fig11_whole(self):
        t = fig11_fig12_parsec.run_average("whole")
        vals_smt = {r["design"]: r["with SMT"] for r in t.rows}
        assert max(vals_smt, key=vals_smt.get) == "4B"

    def test_fig12_per_benchmark_classes(self):
        t = fig11_fig12_parsec.run_per_benchmark("roi", smt=True)
        # Well-scaling apps favour many cores; poorly scaling favour 4B.
        assert t.row_by("benchmark", "blackscholes")["best"] in ("20s", "1B15s", "8m")
        assert t.row_by("benchmark", "dedup")["best"] in ("4B", "1B6m")


class TestFig13:
    def test_dynamic_oracle_table(self):
        t = fig13_dynamic.run("heterogeneous", thread_counts=[1, 4, 16, 24])
        for row in t.rows:
            # Dynamic with SMT dominates dynamic without SMT by construction.
            assert row["dynamic w/ SMT"] >= row["dynamic w/o SMT"] - 1e-9
            # 4B with SMT is one of the oracle's options.
            assert row["dynamic w/ SMT"] >= row["4B (SMT)"] - 1e-9


class TestFig14Fig15:
    def test_power_curve_shape(self):
        t = fig14_power.run(thread_counts=[1, 4, 24])
        first, last = t.rows[0], t.rows[-1]
        assert first["4B"] > first["20s"]  # one big core > one small core
        assert last["8m"] > 40.0
        assert last["4B"] == pytest.approx(46.0, abs=4.0)

    def test_pareto_table(self):
        t = fig15_pareto.run("heterogeneous")
        vals = {row["design"]: row for row in t.rows}
        assert vals["4B"]["throughput"] == max(
            r["throughput"] for r in t.rows
        )
        assert vals["20s"]["power (W)"] == min(r["power (W)"] for r in t.rows)


class TestFig16Fig17:
    def test_alternative_designs(self):
        t = fig16_alternatives.run()
        vals = {row["design"]: row["mean speedup"] for row in t.rows}
        assert max(vals, key=vals.get) == "4B"
        # Trading small cores for frequency helps (paper's observation).
        assert vals["16s_hf"] > vals["20s"] * 0.95

    def test_high_bandwidth(self):
        t = fig17_bandwidth.run("heterogeneous")
        for row in t.rows:
            assert row["STP @16GB/s"] >= row["STP @8GB/s"] * 0.99
        vals = {row["design"]: row["STP @16GB/s"] for row in t.rows}
        assert vals["4B"] >= 0.97 * max(vals.values())

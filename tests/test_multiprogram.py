"""Multi-program mix construction (balanced random sampling)."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.multiprogram import (
    heterogeneous_mixes,
    homogeneous_mixes,
    profiles_for,
)
from repro.workloads.spec import SPEC_ORDER


class TestHomogeneous:
    def test_one_mix_per_benchmark(self):
        mixes = homogeneous_mixes(4)
        assert len(mixes) == 12
        for mix in mixes:
            assert len(mix) == 4
            assert len(set(mix)) == 1

    def test_custom_benchmark_list(self):
        mixes = homogeneous_mixes(2, benchmarks=["mcf", "tonto"])
        assert mixes == [["mcf", "mcf"], ["tonto", "tonto"]]

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmarks"):
            homogeneous_mixes(2, benchmarks=["gcc"])


class TestHeterogeneous:
    @given(n=st.integers(1, 24))
    @settings(max_examples=24, deadline=None)
    def test_balanced_when_divisible(self, n):
        mixes = heterogeneous_mixes(n, num_mixes=12)
        counts = Counter(name for m in mixes for name in m)
        # 12 mixes x n slots over 12 benchmarks: perfectly balanced.
        assert set(counts.values()) == {n}

    def test_mix_sizes(self):
        for mix in heterogeneous_mixes(5):
            assert len(mix) == 5

    def test_deterministic_for_seed(self):
        assert heterogeneous_mixes(6, seed=1) == heterogeneous_mixes(6, seed=1)

    def test_different_seeds_differ(self):
        assert heterogeneous_mixes(6, seed=1) != heterogeneous_mixes(6, seed=2)

    def test_remainder_distributed_evenly(self):
        # 5 mixes x 3 threads = 15 slots over 12 benchmarks: counts differ
        # by at most one.
        mixes = heterogeneous_mixes(3, num_mixes=5)
        counts = Counter(name for m in mixes for name in m)
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_profiles_for_resolution(self):
        profiles = profiles_for(["mcf", "tonto"])
        assert [p.name for p in profiles] == ["mcf", "tonto"]

    def test_profiles_for_unknown(self):
        with pytest.raises(ValueError, match="unknown"):
            profiles_for(["nope"])

    def test_all_benchmarks_used(self):
        mixes = heterogeneous_mixes(24, num_mixes=12)
        used = {name for m in mixes for name in m}
        assert used == set(SPEC_ORDER)

"""Set-associative LRU cache behaviour (with property tests)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import Cache
from repro.microarch.config import CacheConfig
from repro.util import KB


def small_cache(size=1 * KB, assoc=2):
    return Cache(CacheConfig(size, assoc, latency_cycles=1))


class TestBasics:
    def test_first_access_misses(self):
        c = small_cache()
        assert c.access(0) is False
        assert c.stats.misses == 1

    def test_second_access_hits(self):
        c = small_cache()
        c.access(0)
        assert c.access(0) is True
        assert c.stats.hits == 1

    def test_same_line_different_bytes_hit(self):
        c = small_cache()
        c.access(0)
        assert c.access(63) is True
        assert c.access(64) is False  # next line

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError, match="address"):
            small_cache().access(-1)


class TestLru:
    def test_lru_eviction_order(self):
        # 2-way set: third distinct line in one set evicts the least recent.
        c = small_cache(1 * KB, 2)  # 8 sets
        set_stride = 8 * 64
        a, b, d = 0, set_stride, 2 * set_stride  # same set (set 0)
        c.access(a)
        c.access(b)
        c.access(d)  # evicts a
        assert c.probe(a) is False
        assert c.probe(b) is True

    def test_touch_refreshes_lru(self):
        c = small_cache(1 * KB, 2)
        set_stride = 8 * 64
        a, b, d = 0, set_stride, 2 * set_stride
        c.access(a)
        c.access(b)
        c.access(a)  # a becomes MRU
        c.access(d)  # evicts b
        assert c.probe(a) is True
        assert c.probe(b) is False


class TestWriteback:
    def test_dirty_eviction_counts_writeback(self):
        c = small_cache(1 * KB, 2)
        set_stride = 8 * 64
        c.access(0, is_write=True)
        c.access(set_stride)
        c.access(2 * set_stride)  # evicts dirty line 0
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = small_cache(1 * KB, 2)
        set_stride = 8 * 64
        c.access(0)
        c.access(set_stride)
        c.access(2 * set_stride)
        assert c.stats.writebacks == 0

    def test_write_hit_marks_dirty(self):
        c = small_cache(1 * KB, 2)
        set_stride = 8 * 64
        c.access(0)
        c.access(0, is_write=True)  # hit, now dirty
        c.access(set_stride)
        c.access(2 * set_stride)
        assert c.stats.writebacks == 1


class TestWarmAndInvalidate:
    def test_warm_inserts_without_stats(self):
        c = small_cache()
        c.warm(0)
        assert c.stats.accesses == 0
        assert c.access(0) is True

    def test_invalidate(self):
        c = small_cache()
        c.access(0)
        assert c.invalidate(0) is True
        assert c.probe(0) is False
        assert c.invalidate(0) is False

    def test_reset_stats_keeps_contents(self):
        c = small_cache()
        c.access(0)
        c.reset_stats()
        assert c.stats.accesses == 0
        assert c.probe(0) is True


class TestProperties:
    @given(
        addresses=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=300)
    )
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, addresses):
        c = small_cache(1 * KB, 2)
        capacity_lines = 1 * KB // 64
        for a in addresses:
            c.access(a)
        assert c.resident_lines <= capacity_lines

    @given(
        addresses=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=300)
    )
    @settings(max_examples=50, deadline=None)
    def test_stats_consistent(self, addresses):
        c = small_cache()
        for a in addresses:
            c.access(a)
        assert c.stats.hits + c.stats.misses == c.stats.accesses
        assert 0.0 <= c.stats.miss_rate <= 1.0

    @given(
        addresses=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200)
    )
    @settings(max_examples=50, deadline=None)
    def test_immediate_reaccess_always_hits(self, addresses):
        c = small_cache()
        for a in addresses:
            c.access(a)
            assert c.access(a) is True

    def test_bigger_cache_never_misses_more(self):
        # Same reference stream: a 4 KB cache's misses <= a 1 KB cache's.
        import random

        rng = random.Random(3)
        stream = [rng.randrange(0, 16 * KB) for _ in range(2000)]
        small, big = small_cache(1 * KB, 2), small_cache(4 * KB, 4)
        for a in stream:
            small.access(a)
            big.access(a)
        assert big.stats.misses <= small.stats.misses


class TestWritebackAddress:
    def test_victim_address_reconstruction(self):
        c = small_cache(1 * KB, 2)
        set_stride = 8 * 64
        c.access(0, is_write=True)
        c.access(set_stride)
        c.access(2 * set_stride)  # evicts dirty line 0
        assert c.last_writeback_address == 0

    def test_clean_eviction_reports_none(self):
        c = small_cache(1 * KB, 2)
        set_stride = 8 * 64
        c.access(0)
        c.access(set_stride)
        c.access(2 * set_stride)
        assert c.last_writeback_address is None

    def test_flag_cleared_on_next_access(self):
        c = small_cache(1 * KB, 2)
        set_stride = 8 * 64
        c.access(0, is_write=True)
        c.access(set_stride)
        c.access(2 * set_stride)  # dirty eviction
        c.access(3 * set_stride)  # clean eviction of set_stride
        assert c.last_writeback_address is None

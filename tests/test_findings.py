"""The paper's eleven findings must hold in the reproduction.

This is the repository's headline integration test: each finding is a
directional claim (who wins, orderings, within-x-percent margins) evaluated
over the full design-space grid.
"""

import pytest

from repro.experiments import findings

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def all_findings():
    return {f.number: f for f in findings.evaluate_all()}


@pytest.mark.parametrize("number", range(1, 12))
def test_finding_holds(all_findings, number):
    finding = all_findings[number]
    assert finding.holds, f"Finding {number} failed: {finding.evidence}"


def test_all_findings_present(all_findings):
    assert set(all_findings) == set(range(1, 12))


def test_findings_carry_evidence(all_findings):
    for f in all_findings.values():
        assert f.claim
        assert f.evidence

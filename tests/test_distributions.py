"""Thread-count distributions (Section 4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributions import (
    ThreadCountDistribution,
    datacenter,
    mirrored_datacenter,
    uniform,
)


class TestUniform:
    def test_probabilities_equal(self):
        dist = uniform(24)
        assert dist.max_threads == 24
        for n in range(1, 25):
            assert dist.probability(n) == pytest.approx(1 / 24)

    def test_expectation_is_plain_mean(self):
        dist = uniform(4)
        values = {1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0}
        assert dist.expectation(values) == pytest.approx(2.5)


class TestDatacenter:
    def test_sums_to_one(self):
        assert sum(datacenter(24).probabilities) == pytest.approx(1.0)

    def test_peak_at_one_thread(self):
        dist = datacenter(24)
        assert max(range(1, 25), key=dist.probability) == 1

    def test_secondary_mode_around_seven_to_nine(self):
        dist = datacenter(24)
        # Local maximum inside 5..12 (the 30-40% utilization mode).
        mid_peak = max(range(5, 13), key=dist.probability)
        assert 7 <= mid_peak <= 9
        # It is a genuine local mode: higher than the 4/5-thread dip.
        assert dist.probability(mid_peak) > dist.probability(4)

    def test_light_tail(self):
        dist = datacenter(24)
        assert dist.probability(24) < dist.probability(1) / 5

    def test_mirror_reverses(self):
        d = datacenter(24)
        m = mirrored_datacenter(24)
        for n in range(1, 25):
            assert m.probability(n) == pytest.approx(d.probability(25 - n))

    def test_mirror_peaks_at_max_threads(self):
        m = mirrored_datacenter(24)
        assert max(range(1, 25), key=m.probability) == 24

    def test_resampling_other_sizes(self):
        d12 = datacenter(12)
        assert d12.max_threads == 12
        assert sum(d12.probabilities) == pytest.approx(1.0)
        assert max(range(1, 13), key=d12.probability) == 1


class TestValidation:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            ThreadCountDistribution("bad", (0.5, 0.4))

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ThreadCountDistribution("bad", (1.5, -0.5))

    def test_probability_out_of_range(self):
        with pytest.raises(ValueError, match="thread_count"):
            uniform(4).probability(5)

    def test_expectation_requires_all_counts(self):
        with pytest.raises(ValueError, match="missing"):
            uniform(3).expectation({1: 1.0, 2: 2.0})

    @given(
        weights=st.lists(st.floats(0.001, 10.0), min_size=1, max_size=32)
    )
    @settings(max_examples=50)
    def test_from_weights_normalizes(self, weights):
        dist = ThreadCountDistribution.from_weights("w", weights)
        assert sum(dist.probabilities) == pytest.approx(1.0)

    @given(
        weights=st.lists(st.floats(0.001, 10.0), min_size=2, max_size=24)
    )
    @settings(max_examples=50)
    def test_expectation_within_value_range(self, weights):
        dist = ThreadCountDistribution.from_weights("w", weights)
        values = {n: float(n) for n in range(1, dist.max_threads + 1)}
        e = dist.expectation(values)
        assert 1.0 <= e <= dist.max_threads

    @given(
        weights=st.lists(st.floats(0.001, 10.0), min_size=1, max_size=24)
    )
    @settings(max_examples=50)
    def test_double_mirror_is_identity(self, weights):
        dist = ThreadCountDistribution.from_weights("w", weights)
        double = dist.mirrored().mirrored()
        for a, b in zip(dist.probabilities, double.probabilities):
            assert a == pytest.approx(b)


class TestSupport:
    def test_full_support(self):
        assert uniform(4).support == (1, 2, 3, 4)

    def test_zero_probability_counts_excluded(self):
        dist = ThreadCountDistribution("gappy", (0.5, 0.0, 0.5))
        assert dist.support == (1, 3)

    def test_point_mass(self):
        dist = ThreadCountDistribution("point", (0.0, 0.0, 1.0))
        assert dist.support == (3,)


class TestMirroredName:
    """Regression: ``mirrored()`` used to blindly append ``-mirrored``,
    so mirroring a mirror produced ``x-mirrored-mirrored`` instead of
    restoring the original name."""

    def test_mirror_appends_suffix(self):
        assert uniform(4).mirrored().name == "uniform-4-mirrored"

    def test_double_mirror_restores_name(self):
        dist = datacenter(24)
        assert dist.mirrored().mirrored().name == dist.name

    def test_mirrored_datacenter_matches_factory(self):
        assert mirrored_datacenter(24).name == "datacenter-24-mirrored"


class TestExpectationSupport:
    """Regression: ``expectation()`` demanded a value for every count in
    ``1..max_threads`` even when some had zero probability, so any
    distribution with gaps (e.g. a clamped timeline) was unusable with
    per-support value maps."""

    def test_zero_probability_counts_not_required(self):
        dist = ThreadCountDistribution("gappy", (0.5, 0.0, 0.5))
        assert dist.expectation({1: 2.0, 3: 4.0}) == pytest.approx(3.0)

    def test_support_counts_still_required(self):
        dist = ThreadCountDistribution("gappy", (0.5, 0.0, 0.5))
        with pytest.raises(ValueError, match="missing"):
            dist.expectation({1: 2.0})

    def test_zero_probability_values_ignored_if_given(self):
        dist = ThreadCountDistribution("gappy", (0.5, 0.0, 0.5))
        full = dist.expectation({1: 2.0, 2: 99.0, 3: 4.0})
        assert full == pytest.approx(3.0)

    def test_clamped_timeline_distribution_usable(self):
        from repro.core.timeline import ThreadCountTimeline

        # Clamping 30 threads into max_threads=4 leaves counts 2 and 3
        # with zero probability; expectation must accept a value map
        # covering only the support.
        tl = ThreadCountTimeline.from_samples([(1.0, 30), (1.0, 1)])
        dist = tl.to_distribution(max_threads=4)
        assert dist.support == (1, 4)
        assert dist.expectation({1: 1.0, 4: 3.0}) == pytest.approx(2.0)

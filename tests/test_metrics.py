"""System-level metrics: STP, ANTT, means, EDP (with property tests)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    antt,
    arithmetic_mean,
    energy_delay_product,
    harmonic_mean,
    stp,
)

perf_lists = st.lists(st.floats(0.01, 100.0), min_size=1, max_size=16)


class TestStp:
    def test_unshared_execution_counts_each_thread_once(self):
        assert stp([2.0, 3.0], [2.0, 3.0]) == pytest.approx(2.0)

    def test_half_speed_threads(self):
        assert stp([1.0, 1.0], [2.0, 2.0]) == pytest.approx(1.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="length mismatch"):
            stp([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stp([], [])

    @given(shared=perf_lists)
    @settings(max_examples=50)
    def test_stp_bounded_by_thread_count(self, shared):
        # Shared performance can never exceed isolated performance, so with
        # isolated == shared the STP equals the thread count.
        assert stp(shared, shared) == pytest.approx(len(shared))

    @given(shared=perf_lists, factor=st.floats(0.1, 1.0))
    @settings(max_examples=50)
    def test_stp_scales_linearly(self, shared, factor):
        isolated = [s / factor for s in shared]
        assert stp(shared, isolated) == pytest.approx(factor * len(shared))


class TestAntt:
    def test_antt_of_unshared_is_one(self):
        assert antt([5.0, 7.0], [5.0, 7.0]) == pytest.approx(1.0)

    def test_antt_of_half_speed_is_two(self):
        assert antt([1.0, 2.0], [2.0, 4.0]) == pytest.approx(2.0)

    @given(shared=perf_lists, factor=st.floats(0.05, 1.0))
    @settings(max_examples=50)
    def test_antt_at_least_slowdown(self, shared, factor):
        isolated = [s / factor for s in shared]
        assert antt(shared, isolated) == pytest.approx(1.0 / factor)


class TestMeans:
    def test_harmonic_below_arithmetic(self):
        vals = [1.0, 2.0, 4.0]
        assert harmonic_mean(vals) < arithmetic_mean(vals)

    def test_harmonic_of_constant(self):
        assert harmonic_mean([3.0, 3.0]) == pytest.approx(3.0)

    def test_harmonic_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([])
        with pytest.raises(ValueError):
            arithmetic_mean([])

    @given(vals=st.lists(st.floats(0.01, 50.0), min_size=1, max_size=12))
    @settings(max_examples=50)
    def test_means_bracket_range(self, vals):
        h = harmonic_mean(vals)
        a = arithmetic_mean(vals)
        assert min(vals) <= h + 1e-9
        assert h <= a + 1e-9
        assert a <= max(vals) + 1e-9


class TestEdp:
    def test_edp_definition(self):
        assert energy_delay_product(50.0, 5.0) == pytest.approx(2.0)

    def test_faster_is_better_quadratically(self):
        # Doubling throughput at equal power quarters the EDP.
        assert energy_delay_product(50.0, 10.0) == pytest.approx(
            energy_delay_product(50.0, 5.0) / 4
        )

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            energy_delay_product(0.0, 1.0)
        with pytest.raises(ValueError):
            energy_delay_product(1.0, 0.0)

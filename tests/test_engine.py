"""The evaluation engine: work units, keys, store, parallel execution."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.designs import get_design
from repro.core.scheduler import (
    _ISOLATED_IPS_CACHE,
    _cached_isolated_ips,
    clear_isolated_ips_cache,
)
from repro.core.study import DesignSpaceStudy
from repro.engine import (
    Engine,
    KeyedCache,
    ParallelExecutor,
    ResultStore,
    SlabUnit,
    WorkUnit,
    content_key,
    evaluate_work_unit,
    payload_from_result,
    result_from_payload,
)
from repro.engine.store import STORE_SCHEMA_VERSION
from repro.microarch.config import BIG, SMALL
from repro.microarch.uncore import HIGH_BANDWIDTH_UNCORE
from repro.workloads.spec import get_profile

MIX = ("mcf", "tonto", "libquantum", "hmmer")


def unit(design="4B", mix=MIX, smt=True, **kwargs):
    return WorkUnit(design=get_design(design), mix=tuple(mix), smt=smt, **kwargs)


class TestWorkUnit:
    def test_requires_benchmarks(self):
        with pytest.raises(ValueError, match="at least one benchmark"):
            unit(mix=())

    def test_reference_uncore_defaults_to_design_uncore(self):
        u = unit()
        assert u.reference_uncore == get_design("4B").uncore

    def test_evaluate_matches_study(self, study):
        expected = study.evaluate_mix("4B", list(MIX))
        assert evaluate_work_unit(unit()) == expected


class TestContentKeys:
    def test_key_is_hex_digest(self):
        key = unit().content_key
        assert len(key) == 64
        int(key, 16)

    def test_key_depends_on_design_mix_and_smt(self):
        base = unit()
        assert base.content_key != unit(design="8m").content_key
        assert base.content_key != unit(mix=MIX[:2]).content_key
        assert base.content_key != unit(smt=False).content_key
        assert base.content_key != unit(mix=tuple(reversed(MIX))).content_key

    def test_key_depends_on_uncore(self):
        fast = unit(reference_uncore=HIGH_BANDWIDTH_UNCORE)
        assert unit().content_key != fast.content_key

    def test_key_stable_within_process(self):
        assert unit().content_key == unit().content_key

    def test_key_stable_across_processes(self):
        """The same configuration must hash identically in a fresh interpreter."""
        script = (
            "from repro.core.designs import get_design\n"
            "from repro.engine import WorkUnit\n"
            f"u = WorkUnit(design=get_design('4B'), mix={MIX!r}, smt=True)\n"
            "print(u.content_key)\n"
        )
        src_dir = Path(__file__).resolve().parent.parent / "src"
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(src_dir), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == unit().content_key

    def test_numpy_scalars_key_like_python_scalars(self):
        """np.float64 subclasses float, so without an explicit unwrap it
        would canonicalize via ``repr`` to ``np.float64(x)`` — diverging
        the key for identical configs between vector and scalar paths."""
        np = pytest.importorskip("numpy")
        from repro.engine.keys import canonicalize

        assert canonicalize(np.float64(1.5)) == canonicalize(1.5)
        assert canonicalize(np.float32(2.0)) == canonicalize(2.0)
        assert canonicalize(np.int64(3)) == canonicalize(3)
        assert canonicalize(np.bool_(True)) == canonicalize(True)
        assert "np." not in canonicalize({"x": np.float64(0.25)})

    def test_numpy_arrays_key_like_lists(self):
        np = pytest.importorskip("numpy")
        from repro.engine.keys import canonicalize

        assert canonicalize(np.array([1.0, 2.5])) == canonicalize([1.0, 2.5])
        assert canonicalize(np.arange(3)) == canonicalize([0, 1, 2])

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError, match="canonicalize"):
            content_key({"bad": object()})


class TestSerialParallelEquivalence:
    def test_jobs4_bit_identical_to_jobs1(self):
        units = [
            unit(design=name, mix=MIX[: n + 1], smt=smt)
            for name in ("4B", "8m", "3B5s")
            for n in range(3)
            for smt in (True, False)
        ]
        serial = Engine(jobs=1).evaluate(units)
        parallel = Engine(jobs=4).evaluate(units)
        assert serial == parallel  # dataclass equality: exact floats

    def test_study_with_engine_matches_plain_study(self, study):
        engine_study = DesignSpaceStudy(engine=Engine(jobs=2))
        for n in (1, 4, 8):
            mixes = study.mixes("heterogeneous", n)
            assert engine_study.evaluate_mixes("4B", mixes) == [
                study.evaluate_mix("4B", m) for m in mixes
            ]

    def test_executor_preserves_order(self):
        units = [unit(mix=(b,)) for b in ("mcf", "tonto", "hmmer", "libquantum")]
        outcomes = ParallelExecutor(jobs=2).map(units)
        assert all(o.ok and o.attempts == 1 for o in outcomes)
        assert [o.value.mix for o in outcomes] == [u.mix for u in units]

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            ParallelExecutor(jobs=0)


class TestSlabDispatch:
    def _units(self):
        return [
            unit(design=name, mix=MIX[: n + 1], smt=smt)
            for name in ("4B", "8m")
            for n in range(3)
            for smt in (True, False)
        ]

    def test_slab_unit_validates(self):
        with pytest.raises(ValueError, match="non-empty"):
            SlabUnit(design=get_design("4B"), mixes=())
        with pytest.raises(ValueError, match="non-empty"):
            SlabUnit(design=get_design("4B"), mixes=(("mcf",), ()))

    def test_slab_unit_properties(self):
        slab = SlabUnit(
            design=get_design("4B"), mixes=(("mcf", "tonto"), ("mcf",))
        )
        assert slab.mix == ("mcf", "tonto")  # flattened, deduped
        assert slab.n_threads == 2
        assert slab.timeout_scale == 2
        assert slab.content_key != SlabUnit(
            design=get_design("4B"), mixes=(("mcf",),)
        ).content_key

    def test_slab_evaluation_matches_per_point(self):
        units = [unit(mix=MIX[: n + 1]) for n in range(4)]
        slab = SlabUnit(
            design=get_design("4B"), mixes=tuple(u.mix for u in units)
        )
        assert evaluate_work_unit(slab) == [
            evaluate_work_unit(u) for u in units
        ]

    def test_engine_slab_mode_bit_identical(self):
        units = self._units()
        per_point = Engine(jobs=1).evaluate(units)
        slabbed = Engine(jobs=2, slab_size=4).evaluate(units)
        assert per_point == slabbed

    def test_slab_mode_respects_store(self, tmp_path):
        units = self._units()
        store = ResultStore(str(tmp_path / "cache"))
        engine = Engine(jobs=2, slab_size=4, store=store)
        cold = engine.evaluate(units)
        warm_engine = Engine(jobs=1, store=ResultStore(str(tmp_path / "cache")))
        warm = warm_engine.evaluate(units)
        assert cold == warm
        assert warm_engine.stats.store_hits == len(units)

    def test_invalid_slab_size_rejected(self):
        with pytest.raises(ValueError, match="slab_size"):
            Engine(jobs=2, slab_size=0)

    def test_small_batch_shrinks_slabs_to_fill_the_pool(self):
        """A batch far below slab_size x jobs must split across workers
        instead of landing in one giant slab (an adaptive explorer's
        low-fidelity rung is a few dozen points at slab_size=32)."""
        engine = Engine(jobs=2, slab_size=32)
        units = [unit(mix=MIX[:1] * (n % 3 + 1)) for n in range(6)]
        captured = []
        original = engine.executor.map

        def spy(tasks, **kwargs):
            captured.append(len(tasks))
            return original(tasks, **kwargs)

        engine.executor.map = spy
        results = engine.evaluate(units)
        assert captured == [2]  # two slabs of 3, not one slab of 6
        assert results == Engine(jobs=1).evaluate(units)

    def test_shrunk_slabs_bit_identical(self):
        units = self._units()[:5]
        assert Engine(jobs=2, slab_size=32).evaluate(units) == Engine(
            jobs=1
        ).evaluate(units)


class TestResultStore:
    def test_round_trip(self, tmp_path, study):
        store = ResultStore(tmp_path)
        result = study.evaluate_mix("4B", list(MIX))
        key = unit().content_key
        store.put(key, payload_from_result(result))
        assert result_from_payload(store.get(key)) == result
        assert store.stats.writes == 1 and store.stats.hits == 1

    def test_miss_on_absent_key(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("0" * 64) is None
        assert store.stats.misses == 1

    def test_corrupted_record_recovers(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = Engine(jobs=1, store=store)
        u = unit()
        (first,) = engine.evaluate([u])
        record_path = store._path(u.content_key)
        record_path.write_text("{ this is not json")
        (again,) = engine.evaluate([u])
        assert again == first  # recomputed, not crashed
        assert store.stats.corrupt == 1
        # and the fresh record was written back
        assert result_from_payload(store.get(u.content_key)) == first

    def test_truncated_record_recovers(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = Engine(jobs=1, store=store)
        u = unit()
        (first,) = engine.evaluate([u])
        record_path = store._path(u.content_key)
        record_path.write_text(record_path.read_text()[:25])
        (again,) = engine.evaluate([u])
        assert again == first
        assert store.stats.corrupt == 1

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        u = unit()
        path = store._path(u.content_key)
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps(
                {
                    "schema": STORE_SCHEMA_VERSION + 1,
                    "key": u.content_key,
                    "payload": {},
                }
            )
        )
        assert store.get(u.content_key) is None
        assert store.stats.corrupt == 1

    def test_clear_counts_evictions(self, tmp_path):
        store = ResultStore(tmp_path)
        Engine(jobs=1, store=store).evaluate([unit(), unit(smt=False)])
        assert store.clear() == 2
        assert store.stats.evicted == 2
        assert store.content_summary()["records"] == 0

    def test_prune_evicts_down_to_limit(self, tmp_path):
        store = ResultStore(tmp_path)
        units = [unit(mix=(b,)) for b in ("mcf", "tonto", "hmmer")]
        Engine(jobs=1, store=store).evaluate(units)
        assert store.prune(max_records=1) == 2
        assert store.content_summary()["records"] == 1
        assert store.stats.evicted == 2

    def test_run_summary_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = Engine(jobs=1, store=store)
        engine.evaluate([unit()])
        engine.write_summary()
        summary = store.read_run_summary()
        assert summary["units_total"] == 1
        assert summary["store"]["writes"] == 1


class TestBatchedStoreIO:
    """``write_many``/``get_many``: one backend transaction per batch."""

    KEYS = [format(i, "064x") for i in range(1, 4)]
    PAYLOADS = [{"n": i} for i in range(1, 4)]

    @pytest.mark.parametrize("backend", ["dir", "sqlite"])
    def test_write_many_get_many_round_trip(self, tmp_path, backend):
        store = ResultStore(tmp_path, backend=backend)
        store.write_many(list(zip(self.KEYS, self.PAYLOADS)))
        assert store.stats.writes == len(self.KEYS)
        # A fresh store (no memory layer) must read the same bytes back,
        # aligned with the requested key order.
        fresh = ResultStore(tmp_path, backend=backend)
        assert fresh.get_many(list(reversed(self.KEYS))) == list(
            reversed(self.PAYLOADS)
        )
        assert fresh.stats.hits == len(self.KEYS)

    @pytest.mark.parametrize("backend", ["dir", "sqlite"])
    def test_get_many_alignment_with_misses(self, tmp_path, backend):
        store = ResultStore(tmp_path, backend=backend)
        store.write_many(list(zip(self.KEYS, self.PAYLOADS)))
        absent = "f" * 64
        got = store.get_many([self.KEYS[0], absent, self.KEYS[2]])
        assert got == [self.PAYLOADS[0], None, self.PAYLOADS[2]]
        assert store.stats.misses == 1

    def test_batched_matches_single_record_ops(self, tmp_path):
        batched = ResultStore(tmp_path / "batched")
        batched.write_many(list(zip(self.KEYS, self.PAYLOADS)))
        singly = ResultStore(tmp_path / "singly")
        for key, payload in zip(self.KEYS, self.PAYLOADS):
            singly.put(key, payload)
        for key in self.KEYS:
            # Batching never changes the stored bytes.
            assert batched._path(key).read_bytes() == singly._path(key).read_bytes()

    def test_write_many_fault_degrades_to_memory(self, tmp_path):
        from repro.engine import faults

        store = ResultStore(tmp_path)
        faults.reset()
        faults.install("store-write:times=1")
        try:
            with pytest.warns(RuntimeWarning):
                store.write_many(list(zip(self.KEYS, self.PAYLOADS)))
            assert store.degraded
            # Every item of the batch survives in the memory layer.
            assert store.get_many(self.KEYS) == self.PAYLOADS
        finally:
            faults.reset()

    def test_get_many_fault_is_a_per_key_miss(self, tmp_path):
        from repro.engine import faults

        store = ResultStore(tmp_path)
        store.write_many(list(zip(self.KEYS, self.PAYLOADS)))
        fresh = ResultStore(tmp_path)
        faults.reset()
        faults.install("store-read:times=1")
        try:
            got = fresh.get_many(self.KEYS)
        finally:
            faults.reset()
        # The injected read error costs exactly one key its hit; the
        # rest of the batch still resolves.
        assert got.count(None) == 1
        assert fresh.stats.misses == 1
        assert fresh.stats.hits == len(self.KEYS) - 1


class TestCorruptRunSummary:
    def test_corrupt_summary_warns_and_degrades(self, tmp_path):
        store = ResultStore(tmp_path)
        store.summary_path.write_text("{ this is not json")
        with pytest.warns(RuntimeWarning, match="corrupt run summary"):
            assert store.read_run_summary() is None

    def test_corrupt_summary_falls_back_to_memory_copy(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = Engine(jobs=1, store=store)
        engine.evaluate([unit()])
        engine.write_summary()
        store.summary_path.write_text('["not", "a", "summary"]')
        with pytest.warns(RuntimeWarning):
            summary = store.read_run_summary()
        assert summary is not None and summary["units_total"] == 1

    def test_missing_summary_is_silent(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.read_run_summary() is None  # no warning expected

    def test_cache_stats_survives_corrupt_summary(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        store = ResultStore(tmp_path)
        store.summary_path.write_text("{ truncated")
        with pytest.warns(RuntimeWarning, match="corrupt run summary"):
            rc = cli_main(["cache", "stats", "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert "last run        : (none recorded)" in capsys.readouterr().out


class TestSqliteBackend:
    def test_round_trip(self, tmp_path, study):
        store = ResultStore(tmp_path, backend="sqlite")
        result = study.evaluate_mix("4B", list(MIX))
        key = unit().content_key
        store.put(key, payload_from_result(result))
        assert result_from_payload(store.get(key)) == result
        assert store.stats.writes == 1 and store.stats.hits == 1
        assert store.content_summary()["backend"] == "sqlite"
        store.close()

    def test_backends_are_interchangeable_for_the_engine(self, tmp_path):
        """Same units, either backend: identical payloads come back."""
        u = unit()
        dir_store = ResultStore(tmp_path / "dir", backend="dir")
        (first,) = Engine(jobs=1, store=dir_store).evaluate([u])
        sqlite_store = ResultStore(tmp_path / "sql", backend="sqlite")
        (second,) = Engine(jobs=1, store=sqlite_store).evaluate([u])
        assert first == second
        assert dir_store.get(u.content_key) == sqlite_store.get(u.content_key)
        sqlite_store.close()

    def test_second_run_hits_sqlite_store(self, tmp_path):
        store = ResultStore(tmp_path, backend="sqlite")
        units = [unit(), unit(smt=False)]
        Engine(jobs=1, store=store).evaluate(units)
        engine = Engine(jobs=1, store=ResultStore(tmp_path, backend="sqlite"))
        engine.evaluate(units)
        assert engine.stats.store_hits == 2
        assert engine.stats.units_computed == 0

    def test_clear_and_prune(self, tmp_path):
        store = ResultStore(tmp_path, backend="sqlite")
        units = [unit(mix=(b,)) for b in ("mcf", "tonto", "hmmer")]
        Engine(jobs=1, store=store).evaluate(units)
        assert store.content_summary()["records"] == 3
        assert store.prune(max_records=1) == 2
        assert store.content_summary()["records"] == 1
        assert store.clear() == 1
        assert store.content_summary()["records"] == 0

    def test_corrupt_record_recovers(self, tmp_path):
        store = ResultStore(tmp_path, backend="sqlite")
        engine = Engine(jobs=1, store=store)
        u = unit()
        (first,) = engine.evaluate([u])
        store.backend.write_record(u.content_key, "{ this is not json")
        (again,) = engine.evaluate([u])
        assert again == first
        assert store.stats.corrupt == 1
        assert result_from_payload(store.get(u.content_key)) == first

    def test_records_shard_across_databases(self, tmp_path):
        store = ResultStore(tmp_path, backend="sqlite")
        units = [unit(mix=(b,)) for b in ("mcf", "tonto", "hmmer", "lbm")]
        Engine(jobs=1, store=store).evaluate(units)
        shards = {store.backend.shard_of(u.content_key) for u in units}
        present = list(store.backend._shards_present())
        assert sorted(shards) == sorted(present)
        summary = store.content_summary()
        assert summary["sqlite_shards"] == len(present)

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store backend"):
            ResultStore(tmp_path, backend="postgres")


class TestEngineCaching:
    def test_second_run_hits_store(self, tmp_path):
        units = [unit(mix=MIX[: n + 1]) for n in range(4)]
        cold = Engine(jobs=1, store=ResultStore(tmp_path))
        cold_results = cold.evaluate(units)
        assert cold.stats.store_hits == 0

        warm = Engine(jobs=1, store=ResultStore(tmp_path))
        warm_results = warm.evaluate(units)
        assert warm_results == cold_results
        assert warm.stats.store_hits == len(units)
        assert warm.stats.store_hit_rate == 1.0
        assert warm.stats.units_computed == 0

    def test_stats_phases_recorded(self, tmp_path):
        engine = Engine(jobs=1, store=ResultStore(tmp_path))
        engine.evaluate([unit()])
        assert {"lookup", "compute", "write-back"} <= set(engine.stats.phase_seconds)
        assert engine.stats.wall_seconds > 0
        assert 0.0 < engine.stats.worker_utilization <= 1.0
        assert "engine:" in engine.stats.formatted()


class TestKeyedCache:
    def test_get_or_compute_memoizes(self):
        cache = KeyedCache("test")
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert cache.get_or_compute(("a", 1), compute) == 42
        assert cache.get_or_compute(("a", 1), compute) == 42
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1 and len(cache) == 1

    def test_namespaces_do_not_collide(self):
        a, b = KeyedCache("ns-a"), KeyedCache("ns-b")
        assert a.key_for((1,)) != b.key_for((1,))

    def test_clear_resets(self):
        cache = KeyedCache("test")
        cache.get_or_compute((1,), lambda: "x")
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_get_and_put(self):
        cache = KeyedCache("test")
        assert cache.get(("k",)) is None
        assert cache.get(("k",), default="d") == "d"
        cache.put(("k",), 7)
        assert cache.get(("k",)) == 7

    def test_identity_fast_path_matches_slow_path(self):
        """Repeated lookups with the same part objects hit the id memo."""
        cache = KeyedCache("test")
        design = get_design("4B")
        parts = (design, True)
        cache.put(parts, "v")
        assert cache.get(parts) == "v"  # id-memo hit
        # An equal-but-distinct key tuple still resolves to the same slot.
        assert cache.get((get_design("4B"), True)) == "v"


class TestSchedulerCache:
    def test_isolated_ips_routed_through_keyed_cache(self):
        clear_isolated_ips_cache()
        profile = get_profile("mcf")
        first = _cached_isolated_ips(profile, BIG)
        assert len(_ISOLATED_IPS_CACHE) == 1
        assert _cached_isolated_ips(profile, BIG) == first
        assert _ISOLATED_IPS_CACHE.hits >= 1
        assert _cached_isolated_ips(profile, SMALL) != first

    def test_explicit_clear(self):
        _cached_isolated_ips(get_profile("mcf"), BIG)
        assert len(_ISOLATED_IPS_CACHE) > 0
        clear_isolated_ips_cache()
        assert len(_ISOLATED_IPS_CACHE) == 0

"""Uncore configuration: LLC, interconnect, DRAM, bandwidth variants."""

import pytest

from repro.microarch.uncore import (
    DEFAULT_UNCORE,
    HIGH_BANDWIDTH_UNCORE,
    DramConfig,
    InterconnectConfig,
    UncoreConfig,
)
from repro.util import MB


class TestDefaults:
    def test_llc_is_8mb_16way(self):
        assert DEFAULT_UNCORE.llc.size_bytes == 8 * MB
        assert DEFAULT_UNCORE.llc.associativity == 16

    def test_dram_parameters(self):
        dram = DEFAULT_UNCORE.dram
        assert dram.num_banks == 8
        assert dram.access_latency_ns == 45.0
        assert dram.bus_bandwidth_bytes_per_s == 8e9

    def test_interconnect_is_crossbar_at_core_clock(self):
        ic = DEFAULT_UNCORE.interconnect
        assert ic.kind == "crossbar"
        assert ic.frequency_ghz == 2.66

    def test_high_bandwidth_variant(self):
        assert HIGH_BANDWIDTH_UNCORE.dram.bus_bandwidth_bytes_per_s == 16e9
        # Everything else unchanged.
        assert HIGH_BANDWIDTH_UNCORE.llc == DEFAULT_UNCORE.llc

    def test_with_bandwidth_returns_new_object(self):
        changed = DEFAULT_UNCORE.with_bandwidth(4e9)
        assert changed.dram.bus_bandwidth_bytes_per_s == 4e9
        assert DEFAULT_UNCORE.dram.bus_bandwidth_bytes_per_s == 8e9


class TestValidation:
    def test_bad_interconnect_kind(self):
        with pytest.raises(ValueError, match="crossbar"):
            InterconnectConfig(kind="mesh")

    def test_bus_kind_allowed(self):
        assert InterconnectConfig(kind="bus").kind == "bus"

    def test_bad_dram_banks(self):
        with pytest.raises(ValueError, match="num_banks"):
            DramConfig(num_banks=0)

    def test_dram_latency_cycles(self):
        cycles = DEFAULT_UNCORE.dram_latency_cycles(2.66)
        assert cycles == pytest.approx(45.0 * 2.66)

"""Ideal dynamic multi-core oracle (Section 6)."""

import pytest

from repro.core.designs import DESIGN_ORDER
from repro.core.dynamic import IdealDynamicMulticore


class TestOracle:
    def test_oracle_at_least_as_good_as_any_design(self, study):
        oracle = IdealDynamicMulticore(study)
        for n in (1, 4, 12):
            best_fixed = max(
                study.mean_stp(d, "homogeneous", n, smt=False)
                for d in DESIGN_ORDER
            )
            # Per-workload choice can only improve on per-thread-count choice.
            assert oracle.mean_stp("homogeneous", n, smt=False) >= best_fixed - 1e-9

    def test_mix_stp_is_max_over_designs(self, study):
        oracle = IdealDynamicMulticore(study)
        mix = ["tonto"] * 4
        expected = max(
            study.evaluate_mix(d, mix, smt=False).stp for d in DESIGN_ORDER
        )
        assert oracle.mix_stp(mix, smt=False) == pytest.approx(expected)

    def test_restricted_design_set(self, study):
        oracle = IdealDynamicMulticore(study, design_names=["4B", "20s"])
        mix = ["hmmer"]
        assert oracle.mix_stp(mix, smt=False) == pytest.approx(
            study.evaluate_mix("4B", mix, smt=False).stp
        )

    def test_unknown_design_rejected(self, study):
        with pytest.raises(ValueError, match="not present"):
            IdealDynamicMulticore(study, design_names=["5B"])

    def test_smt_oracle_beats_no_smt_oracle_at_high_counts(self, study):
        oracle = IdealDynamicMulticore(study)
        n = 24
        assert oracle.mean_stp("homogeneous", n, smt=True) >= oracle.mean_stp(
            "homogeneous", n, smt=False
        )

    def test_throughput_curve_shape(self, study):
        oracle = IdealDynamicMulticore(study)
        curve = oracle.throughput_curve("homogeneous", [1, 4], smt=False)
        assert curve[4] > curve[1]

"""PARSEC-like parallel workload definitions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.parsec import (
    PARSEC_ORDER,
    PARSEC_WORKLOADS,
    ParallelWorkload,
    all_workloads,
    get_workload,
)


class TestRegistry:
    def test_eight_workloads(self):
        assert len(PARSEC_WORKLOADS) == 8
        assert set(PARSEC_ORDER) == set(PARSEC_WORKLOADS)

    def test_get_workload(self):
        assert get_workload("dedup").name == "dedup"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("facesim")

    def test_ordering(self):
        assert [w.name for w in all_workloads()] == PARSEC_ORDER


class TestRoundShares:
    @given(
        name=st.sampled_from(PARSEC_ORDER),
        r=st.integers(0, 19),
        n=st.integers(1, 24),
    )
    @settings(max_examples=80, deadline=None)
    def test_shares_sum_to_parallel_work(self, name, r, n):
        w = get_workload(name)
        shares = w.round_shares(r, n)
        assert len(shares) == n
        expected = w.roi_work / w.rounds * (1 - w.serial_fraction_per_round)
        assert sum(shares) == pytest.approx(expected)
        assert all(s > 0 for s in shares)

    def test_deterministic(self):
        w = get_workload("ferret")
        assert w.round_shares(3, 8) == w.round_shares(3, 8)

    def test_rounds_differ(self):
        w = get_workload("ferret")
        assert w.round_shares(0, 8) != w.round_shares(1, 8)

    def test_balanced_app_has_tight_shares(self):
        w = get_workload("blackscholes")
        shares = w.round_shares(0, 20)
        assert max(shares) / min(shares) < 1.2

    def test_imbalanced_app_has_spread_shares(self):
        w = get_workload("ferret")
        spread = []
        for r in range(w.rounds):
            shares = w.round_shares(r, 20)
            spread.append(max(shares) / min(shares))
        assert max(spread) > 2.0

    def test_serial_work_accounting(self):
        w = get_workload("bodytrack")
        per_round = w.round_serial_work()
        assert per_round * w.rounds == pytest.approx(
            w.roi_work * w.serial_fraction_per_round
        )


class TestClasses:
    """Figure 1's qualitative classes must be encoded in the parameters."""

    def test_scalable_apps_balanced(self):
        for name in ("blackscholes", "canneal", "raytrace"):
            w = get_workload(name)
            assert w.imbalance_cv <= 0.05
            assert w.serial_fraction_per_round <= 0.01

    def test_bodytrack_serializes(self):
        assert get_workload("bodytrack").serial_fraction_per_round >= 0.05

    def test_pipeline_apps_imbalanced(self):
        for name in ("ferret", "freqmine", "dedup", "swaptions"):
            assert get_workload(name).imbalance_cv >= 0.3

    def test_validation_rejects_bad_fraction(self):
        w = get_workload("dedup")
        with pytest.raises(ValueError):
            ParallelWorkload(
                name="bad",
                kernel=w.kernel,
                roi_work=1e9,
                serial_init=0,
                serial_final=0,
                rounds=4,
                imbalance_cv=0.1,
                serial_fraction_per_round=1.5,
            )

"""The scenario catalog: named arrival processes beyond the paper's
three closed-form distributions."""

import subprocess
import sys

import pytest

from repro.core.scenarios import (
    DEFAULT_HORIZON,
    SCENARIOS,
    Scenario,
    get_scenario,
    scenario_names,
)

EXPECTED = (
    "steady",
    "datacenter",
    "bursty",
    "flash-crowd",
    "latency-classes",
    "peak-load",
)


class TestCatalog:
    def test_expected_scenarios_present(self):
        for name in EXPECTED:
            assert name in SCENARIOS

    def test_names_in_registry_order(self):
        assert scenario_names() == tuple(SCENARIOS)

    def test_every_entry_is_a_scenario(self):
        for name, scenario in SCENARIOS.items():
            assert isinstance(scenario, Scenario)
            assert scenario.name == name
            assert scenario.description

    def test_unknown_scenario_lists_available(self):
        with pytest.raises(ValueError, match="steady"):
            get_scenario("nope")

    def test_get_scenario_round_trips(self):
        assert get_scenario("bursty") is SCENARIOS["bursty"]


class TestScenarioRuns:
    @pytest.mark.parametrize("name", EXPECTED)
    def test_produces_valid_distribution(self, name):
        dist = get_scenario(name).distribution(max_threads=12, horizon=4_000.0)
        assert dist.max_threads == 12
        assert sum(dist.probabilities) == pytest.approx(1.0)

    def test_distribution_is_named(self):
        dist = get_scenario("steady").distribution(
            max_threads=12, horizon=4_000.0
        )
        assert dist.name == "steady-12"

    def test_deterministic_per_seed(self):
        a = get_scenario("bursty").simulate(
            max_threads=8, horizon=4_000.0, seed=5
        )
        b = get_scenario("bursty").simulate(
            max_threads=8, horizon=4_000.0, seed=5
        )
        assert a == b

    def test_seed_changes_trace(self):
        a = get_scenario("bursty").timeline(
            max_threads=8, horizon=4_000.0, seed=5
        )
        b = get_scenario("bursty").timeline(
            max_threads=8, horizon=4_000.0, seed=6
        )
        assert a.segments != b.segments

    def test_capacity_respected(self):
        tl = get_scenario("peak-load").timeline(
            max_threads=8, horizon=4_000.0
        )
        assert tl.max_threads <= 8

    def test_peak_load_saturates(self):
        sim = get_scenario("peak-load").simulate(
            max_threads=8, horizon=DEFAULT_HORIZON
        )
        assert sim.jobs_queued > 0
        assert sim.timeline.mean_threads > 6.0

    def test_bursty_is_burstier_than_steady(self):
        # The Pareto on-off process idles far more than the steady
        # Poisson stream at comparable turnover.
        bursty = get_scenario("bursty").simulate(max_threads=24)
        steady = get_scenario("steady").simulate(max_threads=24)
        assert bursty.idle_time > steady.idle_time

    def test_flash_crowd_has_batches(self):
        sim = get_scenario("flash-crowd").simulate(max_threads=24)
        assert sim.max_queue_length > 0 or sim.timeline.max_threads > 10


class TestCrossProcessDeterminism:
    def test_trace_identical_in_fresh_interpreter(self):
        """Scenario traces must not depend on interpreter state (hash
        randomization, import order): the serve daemon and the local CLI
        must see the same distribution for the same (scenario, seed)."""
        code = (
            "from repro.core.scenarios import get_scenario\n"
            "d = get_scenario('datacenter').distribution("
            "max_threads=10, horizon=4000.0, seed=9)\n"
            "print(repr(d.probabilities))\n"
        )
        runs = [
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, check=True,
            ).stdout
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        local = get_scenario("datacenter").distribution(
            max_threads=10, horizon=4_000.0, seed=9
        )
        assert runs[0].strip() == repr(local.probabilities)

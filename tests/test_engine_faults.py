"""Failure paths of the evaluation engine, driven by fault injection.

Every scenario the fault-tolerance layer claims to survive is exercised
here deterministically through :mod:`repro.engine.faults`: raising units,
killed workers (``BrokenProcessPool``), retry-then-succeed, per-unit
timeouts, store I/O errors and unwritable cache directories.
"""

import json
import os

import pytest

from repro.core.designs import get_design
from repro.core.study import DesignSpaceStudy
from repro.engine import (
    Engine,
    EngineFailureError,
    ParallelExecutor,
    ResultStore,
    UnitFailure,
    WorkUnit,
    content_key,
    payload_from_result,
)
from repro.engine import faults
from repro.engine.store import STORE_SCHEMA_VERSION
from repro.cli import main

MIX = ("mcf", "tonto", "libquantum", "hmmer")


def unit(design="4B", mix=MIX, smt=True, **kwargs):
    return WorkUnit(design=get_design(design), mix=tuple(mix), smt=smt, **kwargs)


def single_units():
    """Four one-benchmark units; only the mcf one matches mcf faults."""
    return [unit(mix=(b,)) for b in MIX]


@pytest.fixture(autouse=True)
def clean_faults():
    """No fault spec leaks into, or out of, any test."""
    faults.reset()
    yield
    faults.reset()


@pytest.fixture(scope="module")
def no_fault_results():
    """The ground truth: a serial, fault-free evaluation of the test units."""
    return Engine(jobs=1).evaluate(single_units())


class TestSpecParsing:
    def test_full_grammar(self):
        spec = (
            "raise:benchmark=mcf:times=2; kill:design=8m:exit_code=3;"
            "slow:seconds=1.5:smt=false; store-write:times=1; store-read"
        )
        parsed = faults.parse_spec(spec)
        assert [f.kind for f in parsed] == [
            "raise", "kill", "slow", "store-write", "store-read",
        ]
        assert parsed[0].benchmark == "mcf" and parsed[0].times == 2
        assert parsed[1].exit_code == 3
        assert parsed[2].seconds == 1.5 and parsed[2].smt is False
        assert parsed[3].times == 1

    def test_empty_spec(self):
        assert faults.parse_spec("") == []
        assert faults.parse_spec(" ; ") == []

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            faults.parse_spec("explode:benchmark=mcf")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fault field"):
            faults.parse_spec("raise:when=later")

    def test_malformed_field_rejected(self):
        with pytest.raises(ValueError, match="malformed fault field"):
            faults.parse_spec("raise:benchmark")

    def test_install_validates_before_activating(self):
        with pytest.raises(ValueError):
            faults.install("bogus:x=1")
        assert os.environ.get(faults.FAULT_SPEC_ENV) is None

    def test_matching_fields(self):
        (fault,) = faults.parse_spec("raise:benchmark=mcf:design=4B:smt=true")
        assert fault.matches_unit(unit(mix=("mcf", "tonto")))
        assert not fault.matches_unit(unit(mix=("tonto",)))
        assert not fault.matches_unit(unit(design="8m", mix=("mcf",)))
        assert not fault.matches_unit(unit(mix=("mcf",), smt=False))


class TestRaisingUnit:
    def test_failure_is_isolated(self, no_fault_results):
        """One poisoned unit: every other slot matches the no-fault run."""
        faults.install("raise:benchmark=mcf")
        results = Engine(jobs=1).evaluate(single_units(), on_failure="return")
        assert isinstance(results[0], UnitFailure)
        assert results[0].error_type == "InjectedFault"
        assert results[0].attempts == 1
        assert results[1:] == no_fault_results[1:]

    def test_raise_mode_surfaces_structured_error(self, tmp_path):
        """Default mode raises, but only after successes reach the store."""
        faults.install("raise:benchmark=mcf")
        store = ResultStore(tmp_path)
        units = single_units()
        with pytest.raises(EngineFailureError) as excinfo:
            Engine(jobs=1, store=store).evaluate(units)
        assert len(excinfo.value.failures) == 1
        assert "mcf" in str(excinfo.value)
        # The three healthy units were written back before the raise.
        for u in units[1:]:
            assert store.get(u.content_key) is not None
        assert store.get(units[0].content_key) is None

    def test_attempts_tracks_retry_budget(self):
        faults.install("raise:benchmark=mcf")
        (outcome,) = ParallelExecutor(jobs=1, retries=2, backoff=0.0).map(
            [unit(mix=("mcf",))]
        )
        assert not outcome.ok
        assert outcome.attempts == 3

    def test_failure_tallied_in_stats(self):
        faults.install("raise:benchmark=mcf")
        engine = Engine(jobs=1)
        engine.evaluate(single_units(), on_failure="return")
        assert engine.stats.units_failed == 1
        assert engine.stats.units_computed == 3
        assert len(engine.stats.failures) == 1
        assert engine.stats.failures[0]["error_type"] == "InjectedFault"
        assert "faults:" in engine.stats.formatted()
        assert engine.run_summary()["units_failed"] == 1


class TestRetryThenSucceed:
    def test_serial_retry_heals(self, no_fault_results):
        faults.install("raise:benchmark=mcf:times=1")
        engine = Engine(jobs=1, retries=1, backoff=0.0)
        results = engine.evaluate(single_units())
        assert results == no_fault_results
        assert engine.stats.units_failed == 0
        assert engine.stats.units_retried == 1
        assert engine.stats.retry_attempts == 1

    def test_parallel_retry_heals(self, no_fault_results):
        faults.install("raise:benchmark=mcf:times=1")
        engine = Engine(jobs=2, retries=1, backoff=0.0)
        results = engine.evaluate(single_units())
        assert results == no_fault_results
        assert engine.stats.units_failed == 0

    def test_parallel_failure_recovers_serially_in_parent(self, no_fault_results):
        """Worker-only failures heal in the parent's recovery pass."""
        # kill is worker-only by design; use it with jobs=2 but times
        # bounded so the pool-level recovery is what gets exercised below.
        # Here: a raise fault that exhausts the worker's budget but not the
        # parent's is impossible to express per-process with fork (the
        # child inherits the parent's counters), so instead assert that a
        # persistent failure keeps its UnitFailure through the recovery
        # pass with attempts accumulated.
        faults.install("raise:benchmark=mcf")
        engine = Engine(jobs=2, retries=1, backoff=0.0)
        results = engine.evaluate(single_units(), on_failure="return")
        assert isinstance(results[0], UnitFailure)
        assert results[0].attempts == 3  # 2 worker attempts + 1 recovery
        assert results[1:] == no_fault_results[1:]


class TestKilledWorker:
    def test_broken_pool_recovery(self, no_fault_results):
        """A worker dying mid-batch loses nothing and kills no result."""
        faults.install("kill:benchmark=mcf")
        executor = ParallelExecutor(jobs=2, chunksize=1, pool="per-call")
        outcomes = executor.map(single_units())
        assert executor.broken_pools >= 1
        assert all(o.ok for o in outcomes)
        assert [o.value for o in outcomes] == no_fault_results

    def test_engine_counts_broken_pools(self, no_fault_results):
        faults.install("kill:benchmark=mcf")
        engine = Engine(jobs=2, chunksize=1, pool="per-call")
        results = engine.evaluate(single_units())
        assert results == no_fault_results
        assert engine.stats.broken_pools >= 1
        assert engine.stats.units_failed == 0

    def test_kill_fault_never_fires_in_parent(self):
        """The guard that keeps serial re-execution from killing the CLI."""
        faults.install("kill:benchmark=mcf")
        # Serial evaluation happens in this very process; if the fault
        # fired here the test run itself would die with os._exit.
        (outcome,) = ParallelExecutor(jobs=1).map([unit(mix=("mcf",))])
        assert outcome.ok


class TestKilledWorkerPersistent:
    """The persistent pool's answer to worker death: respawn one worker."""

    def test_worker_respawn_recovery(self, no_fault_results):
        faults.install("kill:benchmark=mcf")
        executor = ParallelExecutor(jobs=2)
        try:
            outcomes = executor.map(single_units())
            assert executor.worker_respawns >= 1
            assert executor.broken_pools == 0  # no whole-pool teardown
            assert all(o.ok for o in outcomes)
            assert [o.value for o in outcomes] == no_fault_results
            # The pool is still fully staffed after the respawn.
            assert len(executor.pool_pids()) == 2
        finally:
            executor.shutdown()

    def test_engine_counts_worker_respawns(self, no_fault_results):
        faults.install("kill:benchmark=mcf")
        engine = Engine(jobs=2)
        try:
            results = engine.evaluate(single_units())
            assert results == no_fault_results
            assert engine.stats.worker_respawns >= 1
            assert engine.stats.broken_pools == 0
            assert engine.stats.units_failed == 0
            assert "respawn" in engine.stats.formatted()
        finally:
            engine.shutdown()

    def test_spec_installed_after_pool_start_still_fires(self, no_fault_results):
        """Workers fork at first use; a spec installed *afterwards* must
        still reach them (it ships with every task)."""
        engine = Engine(jobs=2)
        try:
            assert engine.evaluate(single_units()) == no_fault_results
            faults.install("raise:benchmark=mcf")
            results = engine.evaluate(single_units(), on_failure="return")
            # If the warm workers had missed the spec, the mcf unit would
            # have evaluated cleanly in its worker.
            assert isinstance(results[0], UnitFailure)
            assert results[1:] == no_fault_results[1:]
        finally:
            engine.shutdown()

    def test_sibling_units_survive_a_killed_worker(self, no_fault_results):
        """Only the dying worker's unit re-runs; siblings keep their
        in-flight results (nothing is torn down pool-wide)."""
        faults.install("kill:benchmark=mcf:times=1")
        engine = Engine(jobs=2)
        try:
            results = engine.evaluate(single_units())
            assert results == no_fault_results
            assert engine.stats.worker_respawns == 1
            assert engine.stats.units_failed == 0
        finally:
            engine.shutdown()


class TestUnitTimeout:
    def test_timeout_becomes_structured_failure(self):
        faults.install("slow:benchmark=mcf:seconds=30")
        (outcome,) = ParallelExecutor(jobs=1, unit_timeout=0.2).map(
            [unit(mix=("mcf",))]
        )
        assert not outcome.ok
        assert outcome.value.error_type == "UnitTimeoutError"
        assert "timeout" in outcome.value.message

    def test_timeout_then_retry_succeeds(self, no_fault_results):
        faults.install("slow:benchmark=mcf:seconds=30:times=1")
        engine = Engine(jobs=1, retries=1, backoff=0.0, unit_timeout=0.2)
        results = engine.evaluate(single_units())
        assert results == no_fault_results
        assert engine.stats.units_retried == 1

    def test_timer_disarmed_after_map(self):
        import signal

        faults.install("slow:benchmark=mcf:seconds=30")
        ParallelExecutor(jobs=1, unit_timeout=0.2).map([unit(mix=("mcf",))])
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)

    def test_off_main_thread_degrades_to_no_timeout(self):
        """SIGALRM can only arm on the main thread; elsewhere the timeout
        must degrade to a structured warning, not crash the dispatch.

        Regression test for the serve daemon, whose dispatcher thread runs
        serial engine evaluation: ``signal.setitimer`` from a non-main
        thread raises ValueError and used to take the whole batch down.
        """
        import threading

        from repro.engine import executor as executor_module
        from repro.obs import METRICS, reset_observability

        executor_module._TIMEOUT_FALLBACK_WARNED = False
        METRICS.reset()
        METRICS.enable()
        outcomes = []
        errors = []

        def run():
            try:
                outcomes.extend(
                    ParallelExecutor(jobs=1, unit_timeout=0.2).map(
                        [unit(mix=("mcf",))]
                    )
                )
            except BaseException as exc:  # pragma: no cover - the regression
                errors.append(exc)

        try:
            thread = threading.Thread(target=run)
            thread.start()
            thread.join(timeout=60)
            assert not errors
            (outcome,) = outcomes
            assert outcome.ok  # ran to completion, just without a budget
            assert METRICS.snapshot()["counters"]["engine.timeout_fallbacks"] == 1
        finally:
            reset_observability()
            executor_module._TIMEOUT_FALLBACK_WARNED = False


class TestStoreDegradation:
    def test_cache_dir_that_is_a_file_degrades(self, tmp_path):
        bogus = tmp_path / "not-a-dir"
        bogus.write_text("in the way")
        store = ResultStore(bogus)
        key = "ab" + "0" * 62
        with pytest.warns(RuntimeWarning, match="degraded to in-memory"):
            store.put(key, {"x": 1})
        assert store.degraded
        assert store.get(key) == {"x": 1}  # served from memory
        assert store.stats.memory_writes == 1
        assert store.content_summary()["degraded"] is True

    def test_injected_write_error_degrades(self, tmp_path):
        faults.install("store-write")
        store = ResultStore(tmp_path)
        with pytest.warns(RuntimeWarning, match="degraded"):
            store.put("cd" + "0" * 62, {"y": 2})
        assert store.degraded
        assert store.get("cd" + "0" * 62) == {"y": 2}

    def test_injected_read_error_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ef" + "0" * 62
        store.put(key, {"z": 3})
        faults.install("store-read:times=1")
        assert store.get(key) is None  # injected miss
        assert store.get(key) == {"z": 3}  # next read is clean

    @pytest.mark.skipif(
        os.geteuid() == 0, reason="root ignores directory write permissions"
    )
    def test_read_only_cache_dir_degrades(self, tmp_path):
        ro = tmp_path / "ro"
        ro.mkdir()
        ro.chmod(0o555)
        try:
            store = ResultStore(ro)
            engine = Engine(jobs=1, store=store)
            with pytest.warns(RuntimeWarning, match="degraded"):
                results = engine.evaluate([unit(mix=("mcf",))])
            assert not isinstance(results[0], UnitFailure)
            engine.write_summary()  # must not raise
            assert store.read_run_summary()["units_total"] == 1
        finally:
            ro.chmod(0o755)

    def test_degraded_run_completes_end_to_end(self, tmp_path, no_fault_results):
        bogus = tmp_path / "file-as-cache"
        bogus.write_text("")
        store = ResultStore(bogus)
        engine = Engine(jobs=1, store=store)
        with pytest.warns(RuntimeWarning):
            results = engine.evaluate(single_units())
        assert results == no_fault_results
        engine.write_summary()
        summary = store.read_run_summary()
        assert summary["store"]["degraded"] is True
        # Second evaluation hits the in-memory fallback.
        engine.evaluate(single_units())
        assert engine.stats.store_hits == len(single_units())


class TestCorruptRecordDeletion:
    def _plant_bad_payload(self, store, key):
        path = store._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {"schema": STORE_SCHEMA_VERSION, "key": key, "payload": {}}
            )
        )
        return path

    def test_bad_payload_deleted_even_when_recompute_fails(self, tmp_path):
        store = ResultStore(tmp_path)
        u = unit(mix=("mcf",))
        path = self._plant_bad_payload(store, u.content_key)
        faults.install("raise:benchmark=mcf")  # recompute keeps failing
        (result,) = Engine(jobs=1, store=store).evaluate(
            [u], on_failure="return"
        )
        assert isinstance(result, UnitFailure)
        assert not path.exists()  # deleted at detection, not post-recompute
        assert store.stats.corrupt == 1

    def test_bad_payload_recomputed_and_rewritten(self, tmp_path):
        store = ResultStore(tmp_path)
        u = unit(mix=("mcf",))
        self._plant_bad_payload(store, u.content_key)
        (result,) = Engine(jobs=1, store=store).evaluate([u])
        assert not isinstance(result, UnitFailure)
        assert store.get(u.content_key) == payload_from_result(result)


class TestMaintenanceSweep:
    def _populate(self, tmp_path):
        store = ResultStore(tmp_path)
        Engine(jobs=1, store=store).evaluate([unit(mix=("mcf",)), unit(mix=("tonto",))])
        # Debris: a writer that died mid-write, an empty shard, a dead
        # last_run temp file.
        shard = store.root / "zz"
        shard.mkdir(parents=True)
        occupied_shard = store._record_paths()[0].parent
        (occupied_shard / ".deadbeef-x.tmp").write_text("{")
        (store.cache_dir / ".last_run-y.tmp").write_text("{")
        return store

    def test_content_summary_reports_debris(self, tmp_path):
        store = self._populate(tmp_path)
        summary = store.content_summary()
        assert summary["orphan_tmp_files"] == 2
        assert summary["empty_shards"] == 1

    def test_clear_sweeps_debris(self, tmp_path):
        store = self._populate(tmp_path)
        assert store.clear() == 2
        summary = store.content_summary()
        assert summary["records"] == 0
        assert summary["orphan_tmp_files"] == 0
        assert summary["empty_shards"] == 0

    def test_prune_sweeps_debris(self, tmp_path):
        store = self._populate(tmp_path)
        store.prune(max_records=1)
        summary = store.content_summary()
        assert summary["records"] == 1
        assert summary["orphan_tmp_files"] == 0
        assert summary["empty_shards"] == 0

    def test_sweep_is_idempotent(self, tmp_path):
        store = self._populate(tmp_path)
        first = store.sweep_debris()
        assert first == {"tmp_files": 2, "empty_shards": 1}
        assert store.sweep_debris() == {"tmp_files": 0, "empty_shards": 0}


class TestCanonicalizeMixedKeys:
    def test_mixed_type_keys_do_not_crash(self):
        key = content_key({1: "a", "b": 2})
        assert len(key) == 64

    def test_int_and_str_keys_hash_identically(self):
        assert content_key({1: "x", 10: "y"}) == content_key({"1": "x", "10": "y"})

    def test_numeric_order_matches_string_order(self):
        ints = content_key({2: "a", 10: "b", 1: "c"})
        strs = content_key({"10": "b", "1": "c", "2": "a"})
        assert ints == strs


class TestStudyFallback:
    def test_persistent_failure_heals_through_serial_path(self):
        """The study's last resort: engine failure ⇒ plain in-process eval."""
        faults.install("raise:benchmark=mcf")
        plain = DesignSpaceStudy()
        engine_study = DesignSpaceStudy(engine=Engine(jobs=1))
        expected = plain.evaluate_mix("4B", ["mcf", "tonto"])
        # The engine reports a UnitFailure (injection happens only on the
        # engine path); the study then computes the point serially, which
        # matches the engine-less study bit for bit.
        assert engine_study.evaluate_mix("4B", ["mcf", "tonto"]) == expected
        assert engine_study.engine.stats.units_failed == 1


class TestCLIFaultTolerance:
    def test_sweep_retries_injected_crash(self, tmp_path, capsys):
        faults.install("raise:benchmark=mcf:times=1")
        rc = main(
            [
                "sweep", "--design", "4B", "--kind", "heterogeneous",
                "--max-threads", "2", "--jobs", "1", "--retries", "1",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "retried" in err

    def test_sweep_survives_unwritable_cache_dir(self, tmp_path, capsys):
        bogus = tmp_path / "cache-file"
        bogus.write_text("")
        with pytest.warns(RuntimeWarning, match="degraded"):
            rc = main(
                [
                    "sweep", "--design", "4B", "--kind", "heterogeneous",
                    "--max-threads", "2", "--jobs", "1",
                    "--cache-dir", str(bogus),
                ]
            )
        assert rc == 0
        err = capsys.readouterr().err
        assert "DEGRADED" in err

    def test_bad_retry_flags_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "sweep", "--design", "4B", "--max-threads", "2",
                    "--retries", "-1", "--cache-dir", str(tmp_path),
                ]
            )
        with pytest.raises(SystemExit):
            main(
                [
                    "sweep", "--design", "4B", "--max-threads", "2",
                    "--unit-timeout", "0", "--cache-dir", str(tmp_path),
                ]
            )

    def test_cache_stats_reports_faults_and_debris(self, tmp_path, capsys):
        faults.install("raise:benchmark=mcf:times=1")
        cache = tmp_path / "cache"
        rc = main(
            [
                "sweep", "--design", "4B", "--kind", "heterogeneous",
                "--max-threads", "2", "--retries", "1",
                "--cache-dir", str(cache),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        faults.reset()
        (ResultStore(cache).root / "empty-shard").mkdir(parents=True)
        rc = main(["cache", "stats", "--cache-dir", str(cache)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "faults" in out
        assert "debris" in out


class TestSlabFaults:
    def _units(self):
        return [unit(mix=(b,)) for b in MIX] + [unit(mix=MIX[:2])]

    def test_slab_failure_fans_out_per_point(self, no_fault_results):
        """A poisoned slab yields one UnitFailure per member point."""
        faults.install("raise:benchmark=mcf")
        results = Engine(jobs=1, slab_size=8).evaluate(
            single_units(), on_failure="return"
        )
        # All four single-benchmark units share one 4B/smt slab, so the
        # mcf fault poisons the whole slab; each slot carries its own
        # structured failure with the per-point mix and content key.
        assert all(isinstance(r, UnitFailure) for r in results)
        assert [r.mix for r in results] == [u.mix for u in single_units()]
        keys = [u.content_key for u in single_units()]
        assert [r.content_key for r in results] == keys

    def test_parallel_slab_failure_recovers_clean_points(self, no_fault_results):
        """With workers, clean members heal serially; the poisoned one stays."""
        faults.install("raise:benchmark=mcf")
        results = Engine(jobs=2, slab_size=2).evaluate(
            single_units(), on_failure="return"
        )
        assert isinstance(results[0], UnitFailure)  # the mcf unit itself
        assert results[1:] == no_fault_results[1:]  # healed in the parent

    def test_slab_retry_then_succeed(self, no_fault_results):
        faults.install("raise:benchmark=mcf:times=1")
        results = Engine(jobs=1, slab_size=8, retries=1, backoff=0.0).evaluate(
            single_units()
        )
        assert results == no_fault_results

    def test_slab_timeout_scales_with_size(self):
        """The per-unit budget multiplies by slab size, so slabs don't
        spuriously time out; a slow fault still trips the scaled budget."""
        faults.install("slow:benchmark=mcf:seconds=1.2")
        results = Engine(jobs=1, slab_size=4, unit_timeout=0.25).evaluate(
            single_units(), on_failure="return"
        )
        assert all(isinstance(r, UnitFailure) for r in results)
        assert results[0].error_type == "UnitTimeoutError"

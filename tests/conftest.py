"""Shared fixtures: one memoized study per test session."""

import pytest

from repro.core.study import DesignSpaceStudy


@pytest.fixture(scope="session")
def study() -> DesignSpaceStudy:
    """A session-wide study so expensive grid points are computed once."""
    return DesignSpaceStudy()

"""Cross-validation: the interval tier against the cycle-level tier.

These are the repository's trust anchor: the design-space figures run on
the interval model, so its single-thread predictions must track the
mechanistic cycle-level simulator in ranking and magnitude.
"""

import pytest

from repro.analysis.validation import cross_validate
from repro.microarch.config import BIG, SMALL
from repro.workloads.spec import all_profiles

pytestmark = pytest.mark.slow

#: Per-benchmark IPC ratio band (cycle / interval) the tiers must stay in.
RATIO_BAND = (0.55, 1.75)


@pytest.fixture(scope="module")
def cv_big():
    return cross_validate(all_profiles(), BIG, instructions=15_000)


@pytest.fixture(scope="module")
def cv_small():
    return cross_validate(all_profiles(), SMALL, instructions=15_000)


class TestBigCoreAgreement:
    def test_rank_correlation(self, cv_big):
        assert cv_big.rank_correlation > 0.8

    def test_ipc_ratio_band(self, cv_big):
        for name, ratio in cv_big.ratios.items():
            assert RATIO_BAND[0] < ratio < RATIO_BAND[1], (
                f"{name}: cycle/interval IPC ratio {ratio:.2f} out of band"
            )

    def test_extremes_agree(self, cv_big):
        # The fastest and slowest benchmarks match across tiers (top-2 sets).
        def top(d):
            return set(sorted(d, key=d.get)[-2:])

        def bottom(d):
            return set(sorted(d, key=d.get)[:2])

        assert top(cv_big.interval_ipc) & top(cv_big.cycle_ipc)
        assert bottom(cv_big.interval_ipc) & bottom(cv_big.cycle_ipc)


class TestSmallCoreAgreement:
    def test_rank_correlation(self, cv_small):
        assert cv_small.rank_correlation > 0.75

    def test_ipc_ratio_band(self, cv_small):
        for name, ratio in cv_small.ratios.items():
            assert RATIO_BAND[0] < ratio < RATIO_BAND[1], (
                f"{name}: cycle/interval IPC ratio {ratio:.2f} out of band"
            )

    def test_small_core_slower_in_both_tiers(self, cv_big, cv_small):
        for name in cv_big.interval_ipc:
            assert cv_small.interval_ipc[name] < cv_big.interval_ipc[name]
            assert cv_small.cycle_ipc[name] < cv_big.cycle_ipc[name]


class TestChipLevelAgreement:
    def test_full_chip_totals_agree(self):
        # End-to-end: the same scheduled 8-thread mix on 4B through both
        # tiers, including SMT sharing and memory-system contention.
        from repro.analysis.validation import cross_validate_chip
        from repro.core.designs import get_design
        from repro.workloads.spec import get_profile

        mix = [
            get_profile(n)
            for n in ("mcf", "tonto", "hmmer", "libquantum",
                      "omnetpp", "calculix", "astar", "gobmk")
        ]
        interval_ipc, cycle_ipc = cross_validate_chip(
            get_design("4B"), mix, instructions=8_000
        )
        assert 0.6 < cycle_ipc / interval_ipc < 1.4

"""Banked DRAM and bus timing model."""

import pytest

from repro.memory.dram import DramModel
from repro.microarch.uncore import DramConfig


def model(banks=8, latency=45.0, bw=8e9):
    return DramModel(
        DramConfig(
            num_banks=banks,
            access_latency_ns=latency,
            bus_bandwidth_bytes_per_s=bw,
        )
    )


class TestMapping:
    def test_line_interleaving(self):
        m = model()
        assert m.bank_of(0) == 0
        assert m.bank_of(64) == 1
        assert m.bank_of(8 * 64) == 0

    def test_transfer_time(self):
        m = model(bw=8e9)
        assert m.transfer_ns == pytest.approx(8.0)  # 64 B at 8 GB/s


class TestTiming:
    def test_unloaded_latency(self):
        m = model()
        done = m.access(0, now_ns=0.0)
        assert done == pytest.approx(45.0 + 8.0)
        assert done == pytest.approx(m.unloaded_latency_ns())

    def test_same_bank_serializes(self):
        m = model()
        first = m.access(0, 0.0)
        second = m.access(8 * 64, 0.0)  # same bank 0
        assert second >= first + 45.0 - 1e-9

    def test_different_banks_overlap(self):
        m = model()
        m.access(0, 0.0)
        second = m.access(64, 0.0)  # bank 1: only bus conflicts
        assert second < 45.0 + 3 * 8.0

    def test_bus_serializes_transfers(self):
        m = model()
        done = [m.access(i * 64, 0.0) for i in range(8)]  # 8 distinct banks
        # All bank accesses overlap, but the bus moves one line at a time.
        assert done[-1] >= 45.0 + 8 * 8.0 - 1e-9

    def test_idle_gap_resets_queueing(self):
        m = model()
        m.access(0, 0.0)
        late = m.access(8 * 64, 1e6)  # long after the first completed
        assert late - 1e6 == pytest.approx(m.unloaded_latency_ns())

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="now_ns"):
            model().access(0, -1.0)


class TestStats:
    def test_latency_accounting(self):
        m = model()
        m.access(0, 0.0)
        assert m.stats.requests == 1
        assert m.stats.mean_latency_ns == pytest.approx(53.0)
        assert m.stats.mean_queue_ns == pytest.approx(0.0)

    def test_queue_accounting_under_conflict(self):
        m = model()
        m.access(0, 0.0)
        m.access(8 * 64, 0.0)
        assert m.stats.mean_queue_ns > 0.0

    def test_reset(self):
        m = model()
        m.access(0, 0.0)
        m.reset()
        assert m.stats.requests == 0
        assert m.access(0, 0.0) == pytest.approx(53.0)

    def test_higher_bandwidth_faster_transfers(self):
        slow, fast = model(bw=8e9), model(bw=16e9)
        assert fast.transfer_ns == pytest.approx(slow.transfer_ns / 2)

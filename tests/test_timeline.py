"""Active-thread timelines and the job arrival/departure simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timeline import (
    ThreadCountTimeline,
    simulate_arrival_process,
    simulate_job_arrivals,
)


class TestTimeline:
    def test_basic_accounting(self):
        tl = ThreadCountTimeline.from_samples([(2.0, 1), (1.0, 4)])
        assert tl.total_time == pytest.approx(3.0)
        assert tl.max_threads == 4
        assert tl.mean_threads == pytest.approx(2.0)
        assert tl.time_at(1) == pytest.approx(2.0)
        assert tl.time_at(2) == 0.0

    def test_to_distribution_time_weighted(self):
        tl = ThreadCountTimeline.from_samples([(3.0, 1), (1.0, 2)])
        dist = tl.to_distribution()
        assert dist.probability(1) == pytest.approx(0.75)
        assert dist.probability(2) == pytest.approx(0.25)

    def test_to_distribution_clamps(self):
        tl = ThreadCountTimeline.from_samples([(1.0, 30), (1.0, 2)])
        dist = tl.to_distribution(max_threads=24)
        assert dist.max_threads == 24
        assert dist.probability(24) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            ThreadCountTimeline(())
        with pytest.raises(ValueError, match="durations"):
            ThreadCountTimeline.from_samples([(0.0, 1)])
        with pytest.raises(ValueError, match="counts"):
            ThreadCountTimeline.from_samples([(1.0, 0)])

    def test_distribution_feeds_study(self, study):
        tl = ThreadCountTimeline.from_samples([(1.0, 1), (1.0, 4), (2.0, 8)])
        dist = tl.to_distribution()
        value = study.aggregate_stp("4B", "heterogeneous", dist, smt=True)
        assert value > 0


class TestJobArrivals:
    def test_deterministic(self):
        a = simulate_job_arrivals(0.05, 100.0, seed=3)
        b = simulate_job_arrivals(0.05, 100.0, seed=3)
        assert a.segments == b.segments

    def test_seed_changes_outcome(self):
        a = simulate_job_arrivals(0.05, 100.0, seed=3)
        b = simulate_job_arrivals(0.05, 100.0, seed=4)
        assert a.segments != b.segments

    def test_mean_threads_tracks_offered_load(self):
        # Little's law: mean concurrency ~ arrival_rate x service time.
        light = simulate_job_arrivals(0.02, 100.0, horizon=50_000.0)
        heavy = simulate_job_arrivals(0.12, 100.0, horizon=50_000.0)
        assert light.mean_threads < heavy.mean_threads
        assert light.mean_threads == pytest.approx(2.0, abs=1.2)

    def test_capacity_respected(self):
        tl = simulate_job_arrivals(1.0, 100.0, max_threads=8, horizon=2_000.0)
        assert tl.max_threads <= 8

    def test_segments_coalesced(self):
        tl = simulate_job_arrivals(0.05, 100.0, horizon=5_000.0)
        for (d1, c1), (d2, c2) in zip(tl.segments, tl.segments[1:]):
            assert c1 != c2

    @given(
        rate=st.floats(0.01, 0.3),
        service=st.floats(20.0, 200.0),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=25, deadline=None)
    def test_distribution_always_valid(self, rate, service, seed):
        tl = simulate_job_arrivals(rate, service, horizon=3_000.0, seed=seed)
        dist = tl.to_distribution(max_threads=24)
        assert sum(dist.probabilities) == pytest.approx(1.0)
        assert tl.total_time > 0


class TestArrivalProcess:
    """The generalized event-loop simulator behind the scenario library."""

    def exp(self, mean):
        return lambda rng, _t: rng.expovariate(1.0 / mean)

    def test_time_conservation(self):
        sim = simulate_arrival_process(
            self.exp(20.0), self.exp(100.0), horizon=5_000.0, seed=7
        )
        assert sim.timeline.total_time + sim.idle_time == pytest.approx(
            5_000.0
        )

    @given(
        mean_gap=st.floats(5.0, 200.0),
        mean_service=st.floats(20.0, 200.0),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=25, deadline=None)
    def test_conservation_holds_across_loads(
        self, mean_gap, mean_service, seed
    ):
        sim = simulate_arrival_process(
            self.exp(mean_gap), self.exp(mean_service),
            horizon=3_000.0, seed=seed,
        )
        assert sim.timeline.total_time + sim.idle_time == pytest.approx(
            3_000.0
        )
        assert sim.jobs_completed <= sim.jobs_arrived

    def test_coincident_departure_before_arrival(self):
        # Deterministic lockstep: one arrival per time unit, service 2.0,
        # capacity 2.  At every even instant a departure and an arrival
        # coincide; processing the departure first means the arrival
        # always finds a free slot — nothing ever queues.
        sim = simulate_arrival_process(
            lambda rng, t: 1.0, lambda rng, t: 2.0,
            max_threads=2, horizon=10.0, seed=1,
        )
        assert sim.jobs_queued == 0
        assert sim.max_queue_length == 0
        assert sim.idle_time == pytest.approx(1.0)  # before first arrival
        assert sim.timeline.total_time == pytest.approx(9.0)

    def test_queue_drains_to_capacity_on_departure(self):
        # A batch of 5 hits a 2-wide chip with unit service: 3 jobs queue,
        # then drain as slots free.  All 5 finish by the horizon.
        sim = simulate_arrival_process(
            lambda rng, t: 30.0, lambda rng, t: 1.0,
            max_threads=2, horizon=50.0, seed=1, batch_size=lambda rng, t: 5,
        )
        assert sim.jobs_queued == 3
        assert sim.max_queue_length == 3
        assert sim.jobs_completed == 5
        assert sim.timeline.segments == ((2.0, 2), (1.0, 1))

    def test_capacity_never_exceeded(self):
        sim = simulate_arrival_process(
            self.exp(1.0), self.exp(50.0),
            max_threads=6, horizon=1_000.0, seed=3,
        )
        assert sim.timeline.max_threads <= 6
        assert sim.jobs_queued > 0  # overload really did queue jobs

    def test_nonpositive_sampler_rejected(self):
        with pytest.raises(ValueError, match="interarrival"):
            simulate_arrival_process(
                lambda rng, t: 0.0, self.exp(10.0), horizon=100.0
            )
        with pytest.raises(ValueError, match="service"):
            simulate_arrival_process(
                self.exp(10.0), lambda rng, t: -1.0, horizon=100.0
            )

    def test_deterministic_per_seed(self):
        a = simulate_arrival_process(
            self.exp(10.0), self.exp(40.0), horizon=2_000.0, seed=11
        )
        b = simulate_arrival_process(
            self.exp(10.0), self.exp(40.0), horizon=2_000.0, seed=11
        )
        assert a == b

    def test_wrapper_matches_process(self):
        # simulate_job_arrivals is sugar over the generalized process.
        tl = simulate_job_arrivals(0.05, 100.0, seed=3)
        sim = simulate_arrival_process(
            lambda rng, t: rng.expovariate(0.05),
            lambda rng, t: rng.expovariate(1.0 / 100.0),
            seed=3,
        )
        assert tl == sim.timeline


class TestToDistributionEdges:
    def test_max_threads_above_timeline_max_pads_zeros(self):
        tl = ThreadCountTimeline.from_samples([(1.0, 2)])
        dist = tl.to_distribution(max_threads=5)
        assert dist.max_threads == 5
        assert dist.support == (2,)

    def test_clamp_merges_mass_at_cap(self):
        tl = ThreadCountTimeline.from_samples([(1.0, 9), (1.0, 10), (2.0, 3)])
        dist = tl.to_distribution(max_threads=4)
        assert dist.probability(4) == pytest.approx(0.5)
        assert dist.probability(3) == pytest.approx(0.5)

    def test_single_segment_is_point_mass(self):
        dist = ThreadCountTimeline.from_samples([(5.0, 3)]).to_distribution()
        assert dist.probability(3) == pytest.approx(1.0)
        assert dist.support == (3,)

    def test_name_override(self):
        tl = ThreadCountTimeline.from_samples([(1.0, 1)])
        assert tl.to_distribution(name="web-trace").name == "web-trace"

    def test_default_name_mentions_timeline(self):
        tl = ThreadCountTimeline.from_samples([(1.0, 1)])
        assert "timeline" in tl.to_distribution().name

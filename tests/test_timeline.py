"""Active-thread timelines and the job arrival/departure simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timeline import ThreadCountTimeline, simulate_job_arrivals


class TestTimeline:
    def test_basic_accounting(self):
        tl = ThreadCountTimeline.from_samples([(2.0, 1), (1.0, 4)])
        assert tl.total_time == pytest.approx(3.0)
        assert tl.max_threads == 4
        assert tl.mean_threads == pytest.approx(2.0)
        assert tl.time_at(1) == pytest.approx(2.0)
        assert tl.time_at(2) == 0.0

    def test_to_distribution_time_weighted(self):
        tl = ThreadCountTimeline.from_samples([(3.0, 1), (1.0, 2)])
        dist = tl.to_distribution()
        assert dist.probability(1) == pytest.approx(0.75)
        assert dist.probability(2) == pytest.approx(0.25)

    def test_to_distribution_clamps(self):
        tl = ThreadCountTimeline.from_samples([(1.0, 30), (1.0, 2)])
        dist = tl.to_distribution(max_threads=24)
        assert dist.max_threads == 24
        assert dist.probability(24) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            ThreadCountTimeline(())
        with pytest.raises(ValueError, match="durations"):
            ThreadCountTimeline.from_samples([(0.0, 1)])
        with pytest.raises(ValueError, match="counts"):
            ThreadCountTimeline.from_samples([(1.0, 0)])

    def test_distribution_feeds_study(self, study):
        tl = ThreadCountTimeline.from_samples([(1.0, 1), (1.0, 4), (2.0, 8)])
        dist = tl.to_distribution()
        value = study.aggregate_stp("4B", "heterogeneous", dist, smt=True)
        assert value > 0


class TestJobArrivals:
    def test_deterministic(self):
        a = simulate_job_arrivals(0.05, 100.0, seed=3)
        b = simulate_job_arrivals(0.05, 100.0, seed=3)
        assert a.segments == b.segments

    def test_seed_changes_outcome(self):
        a = simulate_job_arrivals(0.05, 100.0, seed=3)
        b = simulate_job_arrivals(0.05, 100.0, seed=4)
        assert a.segments != b.segments

    def test_mean_threads_tracks_offered_load(self):
        # Little's law: mean concurrency ~ arrival_rate x service time.
        light = simulate_job_arrivals(0.02, 100.0, horizon=50_000.0)
        heavy = simulate_job_arrivals(0.12, 100.0, horizon=50_000.0)
        assert light.mean_threads < heavy.mean_threads
        assert light.mean_threads == pytest.approx(2.0, abs=1.2)

    def test_capacity_respected(self):
        tl = simulate_job_arrivals(1.0, 100.0, max_threads=8, horizon=2_000.0)
        assert tl.max_threads <= 8

    def test_segments_coalesced(self):
        tl = simulate_job_arrivals(0.05, 100.0, horizon=5_000.0)
        for (d1, c1), (d2, c2) in zip(tl.segments, tl.segments[1:]):
            assert c1 != c2

    @given(
        rate=st.floats(0.01, 0.3),
        service=st.floats(20.0, 200.0),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=25, deadline=None)
    def test_distribution_always_valid(self, rate, service, seed):
        tl = simulate_job_arrivals(rate, service, horizon=3_000.0, seed=seed)
        dist = tl.to_distribution(max_threads=24)
        assert sum(dist.probabilities) == pytest.approx(1.0)
        assert tl.total_time > 0

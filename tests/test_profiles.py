"""Miss-rate curves and benchmark profiles, including property-based tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import KB, MB
from repro.workloads.profiles import BenchmarkProfile, MissRateCurve

curves = st.builds(
    MissRateCurve,
    mpki_ref=st.floats(0.1, 80.0),
    alpha=st.floats(0.05, 1.0),
    floor_mpki=st.floats(0.01, 0.1),
    cap_mpki=st.floats(90.0, 200.0),
)


class TestMissRateCurve:
    def test_reference_point(self):
        curve = MissRateCurve(mpki_ref=10.0, alpha=0.5)
        assert curve.mpki(32 * KB) == pytest.approx(10.0)

    def test_power_law_shape(self):
        curve = MissRateCurve(mpki_ref=10.0, alpha=0.5, floor_mpki=0.01)
        # Quadrupling capacity halves MPKI at alpha = 0.5.
        assert curve.mpki(128 * KB) == pytest.approx(5.0)

    def test_floor_binds_at_large_capacity(self):
        curve = MissRateCurve(mpki_ref=10.0, alpha=0.5, floor_mpki=2.0)
        assert curve.mpki(1024 * MB) == 2.0

    def test_cap_binds_at_tiny_capacity(self):
        curve = MissRateCurve(mpki_ref=10.0, alpha=1.0, cap_mpki=50.0)
        assert curve.mpki(64) == 50.0

    def test_zero_capacity_gives_cap(self):
        curve = MissRateCurve(mpki_ref=10.0, alpha=0.5, cap_mpki=77.0)
        assert curve.mpki(0) == 77.0

    def test_misses_per_instruction_scaling(self):
        curve = MissRateCurve(mpki_ref=10.0, alpha=0.5)
        assert curve.misses_per_instruction(32 * KB) == pytest.approx(0.01)

    def test_floor_above_cap_rejected(self):
        with pytest.raises(ValueError, match="floor_mpki"):
            MissRateCurve(mpki_ref=1.0, alpha=0.5, floor_mpki=10.0, cap_mpki=5.0)

    @given(curve=curves, c1=st.floats(256, 64 * MB), c2=st.floats(256, 64 * MB))
    @settings(max_examples=80)
    def test_monotone_non_increasing(self, curve, c1, c2):
        lo, hi = sorted((c1, c2))
        assert curve.mpki(lo) >= curve.mpki(hi)

    @given(curve=curves, c=st.floats(1, 64 * MB))
    @settings(max_examples=80)
    def test_bounded(self, curve, c):
        assert curve.floor_mpki <= curve.mpki(c) <= curve.cap_mpki


def _profile(**overrides):
    base = dict(
        name="x",
        ilp=2.0,
        ilp_inorder=1.0,
        mem_frac=0.3,
        branch_frac=0.1,
        branch_mpki=1.0,
        dcurve=MissRateCurve(5.0, 0.4),
        icurve=MissRateCurve(0.5, 0.4),
        mlp=2.0,
    )
    base.update(overrides)
    return BenchmarkProfile(**base)


class TestBenchmarkProfile:
    def test_compute_frac(self):
        assert _profile().compute_frac == pytest.approx(0.6)

    def test_inorder_ilp_cannot_exceed_ooo(self):
        with pytest.raises(ValueError, match="ilp_inorder"):
            _profile(ilp=1.0, ilp_inorder=2.0)

    def test_fractions_must_fit(self):
        with pytest.raises(ValueError, match="must not exceed 1"):
            _profile(mem_frac=0.7, branch_frac=0.5)

    def test_cache_pressure_tracks_curve(self):
        hungry = _profile(dcurve=MissRateCurve(40.0, 0.2, floor_mpki=20.0))
        modest = _profile(dcurve=MissRateCurve(2.0, 0.5, floor_mpki=0.05))
        assert hungry.cache_pressure() > modest.cache_pressure()

    def test_cache_pressure_never_zero(self):
        tiny = _profile(dcurve=MissRateCurve(0.01, 0.9, floor_mpki=0.01))
        assert tiny.cache_pressure() > 0

    def test_profiles_hashable(self):
        # Scheduling caches key on profiles; they must stay hashable.
        assert hash(_profile()) == hash(_profile())

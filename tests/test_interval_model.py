"""Interval core model: single-thread behaviour, SMT sharing, partitioning."""

import pytest

from repro.interval.model import (
    CoreEnvironment,
    IntervalCoreModel,
    smt_issue_efficiency,
    window_limited_ilp,
)
from repro.microarch.config import BIG, MEDIUM, SMALL
from repro.util import MB
from repro.workloads.spec import get_profile

LLC_LAT = 38.0
MEM_LAT = 180.0


def env_for(core, n_threads, llc_bytes=8 * MB, mem_lat=MEM_LAT):
    return CoreEnvironment.unloaded(core, n_threads, llc_bytes, LLC_LAT, mem_lat)


def evaluate(core, bench_names, mem_lat=MEM_LAT, duty=None):
    profiles = [get_profile(n) for n in bench_names]
    env = env_for(core, len(profiles), mem_lat=mem_lat)
    return IntervalCoreModel(core).evaluate(profiles, env, duty_cycles=duty)


class TestSingleThread:
    def test_big_faster_than_medium_faster_than_small(self):
        for bench in ("tonto", "mcf", "libquantum"):
            ipcs = [
                evaluate(core, [bench]).threads[0].ipc
                for core in (BIG, MEDIUM, SMALL)
            ]
            assert ipcs[0] > ipcs[1] > ipcs[2]

    def test_ipc_bounded_by_width(self):
        for core in (BIG, MEDIUM, SMALL):
            result = evaluate(core, ["hmmer"])
            assert result.threads[0].ipc <= core.width

    def test_compute_bound_beats_memory_bound(self):
        hmmer = evaluate(BIG, ["hmmer"]).threads[0].ipc
        mcf = evaluate(BIG, ["mcf"]).threads[0].ipc
        assert hmmer > 2 * mcf

    def test_memory_latency_hurts(self):
        fast = evaluate(BIG, ["mcf"], mem_lat=120.0).threads[0].ipc
        slow = evaluate(BIG, ["mcf"], mem_lat=480.0).threads[0].ipc
        assert slow < fast

    def test_memory_latency_hurts_inorder_more(self):
        # No ROB, no MLP: the small core eats the whole latency increase.
        def slowdown(core):
            fast = evaluate(core, ["libquantum"], mem_lat=120.0).threads[0].ipc
            slow = evaluate(core, ["libquantum"], mem_lat=480.0).threads[0].ipc
            return fast / slow

        assert slowdown(SMALL) > slowdown(BIG)

    def test_cpi_breakdown_sums_to_cpi(self):
        perf = evaluate(BIG, ["tonto"]).threads[0]
        assert sum(perf.cpi_breakdown.values()) == pytest.approx(
            1.0 / perf.unconstrained_ipc
        )

    def test_mlp_limited_by_window(self):
        big = evaluate(BIG, ["libquantum"]).threads[0]
        med = evaluate(MEDIUM, ["libquantum"]).threads[0]
        assert big.mlp > med.mlp
        assert big.mlp <= get_profile("libquantum").mlp

    def test_inorder_has_unit_mlp(self):
        assert evaluate(SMALL, ["libquantum"]).threads[0].mlp == 1.0


class TestSmt:
    def test_total_throughput_rises_with_threads(self):
        # SMT improves core throughput for every benchmark class.
        for bench in ("tonto", "mcf", "libquantum"):
            one = evaluate(BIG, [bench]).total_ipc
            four = evaluate(BIG, [bench] * 4).total_ipc
            assert four > one

    def test_per_thread_ipc_drops_with_threads(self):
        one = evaluate(BIG, ["tonto"]).threads[0].ipc
        six = evaluate(BIG, ["tonto"] * 6).threads[0].ipc
        assert six < one

    def test_smt_gain_sublinear_for_compute_bound(self):
        one = evaluate(BIG, ["hmmer"]).total_ipc
        six = evaluate(BIG, ["hmmer"] * 6).total_ipc
        assert six < 3 * one  # nowhere near 6x

    def test_max_contexts_enforced(self):
        with pytest.raises(ValueError, match="at most"):
            evaluate(BIG, ["tonto"] * 7)

    def test_fgmt_two_threads_gain_on_small_core(self):
        one = evaluate(SMALL, ["mcf"]).total_ipc
        two = evaluate(SMALL, ["mcf"] * 2).total_ipc
        assert two > one * 1.2  # stalls of one thread hide the other's work

    def test_utilization_bounded(self):
        result = evaluate(BIG, ["hmmer"] * 6)
        assert 0.0 < result.utilization <= 1.0

    def test_duty_cycles_scale_rates(self):
        full = evaluate(BIG, ["tonto"]).threads[0].ipc
        half = evaluate(BIG, ["tonto"], duty=[0.5]).threads[0].ipc
        assert half == pytest.approx(full * 0.5, rel=1e-6)

    def test_time_shared_threads_keep_full_window(self):
        # Six threads at duty 1/6 emulate no-SMT time sharing: each sees the
        # full ROB, so summed throughput matches one full-duty thread.
        shared = evaluate(BIG, ["libquantum"] * 6, duty=[1 / 6] * 6)
        alone = evaluate(BIG, ["libquantum"])
        assert shared.total_ipc == pytest.approx(alone.total_ipc, rel=0.05)

    def test_empty_core(self):
        result = IntervalCoreModel(BIG).evaluate([], env_for(BIG, 1))
        assert result.total_ipc == 0.0
        assert result.utilization == 0.0

    def test_misaligned_duty_cycles_rejected(self):
        with pytest.raises(ValueError, match="align"):
            evaluate(BIG, ["tonto", "mcf"], duty=[1.0])


class TestModelHelpers:
    def test_smt_efficiency_decreasing(self):
        effs = [smt_issue_efficiency(n) for n in range(1, 7)]
        assert effs[0] == 1.0
        assert all(a >= b for a, b in zip(effs, effs[1:]))
        assert effs[-1] >= 0.8

    def test_window_ilp_monotone(self):
        assert window_limited_ilp(128) > window_limited_ilp(32)

    def test_window_ilp_big_unconstrained(self):
        # A 128-entry window must not throttle a 4-wide core.
        assert window_limited_ilp(128) > 4.0

    def test_window_ilp_inorder_unbounded(self):
        assert window_limited_ilp(0) == float("inf")


class TestFetchPolicy:
    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="fetch_policy"):
            IntervalCoreModel(BIG, fetch_policy="random")

    def test_icount_equalizes_rates(self):
        profiles = ["hmmer", "hmmer", "mcf", "mcf", "libquantum", "tonto"]
        env = env_for(BIG, 6)
        rr = IntervalCoreModel(BIG, fetch_policy="roundrobin").evaluate(
            [get_profile(n) for n in profiles], env
        )
        ic = IntervalCoreModel(BIG, fetch_policy="icount").evaluate(
            [get_profile(n) for n in profiles], env
        )
        def spread(result):
            rates = [t.ipc for t in result.threads]
            return max(rates) / min(rates)
        assert spread(ic) <= spread(rr) + 1e-9

    def test_policies_agree_single_thread(self):
        env = env_for(BIG, 1)
        rr = IntervalCoreModel(BIG, fetch_policy="roundrobin").evaluate(
            [get_profile("tonto")], env
        )
        ic = IntervalCoreModel(BIG, fetch_policy="icount").evaluate(
            [get_profile("tonto")], env
        )
        assert rr.threads[0].ipc == pytest.approx(ic.threads[0].ipc)

    def test_icount_respects_capacity(self):
        env = env_for(BIG, 6)
        ic = IntervalCoreModel(BIG, fetch_policy="icount").evaluate(
            [get_profile("hmmer")] * 6, env
        )
        assert ic.total_ipc <= BIG.width

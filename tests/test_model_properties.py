"""Property-based tests over the interval model's physical invariants.

These encode laws any performance model must satisfy — monotonicity in
latency and capacity, conservation bounds, scheduling feasibility — and
run them over randomized workload profiles and thread counts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.designs import DESIGN_ORDER, get_design
from repro.core.scheduler import Scheduler
from repro.interval.model import CoreEnvironment, IntervalCoreModel
from repro.microarch.config import BIG, MEDIUM, SMALL
from repro.util import KB, MB
from repro.workloads.profiles import BenchmarkProfile, MissRateCurve

profiles = st.builds(
    BenchmarkProfile,
    name=st.just("hyp"),
    ilp=st.floats(1.0, 4.0),
    ilp_inorder=st.floats(0.5, 1.0),
    mem_frac=st.floats(0.1, 0.4),
    branch_frac=st.floats(0.02, 0.2),
    branch_mpki=st.floats(0.1, 12.0),
    dcurve=st.builds(
        MissRateCurve,
        mpki_ref=st.floats(1.0, 40.0),
        alpha=st.floats(0.1, 0.6),
        floor_mpki=st.floats(0.05, 0.9),
    ),
    icurve=st.just(MissRateCurve(0.5, 0.5, floor_mpki=0.05)),
    mlp=st.floats(1.0, 6.0),
)


def env(core, n, llc=8 * MB, mem_lat=180.0):
    return CoreEnvironment.unloaded(core, n, llc, 38.0, mem_lat)


class TestCoreModelInvariants:
    @given(profile=profiles, core=st.sampled_from([BIG, MEDIUM, SMALL]))
    @settings(max_examples=60, deadline=None)
    def test_ipc_positive_and_width_bounded(self, profile, core):
        result = IntervalCoreModel(core).evaluate([profile], env(core, 1))
        assert 0.0 < result.threads[0].ipc <= core.width

    @given(profile=profiles, lat1=st.floats(120, 400), lat2=st.floats(120, 400))
    @settings(max_examples=60, deadline=None)
    def test_ipc_monotone_in_memory_latency(self, profile, lat1, lat2):
        lo, hi = sorted((lat1, lat2))
        fast = IntervalCoreModel(BIG).evaluate([profile], env(BIG, 1, mem_lat=lo))
        slow = IntervalCoreModel(BIG).evaluate([profile], env(BIG, 1, mem_lat=hi))
        assert fast.threads[0].ipc >= slow.threads[0].ipc - 1e-12

    @given(
        profile=profiles,
        c1=st.floats(256 * KB, 8 * MB),
        c2=st.floats(256 * KB, 8 * MB),
    )
    @settings(max_examples=60, deadline=None)
    def test_ipc_monotone_in_llc_share_at_unit_mlp(self, profile, c1, c2):
        # Monotonicity is only guaranteed outside the window-limited-MLP
        # regime: there, MLP scales with the miss rate, making the DRAM
        # stall per instruction constant while the LLC-hit term grows — a
        # documented quirk of the piecewise MLP model.  Pin MLP to 1.
        from dataclasses import replace

        profile = replace(profile, mlp=1.0)
        lo, hi = sorted((c1, c2))
        small = IntervalCoreModel(BIG).evaluate([profile], env(BIG, 1, llc=lo))
        big = IntervalCoreModel(BIG).evaluate([profile], env(BIG, 1, llc=hi))
        assert big.threads[0].ipc >= small.threads[0].ipc - 1e-12

    @given(profile=profiles, c1=st.floats(256 * KB, 8 * MB), c2=st.floats(256 * KB, 8 * MB))
    @settings(max_examples=60, deadline=None)
    def test_memory_misses_monotone_in_llc_share(self, profile, c1, c2):
        lo, hi = sorted((c1, c2))
        small = IntervalCoreModel(BIG).evaluate([profile], env(BIG, 1, llc=lo))
        big = IntervalCoreModel(BIG).evaluate([profile], env(BIG, 1, llc=hi))
        assert (
            big.threads[0].mem_misses_per_instr
            <= small.threads[0].mem_misses_per_instr + 1e-15
        )

    @given(profile=profiles, n=st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_smt_total_never_below_single_thread_share(self, profile, n):
        # n co-running copies collectively outrun 1/n of... at minimum, a
        # single copy never beats the n-copy total.
        one = IntervalCoreModel(BIG).evaluate([profile], env(BIG, 1))
        many = IntervalCoreModel(BIG).evaluate([profile] * n, env(BIG, n))
        assert many.total_ipc >= one.total_ipc * 0.75

    @given(profile=profiles, n=st.integers(2, 6))
    @settings(max_examples=60, deadline=None)
    def test_breakdown_sums_to_unconstrained_cpi(self, profile, n):
        result = IntervalCoreModel(BIG).evaluate([profile] * n, env(BIG, n))
        for t in result.threads:
            assert sum(t.cpi_breakdown.values()) == pytest.approx(
                1.0 / t.unconstrained_ipc
            )


class TestSchedulerInvariants:
    @given(
        design_name=st.sampled_from(DESIGN_ORDER),
        n=st.integers(1, 24),
        smt=st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_slot_counts_conserve_threads(self, design_name, n, smt):
        design = get_design(design_name)
        counts = Scheduler(design, smt=smt).slot_counts(n)
        assert sum(counts) == n
        assert len(counts) == design.num_cores

    @given(design_name=st.sampled_from(DESIGN_ORDER), n=st.integers(1, 24))
    @settings(max_examples=80, deadline=None)
    def test_smt_counts_respect_contexts(self, design_name, n):
        design = get_design(design_name)
        counts = Scheduler(design, smt=True).slot_counts(n)
        for count, core in zip(counts, design.cores):
            assert count <= core.max_smt_contexts

    @given(design_name=st.sampled_from(DESIGN_ORDER), n=st.integers(2, 24))
    @settings(max_examples=40, deadline=None)
    def test_spread_before_stacking(self, design_name, n):
        design = get_design(design_name)
        counts = Scheduler(design, smt=True).slot_counts(n)
        if n >= design.num_cores:
            assert all(c >= 1 for c in counts)
        else:
            assert sum(1 for c in counts if c > 0) == n

"""Adaptive exploration: successive halving, tie escalation, GA
refinement, and the budget ledger."""

import json

import pytest

from repro.core.scenarios import get_scenario
from repro.core.study import DesignSpaceStudy
from repro.explore import (
    ExploreConfig,
    composition_design,
    feasible_compositions,
    run_explore,
)

DESIGNS = ("4B", "8m", "20s")


@pytest.fixture(scope="module")
def result(study):
    """One shared reduced-space exploration (module-scoped: read-only)."""
    config = ExploreConfig(
        scenario="flash-crowd", designs=DESIGNS, max_threads=10
    )
    return run_explore(config, study=study)


class TestConfigValidation:
    def test_defaults_valid(self):
        ExploreConfig(scenario="steady")

    def test_bad_kind(self):
        with pytest.raises(ValueError, match="kind"):
            ExploreConfig(scenario="steady", kind="imaginary")

    def test_empty_designs(self):
        with pytest.raises(ValueError, match="at least one"):
            ExploreConfig(scenario="steady", designs=())

    def test_eta_floor(self):
        with pytest.raises(ValueError, match="eta"):
            ExploreConfig(scenario="steady", eta=1)

    def test_unknown_scenario_fails_at_run(self):
        with pytest.raises(ValueError, match="steady"):
            run_explore(ExploreConfig(scenario="nope"))

    def test_unknown_design_fails_at_run(self):
        with pytest.raises(KeyError):
            run_explore(
                ExploreConfig(scenario="steady", designs=("not-a-chip",))
            )


class TestSuccessiveHalving:
    def test_winner_matches_exhaustive(self, study, result):
        dist = get_scenario("flash-crowd").distribution(max_threads=10)
        exact = {
            name: study.aggregate_stp(name, "heterogeneous", dist, True)
            for name in DESIGNS
        }
        assert result["winner"] == max(exact, key=exact.get)

    def test_within_budget(self, result):
        assert result["evaluations"] <= 0.2 * result["full_grid_points"]
        assert result["fraction"] == pytest.approx(
            result["evaluations"] / result["full_grid_points"]
        )

    def test_rung_accounting(self, result):
        total = 0
        for rung in result["rungs"]:
            assert rung["new_points"] >= 0
            total += rung["new_points"]
            assert rung["cumulative_points"] == total
            assert set(rung["kept"]) <= set(rung["designs"])
        assert len(result["rungs"][-1]["kept"]) == 1

    def test_fidelity_grows_by_eta(self, result):
        rungs = result["rungs"]
        for a, b in zip(rungs, rungs[1:]):
            assert b["mixes_per_count"] == 3 * a["mixes_per_count"]

    def test_ranking_sorted_best_first(self, result):
        scores = [entry["score"] for entry in result["ranking"]]
        assert scores == sorted(scores, reverse=True)
        assert result["ranking"][0]["design"] == result["winner"]

    def test_json_round_trip(self, result):
        assert json.loads(json.dumps(result)) == result

    def test_single_design_short_circuits(self, study):
        config = ExploreConfig(
            scenario="steady", designs=("4B",), max_threads=6
        )
        out = run_explore(config, study=study)
        assert out["winner"] == "4B"
        assert len(out["rungs"]) == 1

    def test_warm_study_reports_same_cost(self, study, result):
        """Regression: point counts used to be a delta of the study's
        memo cache, so a warm study (serve daemon, prior sweep) reported
        0 evaluations and broke local/--server byte-parity."""
        config = ExploreConfig(
            scenario="flash-crowd", designs=DESIGNS, max_threads=10
        )
        again = run_explore(config, study=study)  # memo fully warm now
        assert again == result

    def test_fresh_study_matches_shared(self, result):
        config = ExploreConfig(
            scenario="flash-crowd", designs=DESIGNS, max_threads=10
        )
        assert run_explore(config) == result


class TestCompositionSpace:
    def test_fifteen_feasible_compositions(self):
        comps = feasible_compositions()
        assert len(comps) == 15
        assert len(set(comps)) == 15

    def test_all_meet_power_budget_exactly(self):
        for nb, nm, ns in feasible_compositions():
            assert 10 * nb + 5 * nm + 2 * ns == 40

    def test_paper_designs_included(self):
        comps = set(feasible_compositions())
        assert (4, 0, 0) in comps  # 4B
        assert (0, 8, 0) in comps  # 8m
        assert (0, 0, 20) in comps  # 20s
        assert (2, 4, 0) in comps  # 2B4m

    def test_composition_design_cores(self):
        design = composition_design((1, 2, 5))
        assert design.name == "ga-1B2m5s"
        counts = design.core_counts()
        assert sum(counts.values()) == 8

    def test_empty_composition_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            composition_design((0, 0, 0))


class TestGaRefinement:
    def test_ga_explores_hybrids_within_budget(self):
        study = DesignSpaceStudy()
        config = ExploreConfig(
            scenario="latency-classes", designs=DESIGNS, max_threads=8,
            ga_rounds=2, budget_fraction=0.5, seed=7,
        )
        out = run_explore(config, study=study)
        ga = out["ga"]
        assert ga is not None and ga["rounds"] >= 1
        assert out["evaluations"] <= 0.5 * out["full_grid_points"]
        # Scores are comparable: best GA score is the winner's score when
        # a hybrid wins, and never silently worse than reported.
        assert ga["best_score"] <= out["winner_score"] or ga[
            "best"
        ] == out["winner"]
        for entry in ga["evaluated"]:
            nb, nm, ns = entry["composition"]
            assert 10 * nb + 5 * nm + 2 * ns == 40

    def test_ga_off_by_default(self, result):
        assert result["ga"] is None

"""Fast-path correctness: idle-cycle skipping is bit-identical, and the
fetch/issue micro-optimizations preserve the modelled semantics."""

from dataclasses import replace

import pytest

from repro.core.designs import ChipDesign, get_design
from repro.memory.hierarchy import MemoryHierarchy
from repro.microarch.config import BIG, MEDIUM, SMALL, CacheConfig
from repro.microarch.uncore import DEFAULT_UNCORE, InterconnectConfig
from repro.sim.core import PipelineCore
from repro.sim.multicore import MulticoreSimulator, ThreadSim
from repro.workloads.spec import get_profile
from repro.workloads.tracegen import TraceGenerator


def _fingerprint(result):
    """Every reported statistic of a run, for exact comparison."""
    return {
        "total_cycles": result.total_cycles,
        "dram_mean_latency_ns": result.dram_mean_latency_ns,
        "dram_requests": result.dram_requests,
        "threads": [
            (
                core_index,
                stats.instructions,
                stats.cycles,
                stats.branch_mispredicts,
                dict(stats.level_hits),
            )
            for core_index, stats in result.thread_stats
        ],
    }


GOLDEN_CONFIGS = [
    # (id, design, thread specs [(profile, core_index)], fetch_policy)
    ("ooo-single", ChipDesign(name="g-1B", cores=(BIG,)), [("tonto", 0)], "roundrobin"),
    (
        "ooo-smt3-rr",
        ChipDesign(name="g-1B", cores=(BIG,)),
        [("mcf", 0), ("libquantum", 0), ("hmmer", 0)],
        "roundrobin",
    ),
    (
        "ooo-smt3-icount",
        ChipDesign(name="g-1B", cores=(BIG,)),
        [("mcf", 0), ("libquantum", 0), ("hmmer", 0)],
        "icount",
    ),
    (
        "inorder-smt2-rr",
        ChipDesign(name="g-1s", cores=(SMALL,)),
        [("mcf", 0), ("tonto", 0)],
        "roundrobin",
    ),
    (
        "inorder-smt2-icount",
        ChipDesign(name="g-1s", cores=(SMALL,)),
        [("milc", 0), ("gobmk", 0)],
        "icount",
    ),
    (
        "multicore-mixed",
        ChipDesign(name="g-2m", cores=(MEDIUM, MEDIUM)),
        [("mcf", 0), ("lbm", 1)],
        "roundrobin",
    ),
    (
        "bus-interconnect",
        ChipDesign(
            name="g-2m-bus",
            cores=(MEDIUM, MEDIUM),
            uncore=replace(
                DEFAULT_UNCORE, interconnect=InterconnectConfig(kind="bus")
            ),
        ),
        [("mcf", 0), ("milc", 1)],
        "roundrobin",
    ),
]


class TestIdleSkipGolden:
    """Fast-forwarded runs must be *bit-identical* to naive ones."""

    @pytest.mark.parametrize(
        "design,specs,policy",
        [c[1:] for c in GOLDEN_CONFIGS],
        ids=[c[0] for c in GOLDEN_CONFIGS],
    )
    def test_fast_forward_matches_naive(self, design, specs, policy):
        fingerprints = []
        for fast_forward in (True, False):
            sim = MulticoreSimulator(design, fetch_policy=policy)
            threads = [
                ThreadSim(get_profile(name), core_index=idx) for name, idx in specs
            ]
            hierarchy, cores = sim.prepare(threads, instructions_per_thread=2500)
            result = sim.execute(hierarchy, cores, fast_forward=fast_forward)
            fingerprints.append(_fingerprint(result))
        assert fingerprints[0] == fingerprints[1]

    def test_shared_llc_design_matches_naive(self):
        """Contention through the shared LLC/DRAM with 8 cores stays exact."""
        design = get_design("8m")
        mix = ("mcf", "libquantum", "milc", "lbm")
        fingerprints = []
        for fast_forward in (True, False):
            sim = MulticoreSimulator(design)
            threads = [
                ThreadSim(get_profile(name), core_index=i)
                for i, name in enumerate(mix)
            ]
            hierarchy, cores = sim.prepare(threads, instructions_per_thread=1500)
            result = sim.execute(hierarchy, cores, fast_forward=fast_forward)
            fingerprints.append(_fingerprint(result))
        assert fingerprints[0] == fingerprints[1]

    def test_pipeline_run_fast_forward_matches_naive(self):
        """The single-core run loop honours the same equivalence."""
        stats = []
        for fast_forward in (True, False):
            hierarchy = MemoryHierarchy((SMALL,), DEFAULT_UNCORE)
            gen = TraceGenerator(get_profile("mcf"), seed=11)
            hierarchy.warm(0, gen.warm_addresses())
            core = PipelineCore(SMALL, 0, hierarchy, [gen.generate(3000)])
            core.run(fast_forward=fast_forward)
            th = core.threads[0]
            stats.append(
                (
                    core.cycle,
                    th.stats.instructions,
                    th.stats.cycles,
                    th.stats.branch_mispredicts,
                    dict(th.stats.level_hits),
                )
            )
        assert stats[0] == stats[1]

    def test_max_cycles_still_enforced_when_skipping(self):
        hierarchy = MemoryHierarchy((BIG,), DEFAULT_UNCORE)
        gen = TraceGenerator(get_profile("mcf"), seed=3)
        core = PipelineCore(BIG, 0, hierarchy, [gen.generate(5000)])
        with pytest.raises(RuntimeError, match="cycles"):
            core.run(max_cycles=10)


class TestKernelEquivalence:
    """The batched numpy kernel must be bit-identical to the scalar path."""

    @pytest.mark.parametrize(
        "design,specs,policy",
        [c[1:] for c in GOLDEN_CONFIGS],
        ids=[c[0] for c in GOLDEN_CONFIGS],
    )
    def test_numpy_matches_scalar(self, design, specs, policy):
        fingerprints = []
        for kernel in ("scalar", "numpy"):
            sim = MulticoreSimulator(design, fetch_policy=policy, kernel=kernel)
            threads = [
                ThreadSim(get_profile(name), core_index=idx) for name, idx in specs
            ]
            hierarchy, cores = sim.prepare(threads, instructions_per_thread=2500)
            result = sim.execute(hierarchy, cores)
            fingerprints.append(_fingerprint(result))
        assert fingerprints[0] == fingerprints[1]

    def test_kernels_match_with_prefetcher(self):
        """The inlined L1D probe must defer to the full data path when a
        prefetcher needs to observe every access."""
        design = get_design("2B4m")
        fingerprints = []
        for kernel in ("scalar", "numpy"):
            sim = MulticoreSimulator(design, prefetcher="stride", kernel=kernel)
            threads = [
                ThreadSim(get_profile("mcf"), core_index=0),
                ThreadSim(get_profile("milc"), core_index=2),
            ]
            hierarchy, cores = sim.prepare(threads, instructions_per_thread=2000)
            fingerprints.append(_fingerprint(sim.execute(hierarchy, cores)))
        assert fingerprints[0] == fingerprints[1]

    def test_env_selector(self, monkeypatch):
        from repro.sim.kernel import active_kernel

        monkeypatch.setenv("REPRO_SIM_KERNEL", "scalar")
        assert active_kernel() == "scalar"
        assert active_kernel("numpy") == "numpy"  # explicit arg wins
        monkeypatch.setenv("REPRO_SIM_KERNEL", "turbo")
        with pytest.raises(ValueError, match="REPRO_SIM_KERNEL"):
            active_kernel()


class TestFetchLineGranularity:
    """Regression: i-fetch dedup must use the core's own L1I line size."""

    def _count_ifetches(self, l1i_line, llc_line):
        core = replace(
            BIG,
            l1i=CacheConfig(
                size_bytes=32 * 1024,
                associativity=4,
                latency_cycles=2,
                line_bytes=l1i_line,
            ),
        )
        uncore = replace(
            DEFAULT_UNCORE,
            llc=replace(DEFAULT_UNCORE.llc, line_bytes=llc_line),
        )
        hierarchy = MemoryHierarchy((core,), uncore)
        gen = TraceGenerator(get_profile("gamess"), seed=5)
        hierarchy.warm(0, gen.warm_addresses())
        pipeline = PipelineCore(core, 0, hierarchy, [gen.generate(2000)])
        pipeline.run()
        counts = hierarchy.demand_counts
        return sum(counts[k] for k in ("inst.l1", "inst.l2", "inst.llc", "inst.dram"))

    def test_smaller_l1i_lines_fetch_more_often_than_llc_lines(self):
        # With 32-byte L1I lines and 128-byte LLC lines, dedup at LLC
        # granularity (the old bug) would roughly quarter the fetch count;
        # dedup at L1I granularity must *increase* it vs 128-byte L1I lines.
        small_lines = self._count_ifetches(l1i_line=32, llc_line=128)
        large_lines = self._count_ifetches(l1i_line=128, llc_line=128)
        assert small_lines > large_lines * 2


class TestFunctionalUnitSkipList:
    """The next-free-cycle skip list must behave like the linear probe."""

    def _core(self):
        hierarchy = MemoryHierarchy((BIG,), DEFAULT_UNCORE)
        gen = TraceGenerator(get_profile("tonto"), seed=9)
        return PipelineCore(BIG, 0, hierarchy, [gen.generate(10)])

    def test_saturated_cycles_spill_forward(self):
        core = self._core()
        units = core._fu_units["ldst"]
        got = [core._acquire_fu("load", 100) for _ in range(3 * units)]
        assert got == [100] * units + [101] * units + [102] * units

    def test_hole_filling_before_reserved_cycles(self):
        core = self._core()
        units = core._fu_units["int"]
        for _ in range(units):
            core._acquire_fu("int", 200)
        # An earlier-ready instruction must still issue earlier.
        assert core._acquire_fu("int", 150) == 150

    def test_prune_preserves_future_reservations(self):
        core = self._core()
        units = core._fu_units["muldiv"]
        for _ in range(units):
            core._acquire_fu("muldiv", 5000)  # future reservation
        core.cycle = 4000
        for c in range(3000):  # stale past-cycle entries
            core._fu_busy["muldiv"][c] = units
        core._prune_fu_state()
        busy = core._fu_busy["muldiv"]
        assert all(c >= 4000 for c in busy)
        assert busy[5000] == units
        # The surviving reservation still forces a spill to the next cycle.
        assert core._acquire_fu("muldiv", 5000) == 5001

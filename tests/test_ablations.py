"""Ablation machinery and the scaled-budget extension."""

import pytest

from repro.core.designs import get_design
from repro.experiments import ablations, ext_scaled_budget
from repro.interval.contention import ChipModel
from repro.memory.hierarchy import MemoryHierarchy
from repro.microarch.config import BIG
from repro.microarch.uncore import DEFAULT_UNCORE, InterconnectConfig, UncoreConfig


class TestModelOptions:
    def test_invalid_llc_sharing(self):
        with pytest.raises(ValueError, match="llc_sharing"):
            ChipModel(get_design("4B"), llc_sharing="random")

    def test_invalid_rob_partitioning(self):
        from repro.interval.model import IntervalCoreModel

        with pytest.raises(ValueError, match="rob_partitioning"):
            IntervalCoreModel(BIG, rob_partitioning="adaptive")

    def test_shared_rob_gives_more_window(self):
        from repro.interval.model import IntervalCoreModel

        static = IntervalCoreModel(BIG, "static")
        shared = IntervalCoreModel(BIG, "shared")
        assert shared._rob_share(6) > static._rob_share(6)
        assert shared._rob_share(1) == static._rob_share(1)
        assert shared._rob_share(2) <= BIG.rob_size


class TestBusInterconnect:
    def test_bus_serializes_llc_access(self):
        bus_uncore = UncoreConfig(interconnect=InterconnectConfig(kind="bus"))
        h = MemoryHierarchy((BIG, BIG), bus_uncore)
        # Warm a line into the LLC only (private caches of core 1 are cold).
        h.llc.warm(0x5000)
        h.llc.warm(0x6000)
        first = h.data_access(0, 0x5000, 0.0)
        second = h.data_access(1, 0x6000, 0.0)
        assert second.latency_ns > first.latency_ns  # queued behind core 0

    def test_crossbar_does_not_serialize(self):
        h = MemoryHierarchy((BIG, BIG), DEFAULT_UNCORE)
        h.llc.warm(0x5000)
        h.llc.warm(0x6000)
        first = h.data_access(0, 0x5000, 0.0)
        second = h.data_access(1, 0x6000, 0.0)
        assert second.latency_ns == pytest.approx(first.latency_ns)


class TestAblationTables:
    def test_scheduling_ablation_ordering(self):
        table = ablations.run_scheduling(n_threads=6, num_mixes=3)
        for row in table.rows:
            assert row["optimized"] >= row["heuristic"] - 1e-9
            # The heuristic must capture most of the optimized quality.
            assert row["heuristic"] >= 0.9 * row["optimized"]

    def test_llc_sharing_ablation_runs(self):
        table = ablations.run_llc_sharing(n_threads=12, num_mixes=3)
        assert len(table.rows) == 3
        for row in table.rows:
            assert row["demand"] > 0 and row["even"] > 0

    def test_rob_partitioning_ablation(self):
        # Sharing the window adds per-thread MLP but also bus pressure once
        # the chip is memory-saturated; the net effect must stay small
        # (which is itself the ablation's conclusion).
        table = ablations.run_rob_partitioning(n_threads=24, num_mixes=3)
        for row in table.rows:
            assert row["shared"] == pytest.approx(row["static"], rel=0.06)


@pytest.mark.slow
class TestScaledBudget:
    def test_doubled_budget_findings_project(self):
        # Reduced mixes for test time; the bench runs the full sweep.
        table = ext_scaled_budget.run(max_threads=48, mixes_per_count=4)
        vals_smt = {row["design"]: row["SMT"] for row in table.rows}
        vals_no = {row["design"]: row["no SMT"] for row in table.rows}
        # With SMT the all-big design is (near-)optimal, as projected.
        best_smt = max(vals_smt, key=vals_smt.get)
        assert vals_smt["8B"] >= 0.97 * vals_smt[best_smt]
        # Without SMT, a design with small cores beats all-big at 48 threads.
        assert max(vals_no.values()) > vals_no["8B"]

    def test_designs_power_equivalent(self):
        for design in ext_scaled_budget.SCALED_DESIGNS:
            assert design.power_budget_weight == pytest.approx(8.0)

"""Sampled simulation: accuracy against full cycle-level runs.

The sampled tier (`repro.sim.sampling`) replaces most of each thread's
instruction stream with functionally-warmed fast-forward and reconstructs
the skipped cycles from an event-priced model fitted to the detailed
windows.  These tests are the accuracy contract: at the validated knobs
(interval=2000, warmup=600) per-workload CPI must stay within 3 % of the
full simulation on the single-thread validation workloads, and contended
(SMT / multi-core) runs within a looser band.
"""

import pytest

from repro.core.designs import ChipDesign
from repro.microarch.config import BIG
from repro.sim.multicore import MulticoreSimulator, ThreadSim
from repro.sim.sampling import SamplingConfig
from repro.workloads.spec import get_profile

#: Knobs validated against full runs (see docs/performance.md).
INSTRUCTIONS = 30_000
INTERVAL = 2_000
WARMUP = 600

#: Single-thread validation workloads spanning memory-bound (mcf, lbm,
#: libquantum, milc), branchy (gobmk, astar) and compute-bound (tonto,
#: hmmer) behaviour.
WORKLOADS = [
    "mcf",
    "libquantum",
    "milc",
    "gobmk",
    "tonto",
    "lbm",
    "astar",
    "hmmer",
]

SINGLE = ChipDesign(name="samp-1B", cores=(BIG,))


class TestSamplingConfig:
    def test_window_from_warmup(self):
        # Window is at least twice the warm-up...
        assert SamplingConfig(interval=2_000, warmup=600).window == 1_200

    def test_window_from_interval(self):
        # ...but never below a quarter of the period.
        assert SamplingConfig(interval=2_000, warmup=100).window == 500

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="interval"):
            SamplingConfig(interval=0)

    def test_warmup_must_be_nonnegative(self):
        with pytest.raises(ValueError, match="warmup"):
            SamplingConfig(interval=2_000, warmup=-1)

    def test_window_must_leave_room_to_skip(self):
        with pytest.raises(ValueError, match="fast-forward"):
            SamplingConfig(interval=1_000, warmup=600)


def _cpi(result, index=0):
    stats = result.thread_stats[index][1]
    return stats.cycles / stats.instructions


@pytest.mark.slow
class TestSingleThreadAccuracy:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_cpi_within_3_percent(self, name):
        sim = MulticoreSimulator(SINGLE)
        threads = [ThreadSim(get_profile(name), core_index=0)]
        full = sim.run(threads, INSTRUCTIONS)
        sampled = sim.run(
            threads,
            INSTRUCTIONS,
            sample_interval=INTERVAL,
            sample_warmup=WARMUP,
        )
        err = abs(_cpi(sampled) - _cpi(full)) / _cpi(full)
        assert err < 0.03, (
            f"{name}: sampled CPI {_cpi(sampled):.4f} vs full "
            f"{_cpi(full):.4f} ({100 * err:.2f}% error)"
        )

    def test_reports_full_budget(self):
        sim = MulticoreSimulator(SINGLE)
        result = sim.run(
            [ThreadSim(get_profile("mcf"), core_index=0)],
            INSTRUCTIONS,
            sample_interval=INTERVAL,
            sample_warmup=WARMUP,
        )
        stats = result.thread_stats[0][1]
        # The estimate covers the whole measured budget, so IPC/CPI are
        # directly comparable to a full run.
        assert stats.instructions == INSTRUCTIONS
        assert stats.cycles > 0
        assert result.total_cycles >= stats.cycles


@pytest.mark.slow
class TestContendedAccuracy:
    """SMT and shared-LLC runs: contention makes spans harder to price, so
    the contract is looser (10 %) but still bounds the estimate."""

    def _check(self, threads, bound=0.10):
        sim = MulticoreSimulator(SINGLE if all(
            t.core_index == 0 for t in threads
        ) else ChipDesign(name="samp-2B", cores=(BIG, BIG)))
        full = sim.run(threads, INSTRUCTIONS)
        sampled = sim.run(
            threads,
            INSTRUCTIONS,
            sample_interval=INTERVAL,
            sample_warmup=WARMUP,
        )
        for i in range(len(threads)):
            err = abs(_cpi(sampled, i) - _cpi(full, i)) / _cpi(full, i)
            assert err < bound, (
                f"thread {i}: sampled CPI {_cpi(sampled, i):.4f} vs full "
                f"{_cpi(full, i):.4f} ({100 * err:.2f}% error)"
            )

    def test_smt2(self):
        self._check(
            [
                ThreadSim(get_profile("mcf"), core_index=0),
                ThreadSim(get_profile("hmmer"), core_index=0),
            ]
        )

    def test_two_cores_shared_llc(self):
        self._check(
            [
                ThreadSim(get_profile("lbm"), core_index=0),
                ThreadSim(get_profile("tonto"), core_index=1),
            ]
        )

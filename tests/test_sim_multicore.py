"""Cycle-level multi-core simulation: placement, sharing, determinism."""

import pytest

from repro.core.designs import ChipDesign, get_design
from repro.microarch.config import BIG
from repro.sim import MulticoreSimulator, ThreadSim
from repro.workloads.spec import get_profile


class TestRun:
    def test_basic_run(self):
        sim = MulticoreSimulator(get_design("4B"))
        result = sim.run(
            [ThreadSim(get_profile("tonto"), 0)], instructions_per_thread=4000
        )
        assert result.ipc_of(0) > 0.5
        assert result.total_cycles > 0

    def test_multiple_cores_progress_in_parallel(self):
        sim = MulticoreSimulator(get_design("4B"))
        single = sim.run(
            [ThreadSim(get_profile("tonto"), 0)], instructions_per_thread=4000
        )
        quad = sim.run(
            [ThreadSim(get_profile("tonto"), i) for i in range(4)],
            instructions_per_thread=4000,
        )
        # Four independent copies should not take 4x the cycles.
        assert quad.total_cycles < single.total_cycles * 2

    def test_shared_llc_contention_slows_threads(self):
        sim = MulticoreSimulator(get_design("4B"))
        mcf = get_profile("mcf")
        alone = sim.run([ThreadSim(mcf, 0)], instructions_per_thread=6000)
        crowded = sim.run(
            [ThreadSim(mcf, i) for i in range(4)], instructions_per_thread=6000
        )
        assert crowded.ipc_of(0) < alone.ipc_of(0) * 1.02

    def test_bus_contention_visible_in_dram_latency(self):
        sim = MulticoreSimulator(get_design("4B"))
        lq = get_profile("libquantum")
        alone = sim.run([ThreadSim(lq, 0)], instructions_per_thread=6000)
        crowded = sim.run(
            [ThreadSim(lq, i) for i in range(4)], instructions_per_thread=6000
        )
        assert crowded.dram_mean_latency_ns > alone.dram_mean_latency_ns

    def test_smt_threads_on_one_core(self):
        sim = MulticoreSimulator(get_design("4B"))
        result = sim.run(
            [ThreadSim(get_profile("mcf"), 0, seed=s) for s in (1, 2, 3)],
            instructions_per_thread=4000,
        )
        assert len(result.thread_stats) == 3
        assert result.total_ipc > 0

    def test_deterministic(self):
        sim = MulticoreSimulator(get_design("4B"))
        threads = [ThreadSim(get_profile("astar"), 0)]
        a = sim.run(threads, instructions_per_thread=3000)
        b = sim.run(threads, instructions_per_thread=3000)
        assert a.ipc_of(0) == b.ipc_of(0)
        assert a.total_cycles == b.total_cycles

    def test_invalid_core_index(self):
        sim = MulticoreSimulator(get_design("4B"))
        with pytest.raises(ValueError, match="core_index"):
            sim.run([ThreadSim(get_profile("mcf"), 9)])

    def test_empty_thread_list(self):
        sim = MulticoreSimulator(get_design("4B"))
        with pytest.raises(ValueError, match="at least one"):
            sim.run([])

    def test_warmup_excluded_from_stats(self):
        sim = MulticoreSimulator(ChipDesign("one", cores=(BIG,)))
        result = sim.run(
            [ThreadSim(get_profile("tonto"), 0)],
            instructions_per_thread=3000,
            warmup_instructions=3000,
        )
        # Measured region is exactly the post-warmup budget.
        assert result.thread_stats[0][1].instructions == 3000


class TestSimulatorOptions:
    def test_prefetcher_reduces_streaming_dram_latency_exposure(self):
        lbm = get_profile("lbm")
        plain = MulticoreSimulator(get_design("4B"))
        fetching = MulticoreSimulator(get_design("4B"), prefetcher="nextline")
        base = plain.run([ThreadSim(lbm, 0)], instructions_per_thread=6000)
        pre = fetching.run([ThreadSim(lbm, 0)], instructions_per_thread=6000)
        # Prefetching must not slow the streaming workload down, and should
        # convert some demand DRAM fills into L2 hits.
        assert pre.ipc_of(0) >= base.ipc_of(0) * 0.95
        base_dram = base.thread_stats[0][1].level_hits.get("dram", 0)
        pre_dram = pre.thread_stats[0][1].level_hits.get("dram", 0)
        assert pre_dram <= base_dram

    def test_icount_policy_runs_full_chip(self):
        sim = MulticoreSimulator(get_design("4B"), fetch_policy="icount")
        result = sim.run(
            [ThreadSim(get_profile("mcf"), 0, seed=s) for s in (1, 2)],
            instructions_per_thread=3000,
        )
        assert result.total_ipc > 0

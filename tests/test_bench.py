"""The tracked benchmark harness: report shape, baselines and the CI gate."""

import json

import pytest

from repro import bench


class TestScenarioRegistry:
    def test_fast_scenarios_are_registered(self):
        for name in bench.FAST_SCENARIOS:
            assert name in bench.SCENARIOS

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            bench.run_scenario("no-such-scenario")

    def test_bad_repeats_raises(self):
        with pytest.raises(ValueError, match="repeats"):
            bench.run_scenario("tracegen", repeats=0)


class TestRunSuite:
    @pytest.fixture(scope="class")
    def report(self):
        # tracegen is the cheapest scenario; one repeat keeps this fast.
        return bench.run_suite(scenarios=["tracegen"], repeats=1)

    def test_report_shape(self, report):
        assert report["schema_version"] == 1
        entry = report["scenarios"]["tracegen"]
        assert entry["instructions"] > 0
        assert entry["seconds"] > 0
        assert entry["instructions_per_second"] > 0
        assert entry["repeats"] == 1

    def test_speedup_against_recorded_baseline(self, report):
        # The repo ships a seed baseline, so the speedup must be populated.
        assert report["baseline"] is not None
        assert report["scenarios"]["tracegen"]["speedup_vs_baseline"] > 0

    def test_report_roundtrips_through_json(self, report, tmp_path):
        path = tmp_path / "BENCH_cycle.json"
        bench.write_report(report, str(path))
        assert json.loads(path.read_text()) == report

    def test_save_baseline_roundtrip(self, report, tmp_path):
        path = tmp_path / "baseline.json"
        bench.save_baseline(report, str(path), label="test")
        loaded = bench.load_baseline(str(path))
        assert loaded["label"] == "test"
        assert (
            loaded["scenarios"]["tracegen"]["instructions_per_second"]
            == report["scenarios"]["tracegen"]["instructions_per_second"]
        )


class TestLoadBaseline:
    def test_missing_file_returns_none(self, tmp_path):
        assert bench.load_baseline(str(tmp_path / "absent.json")) is None

    def test_malformed_file_returns_none(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json at all")
        assert bench.load_baseline(str(path)) is None

    def test_wrong_shape_returns_none(self, tmp_path):
        path = tmp_path / "shape.json"
        path.write_text(json.dumps({"no_scenarios": True}))
        assert bench.load_baseline(str(path)) is None


def _report(speedups):
    return {
        "schema_version": 1,
        "baseline": {"path": "x", "label": "seed"},
        "scenarios": {
            name: {
                "instructions": 1000,
                "seconds": 0.1,
                "instructions_per_second": 10_000.0,
                "repeats": 1,
                "speedup_vs_baseline": s,
            }
            for name, s in speedups.items()
        },
    }


class TestCheckRegressions:
    def test_within_bounds_passes(self):
        assert bench.check_regressions(_report({"a": 1.1, "b": 0.9})) == []

    def test_regression_fails(self):
        failures = bench.check_regressions(_report({"a": 0.5, "b": 1.0}))
        assert len(failures) == 1
        assert "a:" in failures[0]

    def test_threshold_is_configurable(self):
        report = _report({"a": 0.9})
        assert bench.check_regressions(report, max_regression=0.25) == []
        assert len(bench.check_regressions(report, max_regression=0.05)) == 1

    def test_no_baseline_entry_is_skipped(self):
        assert bench.check_regressions(_report({"a": None})) == []

    def test_bad_threshold_raises(self):
        with pytest.raises(ValueError, match="max_regression"):
            bench.check_regressions(_report({}), max_regression=1.5)


class TestTiers:
    def test_every_scenario_has_a_tier(self):
        tiered = [n for names in bench.TIERS.values() for n in names]
        assert sorted(tiered) == sorted(bench.SCENARIOS)

    def test_tier_of(self):
        assert bench.tier_of("tracegen") == "cycle"
        assert bench.tier_of("interval_slab") == "interval"
        with pytest.raises(KeyError):
            bench.tier_of("no-such-scenario")

    def test_each_tier_has_a_report_file(self):
        assert set(bench.REPORT_FILES) == set(bench.TIERS)
        assert bench.REPORT_FILES["cycle"] == "BENCH_cycle.json"
        assert bench.REPORT_FILES["interval"] == "BENCH_interval.json"

    def test_interval_scenarios_in_fast_set(self):
        # The CI perf gate runs FAST_SCENARIOS; the cheap interval
        # scenarios must be in it (the 963-point slab is not).
        assert "interval_point" in bench.FAST_SCENARIOS
        assert "interval_solver" in bench.FAST_SCENARIOS
        assert "interval_slab" not in bench.FAST_SCENARIOS


class TestIntervalScenarios:
    def test_interval_solver_scenario_runs(self):
        result = bench.run_scenario("interval_solver", repeats=1)
        assert result.unit == "solves"
        assert result.instructions == 16
        assert result.instructions_per_second > 0

    def test_report_entry_carries_unit(self):
        report = bench.run_suite(scenarios=["interval_solver"], repeats=1)
        entry = report["scenarios"]["interval_solver"]
        assert entry["unit"] == "solves"
        # Legacy key names survive so committed baselines keep loading.
        assert entry["instructions_per_second"] > 0

    def test_cycle_scenarios_count_instructions(self):
        result = bench.run_scenario("tracegen", repeats=1)
        assert result.unit == "instr"

"""CPI-stack characterization tables."""

import pytest

from repro.analysis.cpi_stacks import cpi_stack, cpi_stack_table, smt_cpi_stacks
from repro.microarch.config import BIG, MEDIUM, SMALL
from repro.workloads.spec import all_profiles, get_profile


class TestSingleStack:
    def test_components_present_and_nonnegative(self):
        stack = cpi_stack(get_profile("mcf"))
        for key in ("base", "branch", "l1i", "l2hit", "llchit", "dram"):
            assert key in stack
            assert stack[key] >= 0.0

    def test_memory_bound_dominated_by_dram(self):
        stack = cpi_stack(get_profile("libquantum"))
        assert stack["dram"] > stack["base"]

    def test_compute_bound_dominated_by_base(self):
        stack = cpi_stack(get_profile("hmmer"))
        assert stack["base"] > 0.5 * sum(stack.values())

    def test_branch_bound_shows_branch_component(self):
        gobmk = cpi_stack(get_profile("gobmk"))
        hmmer = cpi_stack(get_profile("hmmer"))
        assert gobmk["branch"] > 5 * hmmer["branch"]

    def test_inorder_exposes_more_memory_cpi(self):
        big = cpi_stack(get_profile("mcf"), BIG)
        small = cpi_stack(get_profile("mcf"), SMALL)
        assert small["dram"] > big["dram"]

    def test_smt_co_runners_inflate_memory_components(self):
        alone = cpi_stack(get_profile("mcf"), BIG, co_runners=0)
        crowded = cpi_stack(get_profile("mcf"), BIG, co_runners=5)
        assert crowded["dram"] > alone["dram"]
        assert crowded["llchit"] > alone["llchit"]


class TestTables:
    def test_suite_table_shape(self):
        table = cpi_stack_table(all_profiles()[:5])
        assert len(table.rows) == 5
        for row in table.rows:
            parts = sum(
                row[k] for k in ("base", "branch", "l1i", "l2hit", "llchit",
                                 "dram", "smt_issue")
            )
            assert parts == pytest.approx(row["total CPI"])

    def test_smt_depth_table_monotone_total(self):
        table = smt_cpi_stacks(get_profile("mcf"), BIG)
        totals = table.column("total CPI")
        assert len(totals) == BIG.max_smt_contexts
        assert all(a <= b + 1e-9 for a, b in zip(totals, totals[1:]))

    def test_smt_depth_respects_cap(self):
        table = smt_cpi_stacks(get_profile("tonto"), MEDIUM)
        assert len(table.rows) == MEDIUM.max_smt_contexts

"""The nine power-equivalent chip designs (Figure 2)."""

import pytest

from repro.core.designs import (
    ALTERNATIVE_DESIGNS,
    DESIGN_ORDER,
    DESIGNS,
    ChipDesign,
    all_designs,
    get_design,
)
from repro.microarch.config import BIG
from repro.microarch.uncore import HIGH_BANDWIDTH_UNCORE


class TestDesignSpace:
    def test_nine_designs(self):
        assert len(DESIGNS) == 9
        assert set(DESIGN_ORDER) == set(DESIGNS)

    @pytest.mark.parametrize(
        "name,big,medium,small",
        [
            ("4B", 4, 0, 0),
            ("3B2m", 3, 2, 0),
            ("3B5s", 3, 0, 5),
            ("2B4m", 2, 4, 0),
            ("2B10s", 2, 0, 10),
            ("1B6m", 1, 6, 0),
            ("1B15s", 1, 0, 15),
            ("8m", 0, 8, 0),
            ("20s", 0, 0, 20),
        ],
    )
    def test_compositions(self, name, big, medium, small):
        counts = get_design(name).core_counts()
        assert counts.get("big", 0) == big
        assert counts.get("medium", 0) == medium
        assert counts.get("small", 0) == small

    def test_all_designs_power_equivalent(self):
        # Every design sums to 4 big-core equivalents.
        for design in all_designs():
            assert design.power_budget_weight == pytest.approx(4.0)

    def test_all_designs_support_24_threads_with_smt(self):
        for design in all_designs():
            assert design.max_threads >= 24

    def test_cores_ordered_big_first(self):
        for design in all_designs():
            weights = [c.power_weight for c in design.cores]
            assert weights == sorted(weights, reverse=True)

    def test_homogeneity_flags(self):
        assert get_design("4B").is_homogeneous
        assert get_design("8m").is_homogeneous
        assert get_design("20s").is_homogeneous
        assert not get_design("3B5s").is_homogeneous

    def test_unknown_design_raises(self):
        with pytest.raises(KeyError, match="unknown design"):
            get_design("5B")

    def test_alternative_designs(self):
        assert set(ALTERNATIVE_DESIGNS) == {"6m_lc", "16s_lc", "6m_hf", "16s_hf"}
        # Alternative designs respect their shifted power equivalence.
        assert ALTERNATIVE_DESIGNS["6m_lc"].power_budget_weight == pytest.approx(4.0)
        assert ALTERNATIVE_DESIGNS["16s_lc"].power_budget_weight == pytest.approx(4.0)

    def test_all_designs_with_alternatives(self):
        assert len(all_designs(include_alternatives=True)) == 13

    def test_with_uncore(self):
        fast = get_design("4B").with_uncore(HIGH_BANDWIDTH_UNCORE)
        assert fast.uncore.dram.bus_bandwidth_bytes_per_s == 16e9
        assert fast.cores == get_design("4B").cores

    def test_empty_design_rejected(self):
        with pytest.raises(ValueError, match="at least one core"):
            ChipDesign(name="none", cores=())

    def test_get_design_finds_alternatives(self):
        assert get_design("6m_hf").num_cores == 6

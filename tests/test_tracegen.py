"""Synthetic trace generation: determinism, mix, miss-curve fidelity."""

import pytest

from repro.memory.cache import Cache
from repro.microarch.config import CacheConfig
from repro.util import KB
from repro.workloads.spec import get_profile
from repro.workloads.tracegen import (
    EXEC_LATENCY,
    KINDS,
    TraceGenerator,
    TraceInstruction,
)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = TraceGenerator(get_profile("mcf"), seed=5).generate(2000)
        b = TraceGenerator(get_profile("mcf"), seed=5).generate(2000)
        assert a == b

    def test_different_seed_different_trace(self):
        a = TraceGenerator(get_profile("mcf"), seed=5).generate(2000)
        b = TraceGenerator(get_profile("mcf"), seed=6).generate(2000)
        assert a != b

    def test_warm_addresses_deterministic(self):
        a = TraceGenerator(get_profile("mcf"), seed=5).warm_addresses()
        b = TraceGenerator(get_profile("mcf"), seed=5).warm_addresses()
        assert a == b


class TestInstructionMix:
    def test_kinds_valid(self):
        trace = TraceGenerator(get_profile("tonto")).generate(5000)
        assert all(i.kind in KINDS for i in trace)
        assert all(i.kind in EXEC_LATENCY for i in trace)

    def test_mem_fraction_matches_profile(self):
        p = get_profile("mcf")
        trace = TraceGenerator(p).generate(20000)
        mem = sum(i.kind in ("load", "store") for i in trace) / len(trace)
        assert mem == pytest.approx(p.mem_frac, abs=0.03)

    def test_branch_fraction_matches_profile(self):
        p = get_profile("gobmk")
        trace = TraceGenerator(p).generate(20000)
        br = sum(i.kind == "branch" for i in trace) / len(trace)
        assert br == pytest.approx(p.branch_frac, abs=0.02)

    def test_mispredict_rate_matches_profile(self):
        p = get_profile("gobmk")
        trace = TraceGenerator(p).generate(50000)
        mispred_mpki = sum(i.mispredicted for i in trace) / len(trace) * 1000
        assert mispred_mpki == pytest.approx(p.branch_mpki, rel=0.35)

    def test_memory_instructions_have_addresses(self):
        trace = TraceGenerator(get_profile("mcf")).generate(2000)
        for i in trace:
            if i.kind in ("load", "store"):
                assert i.address >= 0
            else:
                assert i.address == -1

    def test_dep_distance_tracks_ilp(self):
        import statistics as st

        def mean_dist(name):
            trace = TraceGenerator(get_profile(name)).generate(20000)
            return st.mean(i.dep_distance for i in trace if i.dep_distance)

        assert mean_dist("hmmer") > mean_dist("mcf")


class TestMissCurveFidelity:
    """Feeding the trace through real caches must reproduce the curve shape."""

    @staticmethod
    def miss_rate(profile, cache_kb, n=40000):
        gen = TraceGenerator(profile)
        cache = Cache(CacheConfig(cache_kb * KB, 4, latency_cycles=1))
        for addr in gen.warm_addresses():
            cache.warm(addr)
        trace = gen.generate(n)
        for i in trace:
            if i.kind in ("load", "store"):
                cache.access(i.address)
        return cache.stats.misses / n * 1000  # MPKI

    def test_mpki_decreases_with_capacity(self):
        p = get_profile("mcf")
        small = self.miss_rate(p, 16)
        big = self.miss_rate(p, 256)
        assert big < small

    def test_mpki_near_curve_at_reference(self):
        p = get_profile("mcf")
        measured = self.miss_rate(p, 32)
        expected = p.dcurve.mpki(32 * KB)
        assert measured == pytest.approx(expected, rel=0.5)

    def test_streaming_profile_insensitive_to_capacity(self):
        p = get_profile("libquantum")
        small = self.miss_rate(p, 32)
        big = self.miss_rate(p, 512)
        assert big > 0.5 * small  # compulsory floor dominates

    def test_hungry_profile_misses_more(self):
        mcf = self.miss_rate(get_profile("mcf"), 32)
        hmmer = self.miss_rate(get_profile("hmmer"), 32)
        assert mcf > 3 * hmmer


class TestValidation:
    def test_zero_instructions_rejected(self):
        with pytest.raises(ValueError):
            TraceGenerator(get_profile("mcf")).generate(0)

    def test_instruction_record_shape(self):
        i = TraceInstruction(kind="load", pc=0x1000, address=64, dep_distance=3)
        assert i.pc == 0x1000
        assert not i.mispredicted

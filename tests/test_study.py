"""Design-space study orchestration: mixes, curves, aggregates, caching."""

import pytest

from repro.core.designs import DESIGN_ORDER
from repro.core.distributions import uniform
from repro.core.study import DesignSpaceStudy
from repro.microarch.uncore import HIGH_BANDWIDTH_UNCORE


class TestEvaluateMix:
    def test_single_thread_on_big_is_unity(self, study):
        # One thread of anything on 4B runs isolated on a big core: STP = 1.
        for bench in ("tonto", "mcf", "libquantum"):
            result = study.evaluate_mix("4B", [bench])
            assert result.stp == pytest.approx(1.0, rel=1e-6)
            assert result.antt == pytest.approx(1.0, rel=1e-6)

    def test_single_thread_on_small_below_unity(self, study):
        result = study.evaluate_mix("20s", ["tonto"])
        assert result.stp < 0.6

    def test_stp_bounded_by_thread_count(self, study):
        result = study.evaluate_mix("4B", ["tonto"] * 8)
        assert result.stp <= 8.0

    def test_antt_at_least_one_on_big_cores(self, study):
        result = study.evaluate_mix("4B", ["tonto"] * 8)
        assert result.antt >= 1.0

    def test_memoization_returns_same_object(self, study):
        a = study.evaluate_mix("4B", ["mcf", "tonto"])
        b = study.evaluate_mix("4B", ["mcf", "tonto"])
        assert a is b

    def test_smt_beats_time_sharing_at_high_counts(self, study):
        smt = study.evaluate_mix("4B", ["tonto"] * 12, smt=True)
        shared = study.evaluate_mix("4B", ["tonto"] * 12, smt=False)
        assert smt.stp > shared.stp

    def test_unknown_design_rejected(self, study):
        with pytest.raises(KeyError, match="not in this study"):
            study.evaluate_mix("5B", ["tonto"])

    def test_power_fields_consistent(self, study):
        result = study.evaluate_mix("4B", ["tonto"])
        # Gating three idle big cores must save power.
        assert result.power_gated_w < result.power_ungated_w


class TestMixes:
    def test_homogeneous_mixes(self, study):
        mixes = study.mixes("homogeneous", 4)
        assert len(mixes) == 12
        assert all(len(set(m)) == 1 and len(m) == 4 for m in mixes)

    def test_heterogeneous_mixes_balanced(self, study):
        mixes = study.mixes("heterogeneous", 6)
        assert len(mixes) == 12
        from collections import Counter

        counts = Counter(name for m in mixes for name in m)
        assert len(set(counts.values())) == 1  # perfectly balanced

    def test_unknown_kind_rejected(self, study):
        with pytest.raises(ValueError, match="kind"):
            study.mixes("mixed", 4)


class TestCurvesAndAggregates:
    def test_throughput_curve_keys(self, study):
        curve = study.throughput_curve("4B", "homogeneous", [1, 2, 4])
        assert set(curve) == {1, 2, 4}
        assert curve[1] < curve[4]

    def test_mean_stp_positive(self, study):
        assert study.mean_stp("8m", "heterogeneous", 4) > 0

    def test_aggregate_between_extremes(self, study):
        dist = uniform(8)
        curve = study.throughput_curve("4B", "homogeneous", range(1, 9))
        agg = study.aggregate_stp("4B", "homogeneous", dist)
        assert min(curve.values()) <= agg <= max(curve.values())

    def test_antt_curve_increasing_under_smt_pressure(self, study):
        curve = study.antt_curve("4B", "homogeneous", [1, 24])
        assert curve[24] > curve[1]

    def test_best_design_returns_member(self, study):
        dist = uniform(4)
        name, value = study.best_design("homogeneous", dist, smt=True)
        assert name in DESIGN_ORDER
        assert value > 0

    def test_best_design_exclusion(self, study):
        dist = uniform(4)
        full, _ = study.best_design("homogeneous", dist, smt=True)
        other, _ = study.best_design(
            "homogeneous", dist, smt=True, exclude=[full]
        )
        assert other != full


class TestUncoreOverride:
    def test_high_bandwidth_study_normalizes_to_its_own_baseline(self):
        base = DesignSpaceStudy()
        fast = DesignSpaceStudy(uncore=HIGH_BANDWIDTH_UNCORE)
        # A lone bandwidth-bound thread gains from 16 GB/s, but so does its
        # reference, so STP stays 1.0 in both studies.
        assert base.evaluate_mix("4B", ["libquantum"]).stp == pytest.approx(1.0)
        assert fast.evaluate_mix("4B", ["libquantum"]).stp == pytest.approx(1.0)

    def test_high_bandwidth_improves_saturated_stp(self):
        base = DesignSpaceStudy()
        fast = DesignSpaceStudy(uncore=HIGH_BANDWIDTH_UNCORE)
        mix = ["libquantum"] * 24
        assert (
            fast.evaluate_mix("4B", mix).stp
            >= base.evaluate_mix("4B", mix).stp * 0.99
        )

    def test_subset_of_designs(self):
        study = DesignSpaceStudy(designs=[])
        assert study.designs == {}


class TestAddDesign:
    def test_register_and_evaluate(self):
        from repro.explore import composition_design

        study = DesignSpaceStudy(designs=[])
        design = composition_design((1, 2, 5))
        study.add_design(design)
        assert study.design(design.name) is design
        assert study.evaluate_mix(design.name, ["mcf"]).stp > 0

    def test_idempotent_on_equal_design(self):
        from repro.core.designs import get_design

        study = DesignSpaceStudy()
        study.add_design(get_design("4B"))  # same object: no-op
        assert len(study.designs) == 9

    def test_name_clash_with_different_cores_rejected(self):
        from repro.explore import composition_design

        study = DesignSpaceStudy()
        clash = composition_design((0, 8, 0))
        object.__setattr__(clash, "name", "4B")
        with pytest.raises(ValueError, match="4B"):
            study.add_design(clash)

    def test_evaluated_points_counts_memo(self):
        study = DesignSpaceStudy()
        assert study.evaluated_points == 0
        study.evaluate_mix("4B", ["mcf"])
        study.evaluate_mix("4B", ["mcf"])  # memo hit: not recounted
        study.evaluate_mix("4B", ["mcf"], smt=False)
        assert study.evaluated_points == 2

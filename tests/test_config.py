"""Core microarchitecture configurations (Table 1)."""

import pytest

from repro.microarch.config import (
    BIG,
    CORE_CONFIGS,
    MEDIUM,
    MEDIUM_HF,
    MEDIUM_LC,
    SMALL,
    SMALL_HF,
    SMALL_LC,
    CacheConfig,
    CoreConfig,
    CoreType,
    FunctionalUnits,
)
from repro.util import KB


class TestCacheConfig:
    def test_num_sets(self):
        cfg = CacheConfig(32 * KB, 4, latency_cycles=2)
        assert cfg.num_sets == 32 * KB // 64 // 4

    def test_rejects_non_multiple_of_line(self):
        with pytest.raises(ValueError, match="multiple of"):
            CacheConfig(1000, 2, latency_cycles=1)

    def test_rejects_bad_associativity(self):
        with pytest.raises(ValueError, match="associativity"):
            CacheConfig(64 * 3, 2, latency_cycles=1)  # 3 lines, 2-way

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError, match="size_bytes"):
            CacheConfig(0, 1, latency_cycles=1)


class TestTable1Values:
    """Table 1 of the paper, verbatim."""

    def test_big_core(self):
        assert BIG.width == 4
        assert BIG.rob_size == 128
        assert BIG.max_smt_contexts == 6
        assert BIG.core_type is CoreType.OUT_OF_ORDER
        assert BIG.l1i.size_bytes == 32 * KB and BIG.l1i.associativity == 4
        assert BIG.l1d.size_bytes == 32 * KB
        assert BIG.l2.size_bytes == 256 * KB and BIG.l2.associativity == 8
        assert BIG.frequency_ghz == 2.66

    def test_medium_core(self):
        assert MEDIUM.width == 2
        assert MEDIUM.rob_size == 32
        assert MEDIUM.max_smt_contexts == 3
        assert MEDIUM.core_type is CoreType.OUT_OF_ORDER
        assert MEDIUM.l1i.size_bytes == 16 * KB
        assert MEDIUM.l2.size_bytes == 128 * KB and MEDIUM.l2.associativity == 4

    def test_small_core(self):
        assert SMALL.width == 2
        assert SMALL.rob_size == 0
        assert SMALL.max_smt_contexts == 2
        assert SMALL.core_type is CoreType.IN_ORDER
        assert SMALL.l1i.size_bytes == 6 * KB
        assert SMALL.l2.size_bytes == 48 * KB

    def test_functional_units_big(self):
        fu = BIG.functional_units
        assert (fu.int_alu, fu.load_store, fu.mul_div, fu.fp) == (3, 2, 1, 1)

    def test_functional_units_medium_small(self):
        for core in (MEDIUM, SMALL):
            fu = core.functional_units
            assert (fu.int_alu, fu.load_store, fu.mul_div, fu.fp) == (2, 1, 1, 1)

    def test_power_weights(self):
        # 1 big ~ 2 medium ~ 5 small (the Figure 2 power equivalence).
        assert BIG.power_weight == 1.0
        assert MEDIUM.power_weight == 0.5
        assert SMALL.power_weight == 0.2


class TestRobShare:
    def test_full_rob_single_thread(self):
        assert BIG.rob_share(1) == 128

    def test_static_partitioning(self):
        assert BIG.rob_share(6) == 128 // 6
        assert MEDIUM.rob_share(3) == 32 // 3

    def test_exceeding_contexts_rejected(self):
        with pytest.raises(ValueError, match="at most 6"):
            BIG.rob_share(7)

    def test_inorder_has_no_rob(self):
        assert SMALL.rob_share(2) == 0

    def test_inorder_with_rob_rejected(self):
        with pytest.raises(ValueError, match="in-order"):
            CoreConfig(
                name="bad",
                core_type=CoreType.IN_ORDER,
                width=2,
                rob_size=16,
                functional_units=FunctionalUnits(),
                max_smt_contexts=2,
                l1i=SMALL.l1i,
                l1d=SMALL.l1d,
                l2=SMALL.l2,
            )


class TestVariants:
    """Section 8.1 larger-cache and higher-frequency variants."""

    def test_lc_variants_have_big_caches(self):
        for variant in (MEDIUM_LC, SMALL_LC):
            assert variant.l1i.size_bytes == BIG.l1i.size_bytes
            assert variant.l2.size_bytes == BIG.l2.size_bytes

    def test_hf_variants_run_faster(self):
        assert MEDIUM_HF.frequency_ghz == 3.33
        assert SMALL_HF.frequency_ghz == 3.33
        # Caches unchanged from the plain variants.
        assert SMALL_HF.l2.size_bytes == SMALL.l2.size_bytes

    def test_variant_power_weights_shift(self):
        # 1 big ~ 1.5 medium_lc/hf ~ 4 small_lc/hf.
        assert MEDIUM_LC.power_weight == pytest.approx(1 / 1.5)
        assert SMALL_LC.power_weight == pytest.approx(0.25)
        assert MEDIUM_HF.power_weight == pytest.approx(1 / 1.5)
        assert SMALL_HF.power_weight == pytest.approx(0.25)

    def test_registry_contains_all(self):
        assert set(CORE_CONFIGS) == {
            "big",
            "medium",
            "small",
            "medium_lc",
            "small_lc",
            "medium_hf",
            "small_hf",
        }

    def test_with_frequency_preserves_rest(self):
        fast = BIG.with_frequency(3.0)
        assert fast.frequency_ghz == 3.0
        assert fast.rob_size == BIG.rob_size
        assert fast.name == BIG.name

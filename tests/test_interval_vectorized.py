"""Scalar-vs-vectorized equivalence for the interval tier.

The vectorized chip solver (batch traffic kernel, lockstep bisection,
warm-started brackets) must be *bit-identical* to the golden scalar
reference (`ChipModel._solve`) — not merely close.  These tests pin that
contract over the tier-1 figure grid, randomized placements (hypothesis),
warm-start hints good and garbage, the batched entry point, and the
study-level slab path.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

import repro.core.study as stmod
from repro.core.designs import ChipDesign, DESIGN_ORDER, all_designs, get_design
from repro.core.scheduler import Scheduler
from repro.interval.contention import (
    SOLVER_ENV,
    ChipModel,
    evaluate_batch,
)
from repro.microarch.config import BIG, MEDIUM, SMALL
from repro.obs import METRICS, reset_observability
from repro.workloads.multiprogram import heterogeneous_mixes, profiles_for
from repro.workloads.profiles import MissRateCurve
from repro.workloads.spec import SPEC_ORDER


def _placement(design, mix, smt=True):
    return Scheduler(design, smt=smt).place(profiles_for(list(mix)))


def _grid_points(designs, counts, mixes_per_count=None):
    for name in designs:
        design = get_design(name)
        model = ChipModel(design)
        for n in counts:
            mixes = heterogeneous_mixes(n)
            if mixes_per_count is not None:
                mixes = mixes[:mixes_per_count]
            for mix in mixes:
                yield model, _placement(design, mix)


class TestGoldenEquivalence:
    def test_fast_grid_subset(self):
        """Three designs x four counts x two mixes: exact equality."""
        for model, placement in _grid_points(
            DESIGN_ORDER[:3], (1, 2, 4, 8), mixes_per_count=2
        ):
            vector = model._solve_vectorized(placement, True, None)
            assert vector == model._solve(placement, True)

    @pytest.mark.slow
    def test_full_tier1_grid(self):
        """Every figure-grid point (9 designs x counts 1..9, all mixes)."""
        checked = 0
        for model, placement in _grid_points(
            [d.name for d in all_designs()], range(1, 10)
        ):
            vector = model._solve_vectorized(placement, True, None)
            assert vector == model._solve(placement, True)
            checked += 1
        assert checked > 900  # the full 963-point slab actually ran

    def test_smt_off_and_no_smt_designs(self):
        for name in ("4B", DESIGN_ORDER[-1]):
            design = get_design(name)
            model = ChipModel(design)
            placement = _placement(design, heterogeneous_mixes(4)[0], smt=False)
            vector = model._solve_vectorized(placement, False, None)
            assert vector == model._solve(placement, False)

    def test_icount_fetch_policy_falls_back_bit_identically(self):
        """ICOUNT SMT has no batch statics; the scalar fallback must match."""
        design = get_design("4B")
        model = ChipModel(design, fetch_policy="icount")
        placement = _placement(design, heterogeneous_mixes(8)[0])
        vector = model._solve_vectorized(placement, True, None)
        assert vector == model._solve(placement, True)

    _CORES = {"big": BIG, "medium": MEDIUM, "small": SMALL}

    @settings(max_examples=25, deadline=None)
    @given(
        core_names=st.lists(
            st.sampled_from(["big", "medium", "small"]), min_size=1, max_size=3
        ),
        mix=st.lists(st.sampled_from(SPEC_ORDER), min_size=1, max_size=6),
        smt=st.booleans(),
    )
    def test_property_random_placements(self, core_names, mix, smt):
        design = ChipDesign(
            name="prop-" + "-".join(core_names),
            cores=tuple(self._CORES[c] for c in core_names),
        )
        # Placements beyond the chip's hardware contexts fail validation in
        # SMT mode (pre-existing contract); only feasible ones are compared.
        assume(
            not smt
            or len(mix) <= sum(c.max_smt_contexts for c in design.cores)
        )
        model = ChipModel(design)
        placement = _placement(design, mix, smt=smt)
        vector = model._solve_vectorized(placement, smt, None)
        assert vector == model._solve(placement, smt)


class TestWarmStart:
    def _cold_and_model(self):
        design = get_design("4B")
        model = ChipModel(design)
        placement = _placement(design, heterogeneous_mixes(12)[0])
        return model, placement, model._solve_vectorized(placement, True, None)

    def test_exact_root_hint_is_bit_identical(self):
        model, placement, cold = self._cold_and_model()
        warm = model._solve_vectorized(placement, True, cold.mem_latency_ns)
        assert warm == cold

    @pytest.mark.parametrize("hint", [-5.0, 0.0, 700.0, 1e6])
    def test_garbage_hints_are_bit_identical(self, hint):
        """A wrong or absurd hint may cost evaluations, never correctness."""
        model, placement, cold = self._cold_and_model()
        warm = model._solve_vectorized(placement, True, hint)
        assert warm == cold

    def test_unloaded_latency_hint(self):
        model, placement, cold = self._cold_and_model()
        warm = model._solve_vectorized(
            placement, True, model.unloaded_mem_latency_ns
        )
        assert warm == cold

    def test_warm_grid_matches_cold_and_scalar(self):
        """Chained hints (each point hinted by the previous root) stay exact."""
        design = get_design("8m")
        model = ChipModel(design)
        hint = None
        for n in (2, 3, 4, 6, 8):
            placement = _placement(design, heterogeneous_mixes(n)[0])
            warm = model._solve_vectorized(placement, True, hint)
            assert warm == model._solve(placement, True)
            hint = warm.mem_latency_ns


class TestEvaluateBatch:
    def test_batch_matches_per_point(self, monkeypatch):
        monkeypatch.delenv(SOLVER_ENV, raising=False)
        requests = []
        for name in DESIGN_ORDER[:3]:
            design = get_design(name)
            model = ChipModel(design)
            for n in (1, 3, 6):
                placement = _placement(design, heterogeneous_mixes(n)[0])
                requests.append((model, placement, True, None))
        batch = evaluate_batch(requests)
        for (model, placement, smt, _hint), result in zip(requests, batch):
            assert result == model.evaluate(placement, smt)

    def test_scalar_env_mode(self, monkeypatch):
        design = get_design("4B")
        model = ChipModel(design)
        placement = _placement(design, heterogeneous_mixes(4)[0])
        monkeypatch.setenv(SOLVER_ENV, "scalar")
        scalar = model.evaluate(placement)
        monkeypatch.delenv(SOLVER_ENV)
        assert model.evaluate(placement) == scalar

    def test_verify_env_mode_smoke(self, monkeypatch):
        """verify mode runs both solvers and asserts parity internally."""
        monkeypatch.setenv(SOLVER_ENV, "verify")
        design = get_design("4B")
        placement = _placement(design, heterogeneous_mixes(6)[0])
        ChipModel(design).evaluate(placement)

    def test_solver_metrics_observed(self):
        reset_observability()
        METRICS.enable()
        try:
            design = get_design("4B")
            model = ChipModel(design)
            placement = _placement(design, heterogeneous_mixes(8)[0])
            evaluate_batch([(model, placement, True, None)])
            snap = METRICS.snapshot()
            assert "interval.solver.iterations" in snap["histograms"]
            assert "interval.solver.evals" in snap["histograms"]
        finally:
            reset_observability()


class TestStudySlabPath:
    def _grid(self, study, solver_env=None):
        results = {}
        for name in DESIGN_ORDER[:3]:
            for n in (1, 2, 4):
                for mix in study.mixes("heterogeneous", n)[:3]:
                    results[(name, tuple(mix))] = study.evaluate_mix(
                        name, list(mix)
                    )
        return results

    def test_batch_prefetch_matches_scalar_per_point(self, monkeypatch):
        monkeypatch.setenv(SOLVER_ENV, "scalar")
        stmod.clear_latency_hint_cache()
        scalar = self._grid(stmod.DesignSpaceStudy())
        monkeypatch.delenv(SOLVER_ENV)
        stmod.clear_latency_hint_cache()
        study = stmod.DesignSpaceStudy()
        study.prefetch(DESIGN_ORDER[:3], "heterogeneous", (1, 2, 4))
        vector = self._grid(study)
        assert vector == scalar

    def test_nearest_hint_selection(self):
        assert stmod._nearest_hint({}, 4) is None
        assert stmod._nearest_hint({2: 100.0}, 8) == 100.0
        # Ties resolve toward fewer threads.
        assert stmod._nearest_hint({2: 100.0, 4: 200.0}, 3) == 100.0
        assert stmod._nearest_hint({2: 100.0, 4: 200.0}, 4) == 200.0

    def test_hint_cache_clear(self):
        hints = stmod._latency_hints(get_design("4B"), True)
        hints[4] = 123.0
        stmod.clear_latency_hint_cache()
        assert stmod._latency_hints(get_design("4B"), True) == {}


class TestMpkiMemo:
    def test_memoized_values_match_fresh_curve(self):
        a = MissRateCurve(mpki_ref=20.0, alpha=0.5)
        b = MissRateCurve(mpki_ref=20.0, alpha=0.5)
        capacities = [0.0, 1024.0, 32 * 1024.0, 1e6, 64e6]
        first = [a.mpki(c) for c in capacities]
        again = [a.mpki(c) for c in capacities]  # memo hits
        fresh = [b.mpki(c) for c in capacities]
        assert first == again == fresh

    def test_memo_does_not_affect_hash_equality_or_key(self):
        from repro.engine import content_key

        a = MissRateCurve(mpki_ref=20.0, alpha=0.5)
        b = MissRateCurve(mpki_ref=20.0, alpha=0.5)
        a.mpki(4096.0)  # populate a's memo only
        assert a == b
        assert hash(a) == hash(b)
        assert content_key(a) == content_key(b)

    def test_misses_per_instruction_uses_memo(self):
        curve = MissRateCurve(mpki_ref=10.0, alpha=0.7)
        assert curve.misses_per_instruction(8192.0) == curve.mpki(8192.0) / 1000.0

"""Multithreaded execution model (Section 5 machinery)."""

import pytest

from repro.core.designs import get_design
from repro.core.multithreaded import MultithreadedModel, speedup
from repro.workloads.parsec import get_workload


@pytest.fixture(scope="module")
def model_4b():
    return MultithreadedModel(get_design("4B"))


@pytest.fixture(scope="module")
def model_20s():
    return MultithreadedModel(get_design("20s"))


class TestRun:
    def test_histogram_sums_to_one(self, model_20s):
        r = model_20s.run(get_workload("dedup"), 20, smt=False)
        assert sum(r.active_thread_fractions.values()) == pytest.approx(1.0)

    def test_histogram_levels_within_bounds(self, model_20s):
        r = model_20s.run(get_workload("ferret"), 16, smt=False)
        assert all(1 <= k <= 16 for k in r.active_thread_fractions)

    def test_whole_includes_roi(self, model_4b):
        r = model_4b.run(get_workload("bodytrack"), 4)
        assert r.total_seconds > r.roi_seconds

    def test_more_threads_speed_up_scalable_app(self, model_20s):
        w = get_workload("blackscholes")
        t4 = model_20s.run(w, 4, smt=False).roi_seconds
        t16 = model_20s.run(w, 16, smt=False).roi_seconds
        assert t16 < t4 / 2

    def test_poorly_scaling_app_saturates(self, model_20s):
        w = get_workload("swaptions")
        t8 = model_20s.run(w, 8, smt=False).roi_seconds
        t20 = model_20s.run(w, 20, smt=False).roi_seconds
        assert t20 > t8 * 0.6  # far from linear scaling

    def test_smt_extends_thread_range_on_4b(self, model_4b):
        w = get_workload("blackscholes")
        smt = model_4b.run(w, 8, smt=True).roi_seconds
        no_smt = model_4b.run(w, 8, smt=False).roi_seconds  # time-shared
        assert smt < no_smt

    def test_fraction_helpers(self, model_20s):
        r = model_20s.run(get_workload("bodytrack"), 20, smt=False)
        assert r.fraction_at_least(1) == pytest.approx(1.0)
        assert r.fraction_at_most(20) == pytest.approx(1.0)
        total = r.fraction_at_most(4) + r.fraction_at_least(5)
        assert total == pytest.approx(1.0)

    def test_deterministic(self, model_4b):
        w = get_workload("freqmine")
        a = model_4b.run(w, 8)
        b = model_4b.run(w, 8)
        assert a.roi_seconds == b.roi_seconds

    def test_invalid_thread_count(self, model_4b):
        with pytest.raises(ValueError):
            model_4b.run(get_workload("dedup"), 0)


class TestSerialPhases:
    def test_serial_rate_uses_strongest_core(self):
        w = get_workload("bodytrack")
        big_rate = MultithreadedModel(get_design("1B15s")).serial_rate(w)
        small_rate = MultithreadedModel(get_design("20s")).serial_rate(w)
        assert big_rate > small_rate

    def test_heterogeneous_accelerates_whole_program(self):
        # 1B15s and 20s have similar parallel fabric, but 1B15s runs the
        # serial phases on its big core.
        w = get_workload("bodytrack")
        het = MultithreadedModel(get_design("1B15s")).run(w, 16, smt=False)
        homog = MultithreadedModel(get_design("20s")).run(w, 16, smt=False)
        het_serial = het.total_seconds - het.roi_seconds
        homog_serial = homog.total_seconds - homog.roi_seconds
        assert het_serial < homog_serial


class TestBestRun:
    def test_no_smt_uses_core_count(self, model_4b):
        best = model_4b.best_run(get_workload("blackscholes"), smt=False)
        assert best.n_threads == 4

    def test_smt_sweeps_thread_counts(self, model_4b):
        best = model_4b.best_run(get_workload("blackscholes"), smt=True)
        assert best.n_threads in range(4, 25, 4)
        assert best.n_threads > 4  # SMT should help this scalable app

    def test_scope_validation(self, model_4b):
        with pytest.raises(ValueError, match="scope"):
            model_4b.best_run(get_workload("dedup"), smt=True, scope="partial")

    def test_speedup_definition(self, model_4b):
        w = get_workload("raytrace")
        ref = model_4b.run(w, 4)
        fast = model_4b.run(w, 16)
        assert speedup(fast, ref, "roi") == pytest.approx(
            ref.roi_seconds / fast.roi_seconds
        )

    def test_speedup_scope_validation(self, model_4b):
        w = get_workload("raytrace")
        r = model_4b.run(w, 4)
        with pytest.raises(ValueError, match="scope"):
            speedup(r, r, "both")


class TestAcceleratedCriticalSections:
    def test_acs_helps_heterogeneous_designs(self):
        from repro.workloads.parsec import get_workload

        model = MultithreadedModel(get_design("1B15s"))
        w = get_workload("bodytrack")
        pinned = model.run(w, 16, smt=True, critical_sections="pinned")
        acs = model.run(w, 16, smt=True, critical_sections="accelerated")
        assert acs.total_seconds < pinned.total_seconds

    def test_acs_near_noop_on_homogeneous_big(self):
        from repro.workloads.parsec import get_workload

        model = MultithreadedModel(get_design("4B"))
        w = get_workload("bodytrack")
        pinned = model.run(w, 16, smt=True, critical_sections="pinned")
        acs = model.run(w, 16, smt=True, critical_sections="accelerated")
        # Same core class either way; ACS only adds the migration tax.
        assert acs.total_seconds >= pinned.total_seconds
        assert acs.total_seconds < pinned.total_seconds * 1.05

    def test_invalid_mode_rejected(self):
        from repro.workloads.parsec import get_workload

        model = MultithreadedModel(get_design("4B"))
        with pytest.raises(ValueError, match="critical_sections"):
            model.run(get_workload("dedup"), 8, critical_sections="magic")

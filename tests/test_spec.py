"""The 12 SPEC-like benchmark profiles (Section 3.2 selection)."""

import pytest

from repro.interval.contention import isolated_ips
from repro.microarch.config import BIG, MEDIUM, SMALL
from repro.util import MB
from repro.workloads.spec import SPEC_ORDER, SPEC_PROFILES, all_profiles, get_profile


class TestRegistry:
    def test_twelve_profiles(self):
        assert len(SPEC_PROFILES) == 12
        assert len(SPEC_ORDER) == 12
        assert set(SPEC_ORDER) == set(SPEC_PROFILES)

    def test_get_profile(self):
        assert get_profile("mcf").name == "mcf"

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_profile("gcc")

    def test_all_profiles_ordered(self):
        assert [p.name for p in all_profiles()] == SPEC_ORDER

    def test_paper_named_benchmarks_present(self):
        # The paper names these six explicitly in its analysis.
        for name in ("calculix", "h264ref", "hmmer", "tonto", "libquantum", "mcf"):
            assert name in SPEC_PROFILES


class TestBehaviouralClasses:
    """The selection must span the paper's behaviour classes."""

    def test_streaming_benchmarks_have_high_floors(self):
        # Bandwidth-bound: capacity cannot remove their misses.
        for name in ("libquantum", "lbm", "milc"):
            assert get_profile(name).dcurve.floor_mpki >= 10.0

    def test_compute_benchmarks_have_low_floors(self):
        for name in ("tonto", "calculix", "hmmer", "gamess"):
            assert get_profile(name).dcurve.floor_mpki < 1.0

    def test_mcf_is_cache_sensitive(self):
        mcf = get_profile("mcf").dcurve
        # Steep curve: 8 MB removes most of the 32 KB misses.
        assert mcf.mpki(8 * MB) < mcf.mpki(32 * 1024) / 4

    def test_streaming_benchmarks_expose_mlp(self):
        assert get_profile("libquantum").mlp >= 4.0
        assert get_profile("hmmer").mlp < 2.0

    def test_gobmk_is_branch_bound(self):
        assert get_profile("gobmk").branch_mpki == max(
            p.branch_mpki for p in SPEC_PROFILES.values()
        ) or get_profile("gobmk").branch_mpki >= 8.0


class TestRelativePerformanceSpread:
    """Section 3.2: the 12 benchmarks cover the performance range."""

    def test_big_always_fastest(self):
        for p in all_profiles():
            big = isolated_ips(p, BIG)
            assert big > isolated_ips(p, MEDIUM)
            assert big > isolated_ips(p, SMALL)

    def test_big_to_small_ratio_spread(self):
        ratios = [
            isolated_ips(p, BIG) / isolated_ips(p, SMALL) for p in all_profiles()
        ]
        assert max(ratios) / min(ratios) > 1.5, "selection should span a range"
        assert min(ratios) > 1.5
        assert max(ratios) < 8.0

    def test_medium_between_big_and_small_on_average(self):
        mean_ratio_m = sum(
            isolated_ips(p, BIG) / isolated_ips(p, MEDIUM) for p in all_profiles()
        ) / 12
        mean_ratio_s = sum(
            isolated_ips(p, BIG) / isolated_ips(p, SMALL) for p in all_profiles()
        ) / 12
        assert 1.2 < mean_ratio_m < mean_ratio_s

"""Live telemetry (:mod:`repro.obs.live`) and its serve-tier wiring.

Unit tests cover the bounded primitives (ring tracer, time-series
recorder, rolling histograms, Prometheus rendering, flight records);
server tests boot a real daemon with telemetry enabled and assert the
new ``metrics``/``trace``/``health`` ops, the HTTP exposition thread,
drain-time readiness, the flight recorder, the ``repro top`` dashboard,
and — the invariant everything else hangs off — that ``sweep --server``
stdout stays byte-identical with all of it turned on.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.obs import (
    MetricsRegistry,
    MultiLineDisplay,
    RingTracer,
    RollingHistogram,
    TimeSeriesRecorder,
    configure_logging,
    prometheus_text,
    write_flight_record,
)
from repro.obs.trace import Tracer, validate_trace
from repro.obs.live import tee_instant, tee_span
from repro.serve import ServeClient, ServeConfig, ServerHandle

DESIGN = "2B4m"
OTHER_DESIGN = "4B"

SWEEP_ARGS = [
    "sweep",
    "--design",
    f"{DESIGN},{OTHER_DESIGN}",
    "--kind",
    "homogeneous",
    "--max-threads",
    "2",
]


def make_handle(tmp_path, **overrides):
    config = ServeConfig(
        listen=f"unix:{tmp_path}/serve.sock",
        jobs=overrides.pop("jobs", 1),
        cache_dir=str(tmp_path / "server-cache"),
        slab_size=overrides.pop("slab_size", 8),
        **overrides,
    )
    return ServerHandle(config)


# --------------------------------------------------------------------- #
# ring tracer                                                            #
# --------------------------------------------------------------------- #


class TestRingTracer:
    def test_holds_only_last_cap_events(self):
        tracer = RingTracer(cap=16)
        for i in range(100):
            tracer.instant(f"e{i}")
        assert len(tracer.events) == 16
        assert tracer.dropped == 84
        # the *last* 16 survive, oldest first
        assert tracer.events[0]["name"] == "e84"
        assert tracer.events[-1]["name"] == "e99"

    def test_spans_record_like_the_plain_tracer(self):
        tracer = RingTracer(cap=8)
        with tracer.span("work", arg=1) as span:
            span.set(extra=2)
        event = tracer.events[-1]
        assert event["ph"] == "X"
        assert event["name"] == "work"
        assert event["args"] == {"arg": 1, "extra": 2}

    def test_export_is_valid_chrome_trace(self):
        tracer = RingTracer(cap=8)
        for i in range(20):
            with tracer.span(f"s{i}"):
                pass
        exported = tracer.export()
        validate_trace(exported)  # raises on an invalid trace
        spans = [e for e in exported["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 8
        assert exported["dropped"] == 12

    def test_export_limit_trims_without_consuming(self):
        tracer = RingTracer(cap=32)
        for i in range(10):
            tracer.instant(f"e{i}")
        limited = tracer.export(limit=3)
        names = [e["name"] for e in limited["traceEvents"] if e["ph"] != "M"]
        assert names == ["e7", "e8", "e9"]
        assert len(tracer.events) == 10  # export never drains the ring
        empty = tracer.export(limit=0)
        assert [e for e in empty["traceEvents"] if e["ph"] != "M"] == []

    def test_reset_preserves_drop_count(self):
        tracer = RingTracer(cap=2)
        for i in range(5):
            tracer.instant(f"e{i}")
        assert tracer.dropped == 3
        tracer.reset()
        assert len(tracer.events) == 0
        assert tracer.dropped == 3

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            RingTracer(cap=0)


class TestTee:
    def test_span_fans_out_to_every_enabled_tracer(self):
        ring, plain = RingTracer(cap=8), Tracer()
        plain.enable()
        with tee_span((ring, plain), "both", arg=1) as span:
            span.set(extra=2)
        for tracer in (ring, plain):
            assert tracer.events[-1]["name"] == "both"
            assert tracer.events[-1]["args"] == {"arg": 1, "extra": 2}

    def test_disabled_tracer_is_skipped(self):
        ring, plain = RingTracer(cap=8), Tracer()  # plain stays disabled
        with tee_span((ring, plain), "only-ring"):
            pass
        tee_instant((ring, plain), "marker")
        assert [e["name"] for e in ring.events] == ["only-ring", "marker"]
        assert plain.events == []


# --------------------------------------------------------------------- #
# rolling histogram                                                      #
# --------------------------------------------------------------------- #


class TestRollingHistogram:
    def test_window_bounds_distribution_but_not_count(self):
        hist = RollingHistogram(window=10)
        for value in range(100):
            hist.observe(float(value))
        snap = hist.snapshot()
        assert snap["count"] == 100  # lifetime
        assert snap["window"] == 10  # retained
        assert snap["max"] == 99.0
        assert snap["p50"] >= 90.0  # only the recent window remains

    def test_percentiles_nearest_rank(self):
        hist = RollingHistogram(window=100)
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.percentile(50) == 50.0
        assert hist.percentile(95) == 95.0
        assert hist.percentile(99) == 99.0

    def test_empty_snapshot(self):
        snap = RollingHistogram(window=4).snapshot()
        assert snap == {"count": 0, "window": 0}
        assert RollingHistogram(window=4).percentile(99) == 0.0

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="window"):
            RollingHistogram(window=0)


# --------------------------------------------------------------------- #
# time-series recorder                                                   #
# --------------------------------------------------------------------- #


class TestTimeSeriesRecorder:
    def _registry(self):
        registry = MetricsRegistry()
        registry.enable()
        return registry

    def test_samples_counters_deltas_and_gauges(self):
        registry = self._registry()
        recorder = TimeSeriesRecorder(registry, interval=0.01, capacity=8)
        registry.inc("work", 3)
        registry.set_gauge("depth", 7)
        first = recorder.sample()
        registry.inc("work", 2)
        second = recorder.sample()
        assert first["counters"]["work"] == 3
        assert first["deltas"]["work"] == 3
        assert first["dt"] is None  # no previous tick
        assert second["counters"]["work"] == 5
        assert second["deltas"]["work"] == 2
        assert second["gauges"]["depth"] == 7
        assert second["dt"] is not None

    def test_capacity_bounds_the_ring(self):
        recorder = TimeSeriesRecorder(self._registry(), capacity=4)
        for _ in range(20):
            recorder.sample()
        assert len(recorder) == 4
        assert len(recorder.series()) == 4

    def test_series_window(self):
        registry = self._registry()
        recorder = TimeSeriesRecorder(registry, capacity=8)
        for i in range(6):
            registry.inc("tick")
            recorder.sample()
        assert [s["counters"]["tick"] for s in recorder.series(window=2)] == [5, 6]
        assert recorder.series(window=0) == []
        assert len(recorder.series()) == 6

    def test_pre_sample_hook_runs_each_tick(self):
        registry = self._registry()
        recorder = TimeSeriesRecorder(
            registry, capacity=4, pre_sample=lambda: registry.set_gauge("hook", 1)
        )
        assert recorder.sample()["gauges"]["hook"] == 1

    def test_background_thread_samples_and_stops(self):
        import time as _time

        recorder = TimeSeriesRecorder(self._registry(), interval=0.01, capacity=64)
        recorder.start()
        deadline = _time.monotonic() + 5.0
        while len(recorder) < 2 and _time.monotonic() < deadline:
            _time.sleep(0.01)
        recorder.stop()
        assert len(recorder) >= 2
        settled = len(recorder)
        _time.sleep(0.05)
        assert len(recorder) == settled  # thread actually stopped

    def test_bad_parameters_rejected(self):
        registry = self._registry()
        with pytest.raises(ValueError, match="interval"):
            TimeSeriesRecorder(registry, interval=0)
        with pytest.raises(ValueError, match="capacity"):
            TimeSeriesRecorder(registry, capacity=0)


# --------------------------------------------------------------------- #
# Prometheus exposition                                                  #
# --------------------------------------------------------------------- #


class TestPrometheusText:
    def test_counters_gauges_histograms_render(self):
        registry = MetricsRegistry()
        registry.enable()
        registry.inc("serve.jobs_submitted", 2)
        registry.set_gauge("serve.ready_slabs", 3)
        registry.observe("serve.job_e2e_seconds", 0.25)
        text = prometheus_text(registry.snapshot())
        assert text.endswith("\n")
        assert "# TYPE repro_serve_jobs_submitted_total counter" in text
        assert "repro_serve_jobs_submitted_total 2" in text
        assert "repro_serve_ready_slabs 3" in text
        assert "# TYPE repro_serve_job_e2e_seconds summary" in text
        assert 'repro_serve_job_e2e_seconds{quantile="0.5"} 0.25' in text
        assert "repro_serve_job_e2e_seconds_count 1" in text

    def test_labelled_series_group_under_one_type_line(self):
        snapshot = {
            "counters": {
                "serve.client_points{client=alice}": 5,
                "serve.client_points{client=bob}": 7,
            },
            "gauges": {},
            "histograms": {},
        }
        text = prometheus_text(snapshot)
        assert text.count("# TYPE repro_serve_client_points_total counter") == 1
        assert 'repro_serve_client_points_total{client="alice"} 5' in text
        assert 'repro_serve_client_points_total{client="bob"} 7' in text

    def test_label_values_escaped(self):
        snapshot = {
            "counters": {'x{client=we"ird\\name}': 1},
            "gauges": {},
            "histograms": {},
        }
        text = prometheus_text(snapshot)
        assert 'client="we\\"ird\\\\name"' in text

    def test_extra_gauges_appended(self):
        text = prometheus_text(
            {"counters": {}, "gauges": {}, "histograms": {}},
            extra_gauges={"serve.up": 1, "serve.ready": True},
        )
        assert "repro_serve_up 1" in text
        assert "repro_serve_ready 1" in text


# --------------------------------------------------------------------- #
# flight record / display                                                #
# --------------------------------------------------------------------- #


class TestFlightRecord:
    def test_roundtrips_through_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.enable()
        registry.inc("serve.jobs_submitted")
        tracer = RingTracer(cap=8)
        tracer.instant("boot")
        recorder = TimeSeriesRecorder(registry, capacity=4)
        recorder.sample()
        path = tmp_path / "flight.json"
        payload = write_flight_record(
            path, tracer, recorder, registry,
            health={"ready": True}, reason="test",
        )
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(payload))
        assert loaded["schema_version"] == 1
        assert loaded["reason"] == "test"
        validate_trace(loaded["trace"])  # raises on an invalid trace
        assert loaded["series"][0]["counters"]["serve.jobs_submitted"] == 1
        assert loaded["health"] == {"ready": True}


class TestMultiLineDisplay:
    def test_non_tty_prints_plain_lines(self):
        import io

        stream = io.StringIO()
        display = MultiLineDisplay(stream=stream)
        display.render(["a", "b"])
        assert stream.getvalue() == "a\nb\n"

    def test_enabled_rewrites_previous_frame(self):
        import io

        stream = io.StringIO()
        display = MultiLineDisplay(stream=stream, enabled=True)
        display.render(["one", "two"])
        display.render(["three", "four"])
        out = stream.getvalue()
        assert "\x1b[2A" in out  # cursor moved up over the first frame
        assert out.count("\x1b[2K") == 4  # every line cleared before rewrite


# --------------------------------------------------------------------- #
# serve-tier integration                                                 #
# --------------------------------------------------------------------- #


class TestServerTelemetryOps:
    @pytest.fixture()
    def handle(self, tmp_path):
        with make_handle(tmp_path, record_interval=0.05) as handle:
            yield handle

    def test_metrics_op_returns_snapshot_and_series(self, handle):
        with ServeClient(handle.address, client_name="ops") as client:
            client.point(DESIGN, ["mcf", "tonto"])
            telemetry = client.metrics(window=2)
        counters = telemetry["snapshot"]["counters"]
        assert counters["serve.jobs_submitted"] == 1
        assert counters["serve.jobs_completed"] == 1
        assert counters["serve.client_points_completed{client=ops}"] == 1
        assert "serve.job_e2e_seconds" in telemetry["snapshot"]["histograms"]
        assert len(telemetry["series"]) <= 2
        assert telemetry["record_interval"] == 0.05

    def test_trace_op_returns_recent_spans(self, handle):
        with ServeClient(handle.address, client_name="ops") as client:
            client.point(DESIGN, ["mcf", "tonto"])
            trace = client.trace(limit=50)
        validate_trace(trace)  # raises on an invalid trace
        names = {event["name"] for event in trace["traceEvents"]}
        assert "serve.submit" in names
        assert "serve.finish" in names

    def test_health_op_reports_ready_and_slo(self, handle):
        with ServeClient(handle.address, client_name="ops") as client:
            client.point(DESIGN, ["mcf", "tonto"])
            health = client.health()
        assert health["live"] is True
        assert health["ready"] is True
        assert health["draining"] is False
        assert health["jobs"] == {"done": 1}
        assert health["slo"]["e2e_seconds"]["count"] == 1
        assert set(health["slo"]["e2e_seconds"]) >= {"p50", "p95", "p99"}
        assert health["queue"]["preemptions"] == 0

    def test_stats_op_folds_in_registry_snapshot(self, handle):
        with ServeClient(handle.address, client_name="ops") as client:
            client.point(DESIGN, ["mcf", "tonto"])
            stats = client.stats()
        assert stats["counters"]["jobs_completed"] == 1  # legacy block stays
        assert stats["metrics"]["counters"]["serve.jobs_completed"] == 1

    def test_rings_stay_bounded_under_sustained_load(self, tmp_path):
        with make_handle(
            tmp_path, trace_ring=16, record_window=4, slab_size=4
        ) as handle:
            with ServeClient(handle.address, client_name="load") as client:
                client.sweep([DESIGN, OTHER_DESIGN], "homogeneous", 2)
                for _ in range(10):
                    client.point(DESIGN, ["mcf", "tonto"])
                server = handle.server
                for _ in range(8):
                    server.recorder.sample()
                trace = client.trace()
            assert len(server.ring_tracer.events) <= 16
            assert server.ring_tracer.dropped > 0
            assert len(server.recorder) <= 4
            ring_events = [e for e in trace["traceEvents"] if e["ph"] != "M"]
            assert len(ring_events) <= 16
            assert trace["dropped"] == server.ring_tracer.dropped


class TestHTTPExposition:
    @pytest.fixture()
    def handle(self, tmp_path):
        with make_handle(tmp_path, http_port=0, record_interval=0.05) as handle:
            yield handle

    def _get(self, handle, path):
        port = handle.server.http.port
        return urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=10)

    def test_metrics_endpoint_serves_prometheus_text(self, handle):
        with ServeClient(handle.address, client_name="scrape") as client:
            client.point(DESIGN, ["mcf", "tonto"])
        response = self._get(handle, "/metrics")
        body = response.read().decode("utf-8")
        assert response.status == 200
        assert "text/plain" in response.headers["Content-Type"]
        assert "repro_serve_jobs_submitted_total 1" in body
        assert "repro_serve_up 1" in body
        assert "repro_serve_ready 1" in body
        assert "# TYPE repro_serve_job_e2e_seconds summary" in body

    def test_healthz_endpoint_answers_json(self, handle):
        response = self._get(handle, "/healthz")
        payload = json.loads(response.read())
        assert response.status == 200
        assert payload["ready"] is True
        assert payload["live"] is True

    def test_unknown_path_is_404(self, handle):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(handle, "/nope")
        assert excinfo.value.code == 404

    def test_stats_reports_bound_http_address(self, handle):
        with ServeClient(handle.address, client_name="scrape") as client:
            stats = client.stats()
        assert stats["http_address"] == handle.server.http_address
        assert str(handle.server.http.port) in stats["http_address"]


class TestDrainReadiness:
    def test_health_flips_ready_during_drain(self, tmp_path):
        with make_handle(tmp_path, http_port=0) as handle:
            handle.pause()  # hold dispatch so the job keeps the drain open
            with ServeClient(handle.address, client_name="drain") as client:
                job = client.submit(
                    "point",
                    {"design": DESIGN, "mix": ["mcf", "tonto"], "smt": True},
                )
                client.shutdown()
                health = client.health()
                assert health["ready"] is False
                assert health["draining"] is True
                assert health["live"] is True
                # the HTTP readiness probe answers 503 mid-drain
                port = handle.server.http.port
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(
                        f"http://127.0.0.1:{port}/healthz", timeout=10
                    )
                assert excinfo.value.code == 503
                assert json.loads(excinfo.value.read())["ready"] is False
                handle.resume()
                assert client.wait(job)["state"] == "done"

    def test_flight_record_written_on_drain(self, tmp_path):
        flight = tmp_path / "flight.json"
        with make_handle(tmp_path, flight_path=str(flight)) as handle:
            with ServeClient(handle.address, client_name="flight") as client:
                client.point(DESIGN, ["mcf", "tonto"])
        record = json.loads(flight.read_text())
        assert record["schema_version"] == 1
        assert record["reason"] == "drain"
        validate_trace(record["trace"])  # raises on an invalid trace
        assert record["metrics"]["counters"]["serve.jobs_completed"] == 1
        assert record["series"]  # the drain dump takes a final sample
        assert record["health"]["draining"] is True


class TestByteParityWithTelemetry:
    def test_sweep_stdout_identical_with_full_telemetry_on(
        self, capsys, tmp_path
    ):
        """The PR 3/PR 6 invariant: telemetry writes to stderr, registries
        and HTTP only — never stdout."""
        rc = cli_main(SWEEP_ARGS + ["--cache-dir", str(tmp_path / "local")])
        assert rc == 0
        local = capsys.readouterr().out
        with make_handle(
            tmp_path,
            http_port=0,
            record_interval=0.05,
            flight_path=str(tmp_path / "flight.json"),
        ) as handle:
            rc = cli_main(SWEEP_ARGS + ["--server", handle.address])
            assert rc == 0
            remote = capsys.readouterr().out
        assert remote == local


class TestTopCommand:
    def test_once_json_snapshot(self, capsys, tmp_path):
        with make_handle(tmp_path, record_interval=0.05) as handle:
            with ServeClient(handle.address, client_name="dash") as client:
                client.point(DESIGN, ["mcf", "tonto"])
            rc = cli_main(
                ["top", "--server", handle.address, "--once", "--json"]
            )
        assert rc == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["jobs"] == {"done": 1}
        assert snap["ready"] is True
        assert snap["queue"]["ready"] == 0
        assert snap["throughput"]["points_per_second"] is not None
        assert set(snap["latency"]["e2e_seconds"]) >= {"p50", "p95", "p99"}
        assert snap["clients"]["dash"]["points_completed"] == 1
        assert snap["clients"]["dash"]["share"] == 1.0

    def test_once_renders_dashboard_lines(self, capsys, tmp_path):
        with make_handle(tmp_path) as handle:
            rc = cli_main(["top", "--server", handle.address, "--once"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("repro top — ")
        assert "jobs " in out
        assert "latency " in out

    def test_unreachable_daemon_exits_2(self, capsys, tmp_path):
        rc = cli_main(
            ["top", "--server", f"unix:{tmp_path}/nowhere.sock", "--once"]
        )
        assert rc == 2
        assert capsys.readouterr().out == ""


class TestLifecycleLogging:
    def test_json_lines_for_job_lifecycle(self, capsys, tmp_path):
        configure_logging(level="info", json_mode=True)
        try:
            with make_handle(tmp_path) as handle:
                with ServeClient(handle.address, client_name="logs") as client:
                    client.point(DESIGN, ["mcf", "tonto"])
        finally:
            configure_logging()
        events = [
            json.loads(line)
            for line in capsys.readouterr().err.splitlines()
            if line.startswith("{")
        ]
        by_event = {}
        for event in events:
            by_event.setdefault(event["event"], event)
        submitted = by_event["serve: job submitted"]
        assert submitted["kind"] == "point"
        assert submitted["client"] == "logs"
        assert submitted["points"] == 1
        started = by_event["serve: job started"]
        assert started["queue_wait_seconds"] >= 0
        finished = by_event["serve: job finished"]
        assert finished["state"] == "done"
        assert finished["job"] == submitted["job"]
        assert finished["seconds"] >= 0
        for event in events:
            assert set(event) >= {"ts", "level", "logger", "event"}

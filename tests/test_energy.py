"""Energy accounting and Pareto analysis (with property tests)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.energy import EnergyPoint, best_edp, pareto_front


def point(name, throughput, power):
    return EnergyPoint(design_name=name, throughput=throughput, power_w=power)


class TestEnergyPoint:
    def test_energy_per_work(self):
        p = point("x", 4.0, 40.0)
        assert p.energy_per_work == pytest.approx(10.0)

    def test_edp(self):
        p = point("x", 4.0, 40.0)
        assert p.edp == pytest.approx(2.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            point("x", 0.0, 10.0)
        with pytest.raises(ValueError):
            point("x", 1.0, -1.0)


class TestParetoFront:
    def test_dominated_point_removed(self):
        pts = [point("good", 4.0, 30.0), point("bad", 3.0, 40.0)]
        front = pareto_front(pts, "power")
        assert [p.design_name for p in front] == ["good"]

    def test_tradeoff_points_kept(self):
        pts = [point("fast", 4.0, 40.0), point("frugal", 2.0, 15.0)]
        front = pareto_front(pts, "power")
        assert {p.design_name for p in front} == {"fast", "frugal"}

    def test_front_sorted_by_throughput(self):
        pts = [point("a", 4.0, 40.0), point("b", 2.0, 15.0), point("c", 3.0, 25.0)]
        front = pareto_front(pts, "power")
        xs = [p.throughput for p in front]
        assert xs == sorted(xs)

    def test_energy_cost_axis(self):
        # Lower power but disproportionately lower throughput loses on energy.
        pts = [point("slow", 1.0, 10.0), point("fast", 4.0, 20.0)]
        front = pareto_front(pts, "energy")
        assert [p.design_name for p in front] == ["fast"]

    def test_unknown_cost_rejected(self):
        with pytest.raises(ValueError, match="cost"):
            pareto_front([point("a", 1.0, 1.0)], "area")

    @given(
        data=st.lists(
            st.tuples(st.floats(0.1, 10.0), st.floats(1.0, 100.0)),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=60)
    def test_front_members_are_mutually_nondominated(self, data):
        pts = [point(f"d{i}", t, p) for i, (t, p) in enumerate(data)]
        front = pareto_front(pts, "power")
        assert front  # never empty
        for a in front:
            for b in front:
                if a is b:
                    continue
                dominates = (
                    b.throughput >= a.throughput and b.power_w < a.power_w
                ) or (b.throughput > a.throughput and b.power_w <= a.power_w)
                assert not dominates

    @given(
        data=st.lists(
            st.tuples(st.floats(0.1, 10.0), st.floats(1.0, 100.0)),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=60)
    def test_best_edp_is_global_minimum(self, data):
        pts = [point(f"d{i}", t, p) for i, (t, p) in enumerate(data)]
        winner = best_edp(pts)
        assert all(winner.edp <= p.edp for p in pts)

    def test_best_edp_empty_rejected(self):
        with pytest.raises(ValueError):
            best_edp([])

"""Branch predictor models (gshare, bimodal) and trace-outcome integration."""

import random

import pytest

from repro.microarch.branch import Bimodal, GShare, predictor_for_core
from repro.workloads.spec import get_profile
from repro.workloads.tracegen import TraceGenerator


class TestBimodal:
    def test_learns_always_taken(self):
        p = Bimodal(256)
        for _ in range(10):
            p.update(0x1000, True)
        assert p.predict(0x1000) is True
        assert p.mispredictions <= 1  # at most the cold start

    def test_learns_always_not_taken(self):
        p = Bimodal(256)
        for _ in range(10):
            p.update(0x1000, False)
        assert p.predict(0x1000) is False

    def test_hysteresis_tolerates_single_flip(self):
        p = Bimodal(256)
        for _ in range(10):
            p.update(0x1000, True)
        p.update(0x1000, False)  # one anomaly
        assert p.predict(0x1000) is True  # still predicts taken

    def test_alternating_branch_hurts(self):
        p = Bimodal(256)
        mis = sum(p.update(0x1000, bool(i % 2)) for i in range(100))
        assert mis > 30

    def test_random_branch_near_half(self):
        rng = random.Random(3)
        p = Bimodal(256)
        mis = sum(p.update(0x2000, rng.random() < 0.5) for i in range(2000))
        assert 0.35 < mis / 2000 < 0.6

    def test_biased_branch_low_rate(self):
        rng = random.Random(3)
        p = Bimodal(256)
        mis = sum(p.update(0x2000, rng.random() < 0.98) for i in range(2000))
        assert mis / 2000 < 0.08

    def test_entries_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            Bimodal(1000)

    def test_mispredict_rate_accounting(self):
        p = Bimodal(256)
        p.update(0, True)
        assert p.predictions == 1
        assert 0.0 <= p.mispredict_rate <= 1.0


class TestGShare:
    def test_captures_global_pattern(self):
        # A perfectly periodic pattern is learnable with history, but not by
        # a per-PC counter alone.
        pattern = [True, True, False, False]
        g = GShare(1024, history_bits=4)
        b = Bimodal(1024)
        g_mis = b_mis = 0
        for i in range(4000):
            outcome = pattern[i % 4]
            g_mis += g.update(0x1000, outcome)
            b_mis += b.update(0x1000, outcome)
        assert g_mis < b_mis

    def test_distinct_branches_mostly_independent(self):
        g = GShare(8192)
        for _ in range(50):
            g.update(0x1000, True)
            g.update(0x2000, False)
        # Both directions learned despite interleaving.
        assert g.mispredict_rate < 0.3


class TestPredictorSelection:
    def test_core_front_end_budget(self):
        assert isinstance(predictor_for_core(True), GShare)
        small = predictor_for_core(False)
        assert isinstance(small, Bimodal) and not isinstance(small, GShare)


class TestTraceOutcomes:
    def test_branches_carry_outcomes(self):
        trace = TraceGenerator(get_profile("gobmk")).generate(5000)
        branches = [i for i in trace if i.kind == "branch"]
        assert branches
        assert any(i.taken for i in branches)
        assert any(not i.taken for i in branches)

    def test_predictor_rate_tracks_profile(self):
        # Train a gshare on the synthetic outcome stream; the resulting
        # mispredict MPKI must land near the profile's target.
        for name, tolerance in (("gobmk", 3.0), ("hmmer", 1.0)):
            profile = get_profile(name)
            trace = TraceGenerator(profile).generate(40000)
            g = GShare()
            mis = sum(
                g.update(i.pc, i.taken) for i in trace if i.kind == "branch"
            )
            mpki = mis / len(trace) * 1000
            assert mpki == pytest.approx(profile.branch_mpki, abs=tolerance)

    def test_hard_fraction_monotone_in_target(self):
        hungry = TraceGenerator(get_profile("gobmk"))
        quiet = TraceGenerator(get_profile("hmmer"))
        assert hungry._hard_branch_frac > quiet._hard_branch_frac

"""Unit helpers: conversions and validation."""

import pytest

from repro.util import (
    GHZ,
    KB,
    MB,
    check_fraction,
    check_in,
    check_positive,
    cycles_to_ns,
    ns_to_cycles,
)


class TestUnits:
    def test_kb_mb(self):
        assert KB == 1024
        assert MB == 1024 * 1024

    def test_ns_to_cycles(self):
        assert ns_to_cycles(45.0, 2.66) == pytest.approx(119.7)

    def test_ns_to_cycles_zero_latency(self):
        assert ns_to_cycles(0.0, 2.66) == 0.0

    def test_roundtrip(self):
        assert cycles_to_ns(ns_to_cycles(45.0, 2.66), 2.66) == pytest.approx(45.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="latency_ns"):
            ns_to_cycles(-1.0, 2.66)

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError, match="frequency_ghz"):
            ns_to_cycles(1.0, 0.0)

    def test_cycles_to_ns_negative_rejected(self):
        with pytest.raises(ValueError, match="cycles"):
            cycles_to_ns(-5, 1.0)


class TestValidate:
    def test_check_positive_accepts(self):
        assert check_positive("x", 3) == 3

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0)

    def test_check_positive_allow_zero(self):
        assert check_positive("x", 0, allow_zero=True) == 0
        with pytest.raises(ValueError, match="x must be >= 0"):
            check_positive("x", -1, allow_zero=True)

    def test_check_fraction_bounds(self):
        assert check_fraction("f", 0.0) == 0.0
        assert check_fraction("f", 1.0) == 1.0
        with pytest.raises(ValueError, match="f must be in"):
            check_fraction("f", 1.01)
        with pytest.raises(ValueError):
            check_fraction("f", -0.01)

    def test_check_in(self):
        assert check_in("k", "a", {"a", "b"}) == "a"
        with pytest.raises(ValueError, match="k must be one of"):
            check_in("k", "c", {"a", "b"})

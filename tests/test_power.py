"""McPAT-like power model: calibration anchors and gating behaviour."""

import pytest

from repro.core.designs import ChipDesign, get_design
from repro.core.scheduler import Scheduler
from repro.interval.contention import ChipModel, Placement, ThreadSpec
from repro.power.mcpat import CORE_POWER, ChipPowerModel, CorePowerParams, UNCORE_POWER_W
from repro.workloads.spec import SPEC_ORDER, get_profile


def evaluate(design_name, n_threads, bench="tonto", smt=True):
    design = get_design(design_name)
    placement = Scheduler(design, smt=smt).place([get_profile(bench)] * n_threads)
    return design, ChipModel(design).evaluate(placement, smt=smt)


class TestCorePowerParams:
    def test_active_power_linear_in_utilization(self):
        params = CorePowerParams(static_w=5.0, dynamic_slope_w=2.0)
        assert params.active_power(0.0) == 5.0
        assert params.active_power(1.0) == 7.0
        assert params.peak_power == 7.0

    def test_utilization_validated(self):
        with pytest.raises(ValueError, match="utilization"):
            CorePowerParams(1.0, 1.0).active_power(1.5)

    def test_power_equivalence_one_big_two_medium_five_small(self):
        big = CORE_POWER["big"].peak_power
        medium = CORE_POWER["medium"].peak_power
        small = CORE_POWER["small"].peak_power
        assert 2 * medium == pytest.approx(big, rel=0.15)
        assert 5 * small == pytest.approx(big, rel=0.15)

    def test_variant_cores_cost_more(self):
        assert CORE_POWER["medium_lc"].peak_power > CORE_POWER["medium"].peak_power
        assert CORE_POWER["small_hf"].peak_power > CORE_POWER["small"].peak_power


class TestChipPower:
    def test_gating_saves_static_power(self):
        design, result = evaluate("4B", 1)
        model = ChipPowerModel(design)
        gated = model.power(result, power_gate_idle=True)
        ungated = model.power(result, power_gate_idle=False)
        assert ungated - gated == pytest.approx(3 * CORE_POWER["big"].static_w)

    def test_uncore_always_on(self):
        design, result = evaluate("20s", 1)
        power = ChipPowerModel(design).power(result)
        assert power > UNCORE_POWER_W

    def test_power_rises_with_active_cores(self):
        design = get_design("20s")
        model = ChipPowerModel(design)
        powers = []
        for n in (1, 5, 20):
            _, result = evaluate("20s", n)
            powers.append(model.power(result))
        assert powers[0] < powers[1] < powers[2]

    def test_smt_uplift_smaller_than_core_activation(self):
        # Going 4 -> 8 threads on 4B engages SMT only; on 8m it wakes cores.
        d4, r4 = evaluate("4B", 4)
        d4b, r8 = evaluate("4B", 8)
        m4 = ChipPowerModel(d4)
        smt_uplift = m4.power(r8) - m4.power(r4)
        d8, r8m = evaluate("8m", 8)
        d8a, r4m = evaluate("8m", 4)
        m8 = ChipPowerModel(d8)
        core_uplift = m8.power(r8m) - m8.power(r4m)
        assert smt_uplift < core_uplift

    def test_paper_chip_envelope_at_24_threads(self):
        # All chips land in the paper's 45-50 W envelope (+/- a few watts).
        import statistics as st

        for design_name in ("4B", "8m", "20s"):
            design = get_design(design_name)
            model = ChipPowerModel(design)
            values = []
            for bench in SPEC_ORDER:
                placement = Scheduler(design, smt=True).place(
                    [get_profile(bench)] * 24
                )
                result = ChipModel(design).evaluate(placement)
                values.append(model.power(result))
            assert 38.0 < st.mean(values) < 54.0

    def test_single_big_core_near_17w(self):
        import statistics as st

        design = get_design("4B")
        model = ChipPowerModel(design)
        values = []
        for bench in SPEC_ORDER:
            placement = Scheduler(design, smt=True).place([get_profile(bench)])
            values.append(model.power(ChipModel(design).evaluate(placement)))
        assert st.mean(values) == pytest.approx(17.3, abs=2.5)

    def test_peak_power_is_upper_bound(self):
        design, result = evaluate("4B", 24)
        model = ChipPowerModel(design)
        assert model.power(result, power_gate_idle=False) <= model.peak_power()

    def test_mismatched_result_rejected(self):
        design4, result4 = evaluate("4B", 4)
        model8 = ChipPowerModel(get_design("8m"))
        with pytest.raises(ValueError, match="cores"):
            model8.power(result4)

    def test_unknown_core_type_rejected(self):
        from dataclasses import replace

        from repro.microarch.config import BIG

        weird = ChipDesign(name="w", cores=(replace(BIG, name="huge"),))
        with pytest.raises(KeyError, match="no power calibration"):
            ChipPowerModel(weird)

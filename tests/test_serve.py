"""The serve daemon: protocol, scheduler, coalescing, priorities, quotas,
and byte-identity of ``sweep --server`` against local execution.

Server tests run a real :class:`~repro.serve.server.SweepServer` on a
background thread (unix socket in ``tmp_path``) and talk to it through
the blocking :class:`~repro.serve.client.ServeClient`.  Determinism comes
from the server's dispatch pause hook: with dispatch held, submissions
pile up in the scheduler and the tests can assert on coalescing and
ordering without racing the engine.
"""

import pytest

from repro.cli import main as cli_main
from repro.engine import ResultStore
from repro.obs import METRICS, reset_observability
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServeError,
    ServerHandle,
    parse_address,
)
from repro.serve import protocol
from repro.serve.jobs import Slab, SlabScheduler

DESIGN = "2B4m"
OTHER_DESIGN = "4B"


def make_handle(tmp_path, **overrides):
    config = ServeConfig(
        listen=f"unix:{tmp_path}/serve.sock",
        jobs=overrides.pop("jobs", 1),
        cache_dir=str(tmp_path / "server-cache"),
        slab_size=overrides.pop("slab_size", 8),
        **overrides,
    )
    return ServerHandle(config)


# --------------------------------------------------------------------- #
# protocol unit tests                                                    #
# --------------------------------------------------------------------- #


class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = {"op": "ping", "seq": 7, "value": 0.1 + 0.2}
        assert protocol.decode_line(protocol.encode(message)) == message

    def test_floats_survive_the_wire_exactly(self):
        value = 1.9692405370414199
        decoded = protocol.decode_line(protocol.encode({"v": value}))
        assert decoded["v"] == value  # identical double, not just close

    def test_garbage_line_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_line(b"{not json\n")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_line(b'"a bare string"\n')

    def test_unknown_op_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.validate_request({"op": "explode", "seq": 1})

    def test_submit_validation(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.validate_submit({"kind": "point", "params": {}})
        with pytest.raises(protocol.ProtocolError):
            protocol.validate_submit(
                {"kind": "sweep", "params": {"designs": [], "kind": "homogeneous"}}
            )
        kind, params, priority = protocol.validate_submit(
            {
                "kind": "sweep",
                "params": {
                    "designs": [DESIGN],
                    "kind": "homogeneous",
                    "max_threads": 2,
                },
            }
        )
        assert (kind, priority) == ("sweep", "bulk")

    def test_point_defaults_to_interactive(self):
        _, _, priority = protocol.validate_submit(
            {"kind": "point", "params": {"design": DESIGN, "mix": ["mcf"]}}
        )
        assert priority == "interactive"

    def test_parse_address_forms(self):
        assert parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")
        assert parse_address("/tmp/x.sock") == ("unix", "/tmp/x.sock")
        assert parse_address("./x.sock") == ("unix", "./x.sock")
        assert parse_address("localhost:7777") == ("tcp", ("localhost", 7777))
        assert parse_address(":7777") == ("tcp", ("127.0.0.1", 7777))
        assert parse_address("7777") == ("tcp", ("127.0.0.1", 7777))
        with pytest.raises(ValueError):
            parse_address("not an address")
        with pytest.raises(ValueError):
            parse_address("")


# --------------------------------------------------------------------- #
# scheduler unit tests                                                   #
# --------------------------------------------------------------------- #


def slab(slab_id, client="c", priority=10, job="job-1"):
    return Slab(id=slab_id, job_id=job, client=client, priority=priority)


class TestSlabScheduler:
    def test_priority_order(self):
        scheduler = SlabScheduler(quota=8)
        scheduler.submit(slab(1, priority=10))
        scheduler.submit(slab(2, priority=0))
        scheduler.submit(slab(3, priority=10))
        assert scheduler.next_slab().id == 2  # interactive first
        assert scheduler.next_slab().id == 1  # then bulk, FIFO
        assert scheduler.next_slab().id == 3

    def test_fair_share_alternates_clients(self):
        scheduler = SlabScheduler(quota=8)
        for i in range(1, 4):
            scheduler.submit(slab(i, client="a"))
        scheduler.submit(slab(4, client="b"))
        order = [scheduler.next_slab().id for _ in range(4)]
        # b lands second despite submitting last: a had already consumed
        # an admission slot, so at equal priority b's first slab wins.
        assert order == [1, 4, 2, 3]

    def test_quota_backlogs_instead_of_rejecting(self):
        scheduler = SlabScheduler(quota=2)
        assert scheduler.submit(slab(1)) is True
        assert scheduler.submit(slab(2)) is True
        assert scheduler.submit(slab(3)) is False  # over quota: backlogged
        assert scheduler.ready_count == 2
        assert scheduler.backlog_count == 1
        first = scheduler.next_slab()
        promoted = scheduler.complete(first)
        assert [s.id for s in promoted] == [3]
        assert scheduler.backlog_count == 0

    def test_discard_queued_releases_quota(self):
        scheduler = SlabScheduler(quota=1)
        scheduler.submit(slab(1))
        scheduler.submit(slab(2))  # backlogged
        dropped = scheduler.discard_queued(lambda s: True)
        assert sorted(s.id for s in dropped) == [1, 2]
        assert scheduler.ready_count == 0 and scheduler.backlog_count == 0
        # quota slot was released: a new slab is admitted immediately
        assert scheduler.submit(slab(3)) is True

    def test_discard_with_backlog_does_not_corrupt_ready_heap(self):
        """Regression: dropping an admitted slab used to _release (and
        possibly promote a backlog slab onto the heap) while iterating
        the heap — the sift-up could swap a dropped client's promoted
        slab into an already-visited index, double-releasing one slab
        and silently losing another.  The backlogged slab here is
        *interactive* so its promotion sifts to the heap root."""
        scheduler = SlabScheduler(quota=1)
        scheduler.submit(slab(1, client="a", priority=10))
        scheduler.submit(slab(2, client="a", priority=0))  # backlogged
        scheduler.submit(slab(3, client="b", priority=10))
        scheduler.submit(slab(4, client="c", priority=10))
        dropped = scheduler.discard_queued(lambda s: s.client == "a")
        # Exactly a's two slabs dropped — each once, none lost.
        assert sorted(s.id for s in dropped) == [1, 2]
        assert scheduler.backlog_count == 0
        survivors = []
        while (nxt := scheduler.next_slab()) is not None:
            survivors.append(nxt.id)
        assert sorted(survivors) == [3, 4]
        # a's quota slot was released exactly once: admitted again now.
        assert scheduler.submit(slab(5, client="a")) is True
        assert scheduler.queue_dict()["admitted"] == {"a": 1, "b": 1, "c": 1}

    def test_discard_promotes_surviving_backlog_slab(self):
        """Cancelling one job must still promote the same client's
        backlogged slabs that belong to other jobs."""
        scheduler = SlabScheduler(quota=1)
        scheduler.submit(slab(1, client="a", job="job-1"))
        scheduler.submit(slab(2, client="a", job="job-2"))  # backlogged
        dropped = scheduler.discard_queued(lambda s: s.job_id == "job-1")
        assert [s.id for s in dropped] == [1]
        assert scheduler.ready_count == 1 and scheduler.backlog_count == 0
        assert scheduler.next_slab().id == 2

    def test_rejects_nonpositive_quota(self):
        with pytest.raises(ValueError):
            SlabScheduler(quota=0)


# --------------------------------------------------------------------- #
# server behaviour                                                       #
# --------------------------------------------------------------------- #


class TestServeDaemon:
    def test_point_round_trip_and_stats(self, tmp_path):
        with make_handle(tmp_path) as handle:
            with ServeClient(handle.address) as client:
                assert client.ping()["version"] == protocol.PROTOCOL_VERSION
                payload = client.point(DESIGN, ["mcf", "mcf"])
                assert payload["design_name"] == DESIGN
                assert payload["stp"] > 0
                stats = client.stats()
                assert stats["counters"]["jobs_completed"] == 1
                assert stats["queue"]["quota"] == 4

    def test_concurrent_identical_submits_coalesce_to_one_evaluation(
        self, tmp_path
    ):
        """The tentpole acceptance check: two identical in-flight submits
        share one engine evaluation, observed via the obs counters."""
        METRICS.reset()
        METRICS.enable()
        try:
            with make_handle(tmp_path) as handle:
                handle.pause()
                with ServeClient(handle.address, client_name="a") as ca, \
                        ServeClient(handle.address, client_name="b") as cb:
                    params = {
                        "designs": [DESIGN],
                        "kind": "homogeneous",
                        "max_threads": 2,
                    }
                    job_a = ca.submit("sweep", params)
                    job_b = cb.submit("sweep", params)
                    n_points = ca.poll(job_a)["total_points"]
                    assert cb.poll(job_b)["coalesced_points"] == n_points
                    handle.resume()
                    result_a = ca.wait(job_a)["result"]
                    result_b = cb.wait(job_b)["result"]
                assert result_a == result_b
                server = handle.server
                assert server.counters["points_coalesced"] == n_points
                assert server.counters["points_requested"] == 2 * n_points
                # The engine saw every grid point exactly once.
                assert server.engine.stats.units_total == n_points
                assert server.engine.stats.units_computed == n_points
            assert (
                METRICS.snapshot()["counters"]["serve.points_coalesced"]
                == n_points
            )
        finally:
            reset_observability()

    def test_interactive_point_overtakes_queued_bulk_sweep(self, tmp_path):
        with make_handle(tmp_path, slab_size=4) as handle:
            handle.pause()
            with ServeClient(handle.address, client_name="bulk") as bulk, \
                    ServeClient(handle.address, client_name="fast") as fast:
                sweep_job = bulk.submit(
                    "sweep",
                    {
                        "designs": [DESIGN],
                        "kind": "homogeneous",
                        "max_threads": 2,
                    },
                )
                # A point outside the sweep grid, so it cannot coalesce.
                point_job = fast.submit(
                    "point",
                    {"design": OTHER_DESIGN, "mix": ["mcf"], "smt": False},
                )
                handle.resume()
                fast.wait(point_job)
                bulk.wait(sweep_job)
            # The point finished before the earlier-submitted bulk sweep:
            # its slab jumped the queue at slab granularity.
            order = handle.server.finished_order
            assert order.index(point_job) < order.index(sweep_job)

    def test_client_over_quota_is_queued_not_errored(self, tmp_path):
        with make_handle(tmp_path, slab_size=4, quota=1) as handle:
            handle.pause()
            with ServeClient(handle.address, client_name="greedy") as client:
                job = client.submit(
                    "sweep",
                    {
                        "designs": [DESIGN],
                        "kind": "homogeneous",
                        "max_threads": 2,
                    },
                )
                scheduler = handle.server._scheduler
                # More slabs than the quota admits: the rest are queued in
                # the client's backlog, and nothing was rejected.
                assert scheduler.ready_count == 1
                assert scheduler.backlog_count >= 1
                handle.resume()
                status = client.wait(job)
                assert status["state"] == "done"
                assert status["done_points"] == status["total_points"]

    def test_terminal_jobs_are_evicted_beyond_cap(self, tmp_path):
        """Regression: a long-lived daemon must not retain every finished
        job — _jobs/_done_events/finished_order are capped."""
        with make_handle(tmp_path, max_finished_jobs=2) as handle:
            with ServeClient(handle.address) as client:
                jobs = []
                for mix in (["mcf"], ["tonto"], ["mcf", "mcf"]):
                    job = client.submit("point", {"design": DESIGN, "mix": mix})
                    client.wait(job)
                    jobs.append(job)
                server = handle.server
                assert server.finished_order == jobs[1:]
                assert jobs[0] not in server._jobs
                assert jobs[0] not in server._done_events
                # The evicted job polls as a structured unknown-job error;
                # recent ones still answer.
                with pytest.raises(ServeError) as excinfo:
                    client.poll(jobs[0])
                assert excinfo.value.code == protocol.E_UNKNOWN_JOB
                assert client.poll(jobs[2])["state"] == "done"

    def test_running_figure_reports_zero_of_one_points(self, tmp_path):
        """Regression: a queued/running figure job used to report
        done_points == -1 (remaining=1 with no point keys)."""
        with make_handle(tmp_path) as handle:
            handle.pause()
            with ServeClient(handle.address) as client:
                job = client.submit("figure", {"id": "fig03"})
                status = client.poll(job)
                assert status["total_points"] == 1
                assert status["done_points"] == 0
                handle.resume()
                done = client.wait(job)
                assert done["done_points"] == done["total_points"] == 1

    def test_stream_emits_slab_progress_then_final(self, tmp_path):
        with make_handle(tmp_path, slab_size=4) as handle:
            with ServeClient(handle.address) as client:
                job = client.submit(
                    "sweep",
                    {
                        "designs": [DESIGN],
                        "kind": "homogeneous",
                        "max_threads": 1,
                    },
                )
                events = list(client.stream(job))
        kinds = [e["event"] for e in events]
        assert kinds[-1] == "done"
        assert events[-1]["final"] is True
        assert "slab" in kinds or kinds[0] == "done"
        assert events[-1]["result"]["mean_stp"][DESIGN]["1"] > 0

    def test_cancel_queued_job(self, tmp_path):
        with make_handle(tmp_path) as handle:
            handle.pause()
            with ServeClient(handle.address) as client:
                job = client.submit(
                    "sweep",
                    {
                        "designs": [DESIGN],
                        "kind": "homogeneous",
                        "max_threads": 1,
                    },
                )
                assert client.cancel(job)["state"] == "cancelled"
                assert client.poll(job)["state"] == "cancelled"
                handle.resume()
                # The server stays healthy and can run new work.
                assert client.point(DESIGN, ["mcf"])["stp"] > 0

    def test_wait_timeout_is_an_error_response(self, tmp_path):
        with make_handle(tmp_path) as handle:
            handle.pause()
            with ServeClient(handle.address) as client:
                job = client.submit(
                    "point", {"design": DESIGN, "mix": ["mcf"]}
                )
                with pytest.raises(ServeError) as excinfo:
                    client.wait(job, timeout=0.05)
                assert excinfo.value.code == protocol.E_TIMEOUT
                handle.resume()
                assert client.wait(job)["state"] == "done"

    def test_unknown_job_and_design_are_structured_errors(self, tmp_path):
        with make_handle(tmp_path) as handle:
            with ServeClient(handle.address) as client:
                with pytest.raises(ServeError) as excinfo:
                    client.poll("job-999999")
                assert excinfo.value.code == protocol.E_UNKNOWN_JOB
                with pytest.raises(ServeError) as excinfo:
                    client.submit(
                        "point", {"design": "no-such-design", "mix": ["mcf"]}
                    )
                assert excinfo.value.code == protocol.E_BAD_REQUEST

    def test_drain_finishes_accepted_jobs_and_refuses_new_ones(self, tmp_path):
        handle = make_handle(tmp_path)
        handle.start()
        try:
            with ServeClient(handle.address) as client:
                # A queued job keeps the drain open deterministically.
                handle.pause()
                accepted = client.submit(
                    "point", {"design": DESIGN, "mix": ["mcf"]}
                )
                assert client.shutdown()["draining"] is True
                with pytest.raises(ServeError) as excinfo:
                    client.submit(
                        "point", {"design": DESIGN, "mix": ["tonto"]}
                    )
                assert excinfo.value.code == protocol.E_DRAINING
                # The accepted job still completes before the exit.
                handle.resume()
                assert client.wait(accepted)["state"] == "done"
        finally:
            handle.stop()
        assert not handle._thread.is_alive()

    def test_injected_worker_crash_survives_through_server(self, tmp_path):
        """A killed pool worker inside the daemon heals like in the CLI."""
        from repro.engine import faults

        faults.reset()
        faults.install("kill:benchmark=mcf")
        try:
            # slab_size 4 with jobs 2 → two slab-units per dispatch, so
            # the batch always reaches the worker pool (a single-unit
            # batch would run serially in-parent, where kill faults are
            # suppressed by design).
            with make_handle(tmp_path, jobs=2, slab_size=4) as handle:
                with ServeClient(handle.address) as client:
                    result = client.sweep([DESIGN], "homogeneous", 1)
                assert result["mean_stp"][DESIGN]["1"] > 0
                # The mcf-bearing units killed at least one worker; the
                # engine respawned it individually (no whole-pool
                # teardown) and recovered every point.
                assert handle.server.engine.stats.worker_respawns >= 1
                assert handle.server.engine.stats.broken_pools == 0
                assert handle.server.engine.stats.units_failed == 0
        finally:
            faults.reset()

    def test_warm_pool_is_reused_across_jobs(self, tmp_path):
        """Two back-to-back jobs run on the same worker pids: the pool is
        an engine property, not a per-call accident."""
        with make_handle(tmp_path, jobs=2, slab_size=4) as handle:
            with ServeClient(handle.address) as client:
                client.sweep([DESIGN], "homogeneous", 2)
                first_pids = set(handle.server.engine.executor.pool_pids())
                client.sweep([OTHER_DESIGN], "homogeneous", 2)
                second_pids = set(handle.server.engine.executor.pool_pids())
            assert len(first_pids) == 2
            assert second_pids == first_pids
            assert handle.server.engine.stats.pool_starts == 1
            assert handle.server.engine.stats.pool_reuses >= 1

    def test_respawn_preserves_sibling_workers_and_results(self, tmp_path):
        """A single killed worker is replaced without tearing down its
        siblings, and the daemon's answer matches a fault-free run."""
        from repro.engine import faults

        faults.reset()
        try:
            with make_handle(tmp_path, jobs=2, slab_size=4) as handle:
                with ServeClient(handle.address) as client:
                    clean = client.sweep([DESIGN], "homogeneous", 1)
                    before = set(handle.server.engine.executor.pool_pids())
                    faults.install("kill:benchmark=mcf:times=1")
                    faulted = client.sweep([OTHER_DESIGN], "homogeneous", 1)
                    after = set(handle.server.engine.executor.pool_pids())
                stats = handle.server.engine.stats
                assert stats.worker_respawns == 1
                assert stats.units_failed == 0
                assert faulted["mean_stp"][OTHER_DESIGN]["1"] > 0
                assert clean["mean_stp"][DESIGN]["1"] > 0
                # Exactly one pid changed: the victim; the sibling kept
                # its seat (and its warm caches).
                assert len(after) == 2
                assert len(before & after) == 1
        finally:
            faults.reset()


# --------------------------------------------------------------------- #
# byte-identity against local execution                                  #
# --------------------------------------------------------------------- #

SWEEP_ARGS = [
    "sweep",
    "--design",
    f"{DESIGN},{OTHER_DESIGN}",
    "--kind",
    "homogeneous",
    "--max-threads",
    "2",
]


class TestServerByteIdentity:
    @pytest.fixture()
    def handle(self, tmp_path):
        with make_handle(tmp_path, slab_size=32) as handle:
            yield handle

    def _local(self, capsys, tmp_path, extra=()):
        rc = cli_main(
            SWEEP_ARGS
            + ["--cache-dir", str(tmp_path / "local-cache")]
            + list(extra)
        )
        assert rc == 0
        return capsys.readouterr().out

    def _remote(self, capsys, handle, extra=()):
        rc = cli_main(SWEEP_ARGS + ["--server", handle.address] + list(extra))
        assert rc == 0
        return capsys.readouterr().out

    def test_formatted_output_is_byte_identical(self, capsys, tmp_path, handle):
        local = self._local(capsys, tmp_path)
        remote = self._remote(capsys, handle)
        assert remote == local

    def test_json_output_is_byte_identical(self, capsys, tmp_path, handle):
        local = self._local(capsys, tmp_path, extra=["--json"])
        remote = self._remote(capsys, handle, extra=["--json"])
        assert remote == local

    def test_store_contents_are_identical(self, capsys, tmp_path, handle):
        self._local(capsys, tmp_path)
        self._remote(capsys, handle)
        local_store = ResultStore(tmp_path / "local-cache")
        server_store = handle.server.engine.store
        local_keys = {p.stem for p in local_store.backend.record_paths()}
        server_keys = {p.stem for p in server_store.backend.record_paths()}
        assert local_keys == server_keys and local_keys
        for key in sorted(local_keys):
            assert server_store.get(key) == local_store.get(key)

    def test_progress_stream_path_matches_plain_output(
        self, capsys, tmp_path, handle
    ):
        """``--progress`` rides the stream op (not wait); the final event
        carries done_points, not done — it must not disturb the result
        or the progress state (regression)."""
        local = self._local(capsys, tmp_path)
        remote = self._remote(capsys, handle, extra=["--progress"])
        assert remote == local

    def test_figure_output_is_byte_identical(self, capsys, handle):
        assert cli_main(["figure", "fig03"]) == 0
        local = capsys.readouterr().out
        assert cli_main(["figure", "fig03", "--server", handle.address]) == 0
        remote = capsys.readouterr().out
        assert remote == local

    def test_server_error_paths_exit_2(self, capsys, tmp_path):
        # no daemon listening
        rc = cli_main(
            SWEEP_ARGS + ["--server", f"unix:{tmp_path}/nowhere.sock"]
        )
        assert rc == 2
        assert capsys.readouterr().out == ""


# --------------------------------------------------------------------- #
# explore jobs                                                           #
# --------------------------------------------------------------------- #

EXPLORE_PARAMS = {
    "scenario": "flash-crowd",
    "designs": [DESIGN, OTHER_DESIGN],
    "max_threads": 4,
}

EXPLORE_ARGS = [
    "explore",
    "--scenario",
    "flash-crowd",
    "--design",
    f"{DESIGN},{OTHER_DESIGN}",
    "--max-threads",
    "4",
]


class TestExploreJobs:
    def test_submit_validation(self):
        kind, params, priority = protocol.validate_submit(
            {"kind": "explore", "params": dict(EXPLORE_PARAMS)}
        )
        assert (kind, priority) == ("explore", "bulk")
        with pytest.raises(protocol.ProtocolError, match="scenario"):
            protocol.validate_submit({"kind": "explore", "params": {}})
        with pytest.raises(protocol.ProtocolError, match="designs"):
            protocol.validate_submit(
                {
                    "kind": "explore",
                    "params": {"scenario": "steady", "designs": []},
                }
            )

    def test_explore_round_trip(self, tmp_path):
        with make_handle(tmp_path) as handle:
            with ServeClient(handle.address) as client:
                out = client.explore(dict(EXPLORE_PARAMS))
        assert out["scenario"] == "flash-crowd"
        assert out["winner"] in (DESIGN, OTHER_DESIGN)
        assert out["evaluations"] <= out["full_grid_points"]

    def test_explore_counts_as_one_opaque_point(self, tmp_path):
        with make_handle(tmp_path) as handle:
            with ServeClient(handle.address) as client:
                job = client.submit("explore", dict(EXPLORE_PARAMS))
                status = client.wait(job)
        assert status["total_points"] == 1
        assert status["done_points"] == 1

    def test_bad_explore_params_fail_job(self, tmp_path):
        with make_handle(tmp_path) as handle:
            with ServeClient(handle.address) as client:
                with pytest.raises(ServeError, match="scenario"):
                    client.explore({"scenario": "not-a-scenario"})

    def test_repeat_explore_on_warm_server_is_identical(self, tmp_path):
        """The daemon's long-lived study memoizes points across jobs; the
        second run must still report the same evaluation counts (the
        ledger counts what the search requested, not what was fresh)."""
        with make_handle(tmp_path) as handle:
            with ServeClient(handle.address) as client:
                first = client.explore(dict(EXPLORE_PARAMS))
                second = client.explore(dict(EXPLORE_PARAMS))
        assert first == second

    def test_explore_cli_output_is_byte_identical(
        self, capsys, tmp_path
    ):
        with make_handle(tmp_path) as handle:
            for extra in ([], ["--json"]):
                rc = cli_main(
                    EXPLORE_ARGS
                    + ["--cache-dir", str(tmp_path / "local-cache")]
                    + extra
                )
                assert rc == 0
                local = capsys.readouterr().out
                rc = cli_main(
                    EXPLORE_ARGS + ["--server", handle.address] + extra
                )
                assert rc == 0
                remote = capsys.readouterr().out
                assert remote == local

    def test_unknown_scenario_exits_2_before_submission(self, capsys, tmp_path):
        rc = cli_main(
            [
                "explore",
                "--scenario",
                "not-a-scenario",
                "--server",
                f"unix:{tmp_path}/nowhere.sock",
            ]
        )
        assert rc == 2
        assert capsys.readouterr().out == ""

"""The observability layer: tracing, metrics, logging, progress, atomic IO.

Covers the tentpole guarantees of :mod:`repro.obs`:

* span nesting and Chrome trace-event schema validity (including the
  cross-process merge through the engine's worker marshalling);
* counter/histogram semantics and deterministic snapshots;
* the disabled-by-default no-op fast path;
* fault-injected runs emitting retry spans/events;
* CLI integration (``--trace``/``--metrics``/``--log-json``) with stdout
  kept bit-identical to an uninstrumented run.
"""

import json
import os

import pytest

from repro.cli import main
from repro.core.designs import get_design
from repro.engine import Engine, ParallelExecutor, WorkUnit
from repro.engine import faults
from repro.obs import (
    METRICS,
    TRACER,
    Histogram,
    MetricsRegistry,
    ProgressLine,
    Tracer,
    reset_observability,
    traced,
    validate_trace,
    validate_trace_file,
)
from repro.obs.trace import _NOOP_SPAN
from repro.util.io import atomic_write_json, atomic_write_text

MIX = ("mcf", "tonto", "libquantum", "hmmer")


def unit(design="4B", mix=MIX, smt=True, **kwargs):
    return WorkUnit(design=get_design(design), mix=tuple(mix), smt=smt, **kwargs)


def single_units():
    return [unit(mix=(b,)) for b in MIX]


@pytest.fixture(autouse=True)
def clean_observability():
    """No tracer/metrics/fault state leaks into, or out of, any test."""
    reset_observability()
    faults.reset()
    yield
    reset_observability()
    faults.reset()


# --------------------------------------------------------------------- #
# tracer                                                                 #
# --------------------------------------------------------------------- #


class TestTracer:
    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer()
        span = tracer.span("x", answer=42)
        assert span is _NOOP_SPAN
        assert span.set(more=1) is span
        with span:
            pass
        assert tracer.events == []

    def test_disabled_instant_records_nothing(self):
        tracer = Tracer()
        tracer.instant("tick")
        assert tracer.events == []

    def test_span_records_complete_event(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("work", cat="test", design="4B") as span:
            span.set(iterations=3)
        (event,) = tracer.events
        assert event["ph"] == "X"
        assert event["name"] == "work"
        assert event["cat"] == "test"
        assert event["dur"] >= 0
        assert event["pid"] == os.getpid()
        assert event["args"] == {"design": "4B", "iterations": 3}

    def test_nested_spans_contained_in_parent(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events  # inner exits (and records) first
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3

    def test_exception_annotates_span_and_propagates(self):
        tracer = Tracer()
        tracer.enable()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (event,) = tracer.events
        assert event["args"]["error"] == "ValueError"

    def test_traced_decorator(self):
        calls = []

        @traced(cat="test")
        def helper(x):
            calls.append(x)
            return x * 2

        assert helper(3) == 6  # disabled: no event
        assert TRACER.events == []
        TRACER.enable()
        assert helper(4) == 8
        (event,) = TRACER.events
        assert event["name"].endswith("helper")
        assert calls == [3, 4]

    def test_mark_drain_absorb_round_trip(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("before"):
            pass
        mark = tracer.mark()
        with tracer.span("after"):
            pass
        drained = tracer.drain(mark)
        assert [e["name"] for e in drained] == ["after"]
        assert [e["name"] for e in tracer.events] == ["before"]
        tracer.absorb(drained)
        assert [e["name"] for e in tracer.events] == ["before", "after"]

    def test_export_adds_process_metadata_and_validates(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("a"):
            pass
        tracer.instant("b")
        exported = tracer.export()
        validate_trace(exported)  # must not raise
        meta = [e for e in exported["traceEvents"] if e["ph"] == "M"]
        assert len(meta) == 1
        assert meta[0]["name"] == "process_name"

    def test_write_produces_valid_file(self, tmp_path):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("a"):
            pass
        path = tmp_path / "trace.json"
        count = tracer.write(path)
        # The file carries one extra process_name metadata event per pid.
        assert validate_trace_file(path) == count + 1

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_trace({"events": []})
        good = {"ph": "X", "name": "a", "ts": 0, "dur": 1, "pid": 1, "tid": 1}
        validate_trace({"traceEvents": [good]})
        for corruption in (
            {"ph": "Z"},  # unknown phase
            {"dur": -1},  # negative duration
            {"ts": "soon"},  # non-numeric timestamp
            {"args": [1, 2]},  # args must be a mapping
        ):
            with pytest.raises(ValueError):
                validate_trace({"traceEvents": [{**good, **corruption}]})
        with pytest.raises(ValueError, match="missing"):
            validate_trace({"traceEvents": [{"ph": "X", "name": "a"}]})


# --------------------------------------------------------------------- #
# metrics                                                                #
# --------------------------------------------------------------------- #


class TestMetrics:
    def test_disabled_is_inert(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.set_gauge("b", 1.0)
        registry.observe("c", 2.0)
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_counter_and_gauge_semantics(self):
        registry = MetricsRegistry()
        registry.enable()
        registry.inc("hits")
        registry.inc("hits", 4)
        registry.set_gauge("depth", 2.0)
        registry.set_gauge("depth", 7.0)  # last write wins
        snap = registry.snapshot()
        assert snap["counters"] == {"hits": 5}
        assert snap["gauges"] == {"depth": 7.0}

    def test_histogram_statistics(self):
        hist = Histogram()
        for value in range(1, 101):  # 1..100
            hist.observe(float(value))
        snap = hist.snapshot()
        assert snap["count"] == 100
        assert snap["min"] == 1.0 and snap["max"] == 100.0
        assert snap["mean"] == pytest.approx(50.5)
        assert snap["p50"] == 50.0  # nearest-rank
        assert snap["p95"] == 95.0
        assert snap["sampled"] == 100  # every observation retained

    def test_empty_histogram_snapshot(self):
        assert Histogram().snapshot() == {"count": 0}

    def test_histogram_reservoir_bounds_memory(self):
        hist = Histogram()
        for value in range(Histogram.cap + 500):
            hist.observe(float(value))
        assert hist.count == Histogram.cap + 500  # exact count kept
        assert len(hist.samples) == Histogram.cap
        assert hist.snapshot()["sampled"] == Histogram.cap

    def test_snapshot_is_deterministic(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.enable(), b.enable()
        a.inc("x"), a.inc("y"), a.observe("h", 1.0)
        b.observe("h", 1.0), b.inc("y"), b.inc("x")  # different order
        assert json.dumps(a.snapshot(), sort_keys=True) == json.dumps(
            b.snapshot(), sort_keys=True
        )

    def test_drain_merge_round_trip(self):
        worker = MetricsRegistry()
        worker.enable()
        worker.inc("units", 3)
        worker.set_gauge("load", 0.5)
        for value in (1.0, 2.0, 3.0):
            worker.observe("latency", value)
        raw = worker.drain_raw()
        assert worker.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

        parent = MetricsRegistry()
        parent.enable()
        parent.inc("units", 2)
        parent.observe("latency", 4.0)
        parent.merge_raw(raw)
        snap = parent.snapshot()
        assert snap["counters"]["units"] == 5
        assert snap["gauges"]["load"] == 0.5
        assert snap["histograms"]["latency"]["count"] == 4
        assert snap["histograms"]["latency"]["max"] == 4.0

    def test_drain_raw_empty_returns_none(self):
        registry = MetricsRegistry()
        registry.enable()
        assert registry.drain_raw() is None

    def test_write_snapshot_file(self, tmp_path):
        registry = MetricsRegistry()
        registry.enable()
        registry.inc("a")
        path = tmp_path / "metrics.json"
        registry.write(path)
        assert json.loads(path.read_text())["counters"] == {"a": 1}


# --------------------------------------------------------------------- #
# no-op overhead path                                                    #
# --------------------------------------------------------------------- #


class TestDisabledIsFree:
    def test_engine_run_leaves_no_observability_state(self):
        results = Engine(jobs=1).evaluate(single_units())
        assert len(results) == len(MIX)
        assert TRACER.events == []
        assert METRICS.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_instrumented_run_is_bit_identical(self):
        plain = Engine(jobs=1).evaluate(single_units())
        TRACER.enable()
        METRICS.enable()
        instrumented = Engine(jobs=1).evaluate(single_units())
        assert plain == instrumented  # dataclass equality: exact floats
        assert TRACER.events  # and the run actually traced


# --------------------------------------------------------------------- #
# cross-process marshalling + fault-injected spans                       #
# --------------------------------------------------------------------- #


class TestEngineIntegration:
    def test_worker_spans_merge_into_parent(self):
        from repro.engine.tasks import clear_worker_studies

        clear_worker_studies()  # forked workers must not inherit warm memos
        TRACER.enable()
        METRICS.enable()
        Engine(jobs=2).evaluate(single_units())
        unit_events = [e for e in TRACER.events if e.get("cat") == "unit"]
        assert unit_events, "worker spans never reached the parent"
        worker_pids = {e["pid"] for e in unit_events}
        assert os.getpid() not in worker_pids
        # Sub-spans from inside the workers made the trip too.
        names = {e["name"] for e in TRACER.events}
        assert {"interval.model", "engine.compute", "unit.evaluate"} <= names
        # Worker metrics merged back into the parent registry.
        snap = METRICS.snapshot()
        assert snap["counters"]["interval.solves"] >= len(MIX)
        assert snap["counters"]["engine.units_computed"] == len(MIX)
        validate_trace(TRACER.export())

    def test_retries_emit_spans_and_metrics(self):
        faults.install("raise:benchmark=mcf:times=1")
        TRACER.enable()
        METRICS.enable()
        (outcome,) = ParallelExecutor(jobs=1, retries=1, backoff=0.0).map(
            [unit(mix=("mcf",))]
        )
        assert outcome.ok and outcome.attempts == 2
        retry_events = [e for e in TRACER.events if e["name"] == "unit.retry"]
        assert len(retry_events) == 1
        assert retry_events[0]["args"]["error"] == "InjectedFault"
        failed_spans = [
            e
            for e in TRACER.events
            if e["name"] == "unit.evaluate" and "error" in e.get("args", {})
        ]
        assert len(failed_spans) == 1
        assert METRICS.snapshot()["counters"]["engine.unit_retries"] == 1

    def test_run_summary_includes_metrics_when_enabled(self):
        METRICS.enable()
        engine = Engine(jobs=1)
        engine.evaluate(single_units())
        summary = engine.run_summary()
        assert "metrics" in summary
        assert summary["metrics"]["counters"]["engine.units_total"] == len(MIX)
        assert "phase_shares" in summary
        assert summary["unit_seconds"]["count"] == len(MIX)


# --------------------------------------------------------------------- #
# CLI                                                                    #
# --------------------------------------------------------------------- #


class TestCliObservability:
    SWEEP = ["sweep", "--design", "8m", "--max-threads", "2", "--no-cache",
             "--no-progress"]

    def test_trace_and_metrics_files(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        argv = self.SWEEP + ["--json", "--trace", str(trace),
                             "--metrics", str(metrics)]
        assert main(argv) == 0
        instrumented = capsys.readouterr().out
        assert validate_trace_file(trace) > 0
        snap = json.loads(metrics.read_text())
        assert snap["counters"]["engine.units_total"] > 0
        # Collectors are torn down after the command.
        assert not TRACER.enabled and not METRICS.enabled
        # Uninstrumented stdout is bit-identical.
        assert main(self.SWEEP + ["--json"]) == 0
        assert capsys.readouterr().out == instrumented

    def test_log_json_lines_parse(self, capsys):
        assert main(["--log-json"] + self.SWEEP) == 0
        err = capsys.readouterr().err
        records = [json.loads(line) for line in err.splitlines() if line]
        assert records
        assert all({"ts", "level", "event"} <= set(r) for r in records)

    def test_log_level_error_silences_status(self, capsys):
        assert main(["--log-level", "error"] + self.SWEEP) == 0
        captured = capsys.readouterr()
        assert "engine:" not in captured.err
        assert captured.out  # the product output is untouched

    def test_cache_stats_surfaces_latency_and_metrics(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = ["sweep", "--design", "8m", "--max-threads", "2",
                "--cache-dir", cache_dir, "--no-progress",
                "--metrics", str(tmp_path / "m.json")]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "unit latency" in out and "p95" in out
        assert "phases" in out
        assert "metrics" in out


# --------------------------------------------------------------------- #
# progress line                                                          #
# --------------------------------------------------------------------- #


class TestProgressLine:
    def test_disabled_writes_nothing(self, capsys):
        line = ProgressLine("sweep", enabled=False)
        line.begin(4)
        line.update(2)
        line.finish()
        assert capsys.readouterr().err == ""

    def test_enabled_renders_and_clears(self, capsys):
        line = ProgressLine("sweep", enabled=True, min_interval_s=0.0)
        line.begin(4)
        line.update(2)
        line.finish()
        err = capsys.readouterr().err
        assert "sweep: 2/4" in err
        assert err.endswith("\x1b[2K")  # the line is cleared at the end

    def test_auto_mode_follows_tty(self):
        assert ProgressLine("x").enabled in (True, False)  # never raises


# --------------------------------------------------------------------- #
# atomic writes                                                          #
# --------------------------------------------------------------------- #


class TestAtomicWrites:
    def test_text_write_leaves_no_debris(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "hello")
        assert target.read_text() == "hello"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_json_write_is_sorted_with_trailing_newline(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(target, {"b": 1, "a": 2})
        text = target.read_text()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')

    def test_failed_write_preserves_target(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(target, {"ok": True})
        with pytest.raises(TypeError):
            atomic_write_json(target, {"bad": object()})
        assert json.loads(target.read_text()) == {"ok": True}
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

#!/usr/bin/env python3
"""Scenario: choosing a server chip for an underutilized datacenter.

Barroso & Holzle observed that datacenter servers run at 10-50 % utilization
most of the time.  Given a measured utilization histogram (here: the
paper's datacenter distribution, plus a custom one from "our" fleet), which
of the nine power-equivalent chips maximizes throughput, and what does each
cost in energy per unit of work?

Run:  python examples/datacenter_consolidation.py
"""

from repro import (
    DESIGN_ORDER,
    DesignSpaceStudy,
    ThreadCountDistribution,
    datacenter,
)
from repro.power.energy import EnergyPoint, best_edp, pareto_front

def fleet_distribution() -> ThreadCountDistribution:
    """A custom fleet: bursty — mostly idle, occasionally fully loaded."""
    weights = [8.0, 4.0, 2.0, 1.5] + [1.0] * 16 + [2.0, 3.0, 4.0, 6.0]
    return ThreadCountDistribution.from_weights("bursty-fleet", weights)

def main() -> None:
    study = DesignSpaceStudy()
    for dist in (datacenter(24), fleet_distribution()):
        print(f"=== distribution: {dist.name}")
        points = []
        for name in DESIGN_ORDER:
            stp = study.aggregate_stp(name, "heterogeneous", dist, smt=True)
            power = study.aggregate_power(name, "heterogeneous", dist, smt=True)
            points.append(EnergyPoint(name, stp, power))
        points.sort(key=lambda p: -p.throughput)
        print(f"{'design':8s}{'avg STP':>9s}{'power W':>9s}{'J/work':>9s}{'EDP':>9s}")
        for p in points:
            print(
                f"{p.design_name:8s}{p.throughput:9.2f}{p.power_w:9.1f}"
                f"{p.energy_per_work:9.2f}{p.edp:9.2f}"
            )
        frontier = [p.design_name for p in pareto_front(points, cost="energy")]
        winner = best_edp(points)
        print(f"energy-performance Pareto frontier: {frontier}")
        print(f"recommendation (min EDP): {winner.design_name}\n")

if __name__ == "__main__":
    main()

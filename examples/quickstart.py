#!/usr/bin/env python3
"""Quickstart: evaluate multi-core designs under varying thread counts.

Walks the library's core loop in a few lines: pick designs, build a
workload mix, evaluate performance/power, and compare designs under a
thread-count distribution — the question the paper asks.

Run:  python examples/quickstart.py
"""

from repro import (
    DESIGN_ORDER,
    ChipPowerModel,
    DesignSpaceStudy,
    datacenter,
    get_design,
    uniform,
)

def main() -> None:
    study = DesignSpaceStudy()

    # --- one workload mix on one design --------------------------------
    # Four memory-hungry and four compute-hungry programs on the 4-big-core
    # SMT chip: the scheduler co-schedules them symbiotically.
    mix = ["mcf", "mcf", "libquantum", "omnetpp", "hmmer", "tonto", "calculix", "gamess"]
    result = study.evaluate_mix("4B", mix, smt=True)
    print(f"mix of 8 on 4B:  STP={result.stp:.2f}  ANTT={result.antt:.2f}  "
          f"power={result.power_gated_w:.1f} W  bus={result.bus_utilization:.0%}")

    # --- throughput vs thread count (Figure 3's question) --------------
    print("\nSTP vs active thread count (heterogeneous mixes):")
    counts = [1, 4, 8, 16, 24]
    header = "design  " + "".join(f"{n:>7d}" for n in counts)
    print(header)
    for design in ("4B", "8m", "20s", "3B5s"):
        curve = study.throughput_curve(design, "heterogeneous", counts)
        print(f"{design:7s}" + "".join(f"{curve[n]:7.2f}" for n in counts))

    # --- which chip wins when thread counts vary? ----------------------
    for dist in (uniform(24), datacenter(24)):
        best, value = study.best_design("heterogeneous", dist, smt=True)
        print(f"\nbest design under {dist.name}: {best} (avg STP {value:.2f})")

    # --- power envelope check ------------------------------------------
    print("\npeak chip power by design (equal envelope by construction):")
    for name in DESIGN_ORDER[:3]:
        model = ChipPowerModel(get_design(name))
        print(f"  {name:4s} {model.peak_power():.1f} W")

if __name__ == "__main__":
    main()

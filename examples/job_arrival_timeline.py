#!/usr/bin/env python3
"""Scenario: driving the design-space study with a job arrival process.

Instead of assuming a thread-count distribution, synthesize one from first
principles: jobs arrive at a server as a Poisson process and run for
exponential service times ("jobs come and go" — Section 2.1 of the paper).
The resulting active-thread timeline converts into a distribution that
plugs straight into the study, letting us ask how the best chip changes as
the offered load grows.

Run:  python examples/job_arrival_timeline.py
"""

from repro import DesignSpaceStudy, simulate_job_arrivals

def main() -> None:
    study = DesignSpaceStudy()
    print(f"{'load':>6s} {'mean thr':>9s}  best design (avg STP)   4B gap")
    for arrival_rate in (0.02, 0.06, 0.12, 0.20):
        timeline = simulate_job_arrivals(
            arrival_rate=arrival_rate,
            mean_service_time=100.0,
            max_threads=24,
            horizon=50_000.0,
            seed=7,
        )
        dist = timeline.to_distribution(max_threads=24)
        best, value = study.best_design("heterogeneous", dist, smt=True)
        four_b = study.aggregate_stp("4B", "heterogeneous", dist, smt=True)
        gap = four_b / value - 1
        print(
            f"{arrival_rate:6.2f} {timeline.mean_threads:9.1f}  "
            f"{best:6s} ({value:5.2f})        {gap:+.1%}"
        )
    print(
        "\nEven as offered load pushes the machine towards full occupancy,\n"
        "the 4-big-SMT-cores design stays at or near the top — the paper's\n"
        "flexibility argument, derived here from a queueing process."
    )

if __name__ == "__main__":
    main()

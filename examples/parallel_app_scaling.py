#!/usr/bin/env python3
"""Scenario: where should a parallel application run, and with how many threads?

Takes two PARSEC-like applications — one that scales (blackscholes) and one
dominated by serial sections (bodytrack) — and sweeps thread counts on
three chips.  Also prints the active-thread histogram that motivates the
whole paper (Figure 1): even "parallel" apps spend much of their time with
few threads runnable.

Run:  python examples/parallel_app_scaling.py
"""

from repro import get_design
from repro.core.multithreaded import MultithreadedModel, speedup
from repro.workloads.parsec import get_workload

DESIGNS = ("4B", "8m", "20s")

def main() -> None:
    reference_model = MultithreadedModel(get_design("4B"))
    for app_name in ("blackscholes", "bodytrack"):
        app = get_workload(app_name)
        ref = reference_model.run(app, 4, smt=True)
        print(f"=== {app_name} (speedup vs 4 threads on 4B, ROI)")
        counts = [4, 8, 12, 16, 20, 24]
        print("design " + "".join(f"{n:>7d}" for n in counts))
        for design_name in DESIGNS:
            model = MultithreadedModel(get_design(design_name))
            row = []
            for n in counts:
                if n <= model.design.max_threads:
                    run = model.run(app, n, smt=True)
                    row.append(f"{speedup(run, ref, 'roi'):7.2f}")
                else:
                    row.append("      -")
            print(f"{design_name:7s}" + "".join(row))

        # The Figure 1 view: how many threads are actually active?
        run20 = MultithreadedModel(get_design("20s")).run(app, 20, smt=False)
        print("active-thread histogram on 20 cores (time fractions):")
        for k in sorted(run20.active_thread_fractions):
            frac = run20.active_thread_fractions[k]
            if frac >= 0.01:
                print(f"  {k:2d} threads: {'#' * int(frac * 50):50s} {frac:.2f}")
        print()

if __name__ == "__main__":
    main()

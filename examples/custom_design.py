#!/usr/bin/env python3
"""Scenario: evaluating your own core, workload and chip design.

Everything in the study is pluggable: define a new core type (here a
"huge" 6-wide core), a custom chip mixing it with stock small cores, and a
custom workload profile, then run them through the same machinery as the
paper's designs.

Run:  python examples/custom_design.py
"""

from dataclasses import replace

from repro import (
    BIG,
    SMALL,
    BenchmarkProfile,
    CacheConfig,
    ChipDesign,
    ChipModel,
    MissRateCurve,
    Placement,
    Scheduler,
    ThreadSpec,
    isolated_ips,
)
from repro.power.mcpat import CORE_POWER, CorePowerParams
from repro.util import KB

def main() -> None:
    # --- a 6-wide, 256-entry-ROB core ----------------------------------
    huge = replace(
        BIG,
        name="huge",
        width=6,
        rob_size=256,
        l1d=CacheConfig(64 * KB, 8, latency_cycles=3),
        l1i=CacheConfig(64 * KB, 8, latency_cycles=3),
        l2=CacheConfig(512 * KB, 8, latency_cycles=14),
        max_smt_contexts=8,
        power_weight=2.0,  # twice a big core's budget
    )
    CORE_POWER["huge"] = CorePowerParams(static_w=12.0, dynamic_slope_w=10.0)

    # --- a custom power-equivalent chip: 1 huge + 10 small -------------
    design = ChipDesign(name="1H10s", cores=(huge,) + (SMALL,) * 10)
    print(f"design {design.name}: {design.num_cores} cores, "
          f"{design.max_threads} hardware threads, "
          f"{design.power_budget_weight:.1f} big-core equivalents")

    # --- a custom workload profile --------------------------------------
    genomics = BenchmarkProfile(
        name="genomics-kernel",
        ilp=3.0,
        ilp_inorder=1.1,
        mem_frac=0.33,
        branch_frac=0.09,
        branch_mpki=1.2,
        dcurve=MissRateCurve(mpki_ref=12.0, alpha=0.3, floor_mpki=6.0),
        icurve=MissRateCurve(mpki_ref=0.3, alpha=0.5, floor_mpki=0.02),
        mlp=4.0,
    )
    print(f"isolated on huge core: {isolated_ips(genomics, huge) / 1e9:.2f} Ginstr/s")
    print(f"isolated on small core: {isolated_ips(genomics, SMALL) / 1e9:.2f} Ginstr/s")

    # --- schedule 12 copies and evaluate the chip ----------------------
    placement = Scheduler(design, smt=True).place([genomics] * 12)
    result = ChipModel(design).evaluate(placement)
    print(f"12 copies on {design.name}: total {result.total_ips / 1e9:.1f} Ginstr/s, "
          f"bus utilization {result.bus_utilization:.0%}, "
          f"memory latency x{result.mem_latency_inflation:.2f}")
    by_core = {}
    for t in result.threads:
        by_core.setdefault(t.core_index, []).append(t.ips / 1e9)
    for idx in sorted(by_core):
        core_name = design.cores[idx].name
        rates = ", ".join(f"{r:.2f}" for r in by_core[idx])
        print(f"  core {idx} ({core_name}): {rates} Ginstr/s")

if __name__ == "__main__":
    main()

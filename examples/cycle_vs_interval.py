#!/usr/bin/env python3
"""Validation demo: the two performance-model tiers side by side.

The design-space study runs on the fast interval model (as the paper ran
Sniper); the cycle-level simulator executes synthetic instruction traces
through real pipeline, cache, DRAM-bank and bus state.  This example runs
both on the same benchmarks and prints their agreement — and then shows a
genuinely mechanistic experiment only the cycle tier can do: watching DRAM
latency climb as co-runners pile onto the memory bus.

Run:  python examples/cycle_vs_interval.py   (takes ~30 s: real simulation)
"""

from repro import get_design, get_profile
from repro.analysis.validation import cross_validate
from repro.microarch.config import BIG
from repro.sim import MulticoreSimulator, ThreadSim
from repro.workloads.spec import all_profiles

def main() -> None:
    print("single-thread IPC on the big core, both tiers:")
    cv = cross_validate(all_profiles(), BIG, instructions=15_000)
    print(f"{'benchmark':12s}{'interval':>10s}{'cycle':>8s}{'ratio':>7s}")
    for name in sorted(cv.interval_ipc):
        print(
            f"{name:12s}{cv.interval_ipc[name]:10.2f}"
            f"{cv.cycle_ipc[name]:8.2f}{cv.ratios[name]:7.2f}"
        )
    print(f"Spearman rank correlation: {cv.rank_correlation:.3f}\n")

    print("cycle-level bus contention: libquantum co-runners on 4B")
    sim = MulticoreSimulator(get_design("4B"))
    lq = get_profile("libquantum")
    for n in (1, 2, 4):
        threads = [ThreadSim(lq, core_index=i, seed=11 + i) for i in range(n)]
        result = sim.run(threads, instructions_per_thread=8000)
        per_thread = result.total_ipc / n
        print(
            f"  {n} thread(s): mean DRAM latency "
            f"{result.dram_mean_latency_ns:6.1f} ns, "
            f"IPC/thread {per_thread:.2f}"
        )

if __name__ == "__main__":
    main()

"""Tracked performance benchmarks for the cycle-level and interval tiers.

``python -m repro bench`` times a fixed set of scenarios and writes one
report per tier — ``BENCH_cycle.json`` for the cycle-level simulator
(trace generation, single-core OoO and in-order runs, an SMT run, an
8-core shared-LLC run, and a live-sampled chip run whose accuracy is
gated alongside its speed), ``BENCH_interval.json`` for the interval-model
tier (per-point evaluation, the 963-point design-space slab, and the raw
chip solver) and ``BENCH_serve.json`` for the resident daemon
(submit/poll round-trip latency and warm-cache burst throughput through
a real unix socket) — each with throughput per scenario plus the speedup
against the recorded seed baseline (``benchmarks/perf/baseline.json``).  Every
future PR therefore has a perf trajectory to move: CI re-runs the fast
scenarios and fails when a scenario regresses by more than 25 %.

The report keys are ``instructions``/``instructions_per_second`` for
every tier (schema compatibility with the recorded baselines); for the
interval scenarios the counted unit is an evaluated grid *point* or a
chip *solve* rather than a simulated instruction — the ``unit`` field on
each entry names it.

Timing methodology: simulation scenarios time only the lockstep execute
loop (:meth:`MulticoreSimulator.execute`), not trace generation or cache
warming, so the number tracks the simulator hot path; ``tracegen`` times
the generator separately.  Each scenario runs ``--repeat`` times and the
best (minimum) wall time wins, which is the standard way to reject
scheduler noise on shared machines.
"""

import cProfile
import io
import json
import os
import pstats
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import get_logger
from repro.util.io import atomic_write_json

_LOG = get_logger("bench")

#: Default location of the recorded seed baseline, relative to the cwd
#: (the repo checkout); override with ``--baseline`` or
#: ``$REPRO_BENCH_BASELINE``.
DEFAULT_BASELINE = os.path.join("benchmarks", "perf", "baseline.json")

#: Scenarios cheap enough for CI's perf gate (skips the long SMT run and
#: the full design-space slab).
FAST_SCENARIOS = (
    "tracegen",
    "ooo_single",
    "inorder_single",
    "8core_llc",
    "live_sampling",
    "interval_point",
    "interval_solver",
    "engine_dispatch",
    "serve_roundtrip",
)

_SCHEMA_VERSION = 1

#: Budget for the relative throughput cost of live telemetry on the
#: coalesced-burst scenario (recorder + HTTP exposition vs none).
MAX_TELEMETRY_OVERHEAD = 0.02

#: Budget for the live-sampling estimator's chip-CPI error against a full
#: run on the ``live_sampling`` scenario's mix (the accuracy side of the
#: speed/accuracy trade, gated in the same job as the throughput floors).
MAX_LIVE_SAMPLING_ERROR = 0.03

#: Floor for the warm persistent pool's advantage over a per-call pool on
#: the ``engine_dispatch`` scenario (the warm-pool engine's contract).
MIN_DISPATCH_SPEEDUP = 2.0


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one timed scenario.

    ``instructions`` is the generic work counter; ``unit`` names what it
    counts ("instr" for the cycle tier, "points"/"solves" for interval
    scenarios).  ``extras`` carries scenario-specific report fields (the
    serve scenarios attach queue-wait/e2e latency percentiles read from
    the daemon's live histograms).
    """

    name: str
    instructions: int
    seconds: float
    repeats: int
    unit: str = "instr"
    extras: Optional[Dict] = None

    @property
    def instructions_per_second(self) -> float:
        return self.instructions / self.seconds if self.seconds else 0.0


# --------------------------------------------------------------------- #
# scenario definitions                                                   #
# --------------------------------------------------------------------- #
#
# Each scenario factory does its setup up front and returns
# ``(instructions, run)`` where ``run`` is a zero-argument body that
# returns the measured wall seconds (the body decides what is timed, so
# simulation scenarios can rebuild cold state per repeat without charging
# setup to the clock).  Budgets are sized so the suite finishes fast.
# A factory may instead return ``(instructions, run, extras)`` where
# ``extras`` is a zero-argument callable run once after all repeats; its
# dict is merged into the scenario's report entry (serve latency
# percentiles ride along this way).


def _scenario_tracegen() -> Tuple[int, Callable[[], float]]:
    """Synthetic trace generation throughput (the workload generator)."""
    from repro.workloads.spec import get_profile
    from repro.workloads.tracegen import TraceGenerator

    profile = get_profile("mcf")
    n = 150_000

    def run() -> float:
        start = time.perf_counter()
        TraceGenerator(profile, seed=13).generate(n)
        return time.perf_counter() - start

    return n, run


def _sim_scenario(
    design, threads, instructions_per_thread: int
) -> Tuple[int, Callable[[], float]]:
    """Time the lockstep execute loop of one prepared simulation.

    Trace generation and cache warming happen outside the clock (they are
    tracked by the ``tracegen`` scenario); each repeat re-prepares so the
    timed loop always starts from identical cold simulator state.
    """
    from repro.sim.multicore import MulticoreSimulator

    sim = MulticoreSimulator(design)
    warmup = instructions_per_thread // 2
    # Every dispatched instruction (warmup prefix included) is simulator
    # work, so the throughput metric counts them all.
    total = len(threads) * (instructions_per_thread + warmup)

    def run() -> float:
        hierarchy, cores = sim.prepare(
            threads, instructions_per_thread, warmup_instructions=warmup
        )
        start = time.perf_counter()
        sim.execute(hierarchy, cores)
        return time.perf_counter() - start

    return total, run


def _scenario_ooo_single() -> Tuple[int, Callable[[], None]]:
    """One big out-of-order core running a mixed compute/memory profile."""
    from repro.core.designs import ChipDesign
    from repro.microarch.config import BIG
    from repro.sim.multicore import ThreadSim
    from repro.workloads.spec import get_profile

    design = ChipDesign(name="bench-1B", cores=(BIG,))
    threads = [ThreadSim(get_profile("tonto"), core_index=0)]
    return _sim_scenario(design, threads, 20_000)


def _scenario_inorder_single() -> Tuple[int, Callable[[], None]]:
    """One small in-order core on a memory-bound profile (stall-heavy)."""
    from repro.core.designs import ChipDesign
    from repro.microarch.config import SMALL
    from repro.sim.multicore import ThreadSim
    from repro.workloads.spec import get_profile

    design = ChipDesign(name="bench-1s", cores=(SMALL,))
    threads = [ThreadSim(get_profile("mcf"), core_index=0)]
    return _sim_scenario(design, threads, 20_000)


def _scenario_smt4() -> Tuple[int, Callable[[], None]]:
    """Four SMT contexts sharing one big core (fetch/ROB contention)."""
    from repro.core.designs import ChipDesign
    from repro.microarch.config import BIG
    from repro.sim.multicore import ThreadSim
    from repro.workloads.spec import get_profile

    design = ChipDesign(name="bench-1B", cores=(BIG,))
    threads = [
        ThreadSim(get_profile(name), core_index=0)
        for name in ("mcf", "libquantum", "tonto", "hmmer")
    ]
    return _sim_scenario(design, threads, 10_000)


def _scenario_8core_llc() -> Tuple[int, Callable[[], None]]:
    """Eight medium cores contending for the shared LLC, DRAM and bus."""
    from repro.core.designs import get_design
    from repro.sim.multicore import ThreadSim
    from repro.workloads.spec import get_profile

    design = get_design("8m")
    mix = ("mcf", "libquantum", "milc", "lbm", "omnetpp", "astar", "mcf", "hmmer")
    threads = [
        ThreadSim(get_profile(name), core_index=i) for i, name in enumerate(mix)
    ]
    return _sim_scenario(design, threads, 8_000)


def _scenario_live_sampling() -> Tuple[int, Callable[[], float], Callable]:
    """Adaptive live-sampled chip run, timed against its accuracy.

    Runs the most sampling-hostile validation mix (four memory-bound
    workloads on 3B2m — shared-LLC and bus contention everywhere the
    estimator has to extrapolate) in live mode.  Throughput counts every
    *virtual* instruction covered, detailed or skipped, so the number
    reflects what sampling buys; the ``cpi_error`` extra re-runs the mix
    in full detail once and reports the chip-CPI disagreement, which
    :func:`check_regressions` holds under
    :data:`MAX_LIVE_SAMPLING_ERROR` in the same job that gates
    throughput — a speedup bought with accuracy fails the gate.
    """
    from repro.core.designs import get_design
    from repro.core.scheduler import Scheduler
    from repro.sim.multicore import MulticoreSimulator, ThreadSim
    from repro.sim.sampling import execute_sampled_live
    from repro.workloads.spec import get_profile

    design = get_design("3B2m")
    mix = ("mcf", "libquantum", "milc", "lbm")
    placement = Scheduler(design, smt=True).place(
        [get_profile(name) for name in mix]
    )

    def threads():
        return [
            ThreadSim(spec.profile, core_index=core_index, seed=11 + slot)
            for core_index, specs in enumerate(placement.core_threads)
            for slot, spec in enumerate(specs)
        ]

    instructions = 10_000
    warmup = instructions // 2
    sim = MulticoreSimulator(design)
    total = len(threads()) * (instructions + warmup)

    def run() -> float:
        hierarchy, cores = sim.prepare(
            threads(), instructions, warmup_instructions=warmup
        )
        start = time.perf_counter()
        execute_sampled_live(hierarchy, cores)
        return time.perf_counter() - start

    def extras() -> Dict:
        full = MulticoreSimulator(design).run(
            threads(), instructions, warmup_instructions=warmup
        )
        live = MulticoreSimulator(design).run(
            threads(),
            instructions,
            warmup_instructions=warmup,
            sampling="live",
        )
        error = abs(live.total_ipc - full.total_ipc) / full.total_ipc
        return {"cpi_error": error}

    return total, run, extras


# --------------------------------------------------------------------- #
# interval-tier scenarios                                                 #
# --------------------------------------------------------------------- #
#
# These time the analytical tier end to end: the same code paths the
# figure grids run.  Warm-start hints are cleared and the study rebuilt
# per repeat, so every repeat measures a cold evaluation.


def _fresh_interval_study():
    from repro.core.study import DesignSpaceStudy, clear_latency_hint_cache

    clear_latency_hint_cache()
    return DesignSpaceStudy()


def _scenario_interval_point() -> Tuple[int, Callable[[], float]]:
    """Per-point evaluation latency: four 24-thread mixes on design 4B."""
    from repro.workloads.multiprogram import heterogeneous_mixes

    mixes = [list(m) for m in heterogeneous_mixes(24)[:4]]
    _fresh_interval_study().evaluate_mix("4B", mixes[0])  # warm module caches

    def run() -> float:
        study = _fresh_interval_study()
        start = time.perf_counter()
        for mix in mixes:
            study.evaluate_mix("4B", mix)
        return time.perf_counter() - start

    return len(mixes), run


def _scenario_interval_slab() -> Tuple[int, Callable[[], float]]:
    """The tentpole: the full 9-design x 9-count heterogeneous slab."""
    from repro.core.designs import all_designs

    designs = [d.name for d in all_designs()]
    counts = list(range(1, 10))
    n = _fresh_interval_study().prefetch(designs, "heterogeneous", counts)

    def run() -> float:
        study = _fresh_interval_study()
        start = time.perf_counter()
        study.prefetch(designs, "heterogeneous", counts)
        return time.perf_counter() - start

    return n, run


def _scenario_interval_solver() -> Tuple[int, Callable[[], float]]:
    """Raw chip-solver throughput: fresh 24-thread solves, no memoization."""
    from repro.core.designs import get_design
    from repro.core.scheduler import Scheduler
    from repro.interval.contention import ChipModel
    from repro.workloads.multiprogram import heterogeneous_mixes, profiles_for

    design = get_design("4B")
    mix = list(heterogeneous_mixes(24)[0])
    placement = Scheduler(design, smt=True).place(profiles_for(mix))
    ChipModel(design).evaluate(placement)  # warm module caches
    solves = 16

    def run() -> float:
        start = time.perf_counter()
        for _ in range(solves):
            ChipModel(design).evaluate(placement)
        return time.perf_counter() - start

    return solves, run


def _scenario_engine_dispatch() -> Tuple[int, Callable[[], float], Callable]:
    """End-to-end engine dispatch: points/s through the full warm-pool path.

    Every other interval scenario times the model kernels directly; this
    one times the orchestration around them — slab dispatch, IPC,
    completion-order streaming — by pushing cache-miss sweeps through a
    persistent 4-worker :class:`~repro.engine.Engine` with no store.  The
    pool is warmed once up front, then each repeat evaluates a *disjoint*
    (design, thread-count) slice of the grid so warm worker-side memos
    never shortcut the compute: every repeat is a genuinely cold slice
    through a genuinely warm pool.

    The ``dispatch_speedup_vs_per_call`` extra interleaves best-of-two
    disjoint slices through the warm pool and through a
    ``pool="per-call"`` engine (fresh process pool per call — the
    pre-warm-pool behaviour), so both sides of the ratio are sampled
    back-to-back under the same ambient load; the CI perf gate holds
    it at >= 2x.

    Parent-side model caches are cleared up front: forked per-call
    workers inherit whatever earlier scenarios warmed in this process,
    so without the reset the per-call number would depend on suite
    order instead of on what a fresh ``--pool per-call`` run pays.
    """
    import gc

    from repro.core.designs import all_designs
    from repro.core.scheduler import clear_isolated_ips_cache
    from repro.core.study import DesignSpaceStudy, clear_latency_hint_cache
    from repro.engine import Engine

    clear_latency_hint_cache()
    clear_isolated_ips_cache()
    gc.collect()
    jobs = 4
    # Rotate over designs whose per-point model cost is within ~15% of
    # each other (the many-core designs are 2-3x costlier per point), so
    # the best-of-N repeat number does not depend on which design a given
    # repeat count happens to land on.
    names = {d.name for d in all_designs()}
    designs = [n for n in ("4B", "3B2m", "2B4m", "1B6m") if n in names]
    # Disjoint (design, two-thread-count) slices; counts start at 3
    # (counts 1-2 have duplicate mixes that dedup away), so every slice
    # is the same 24 unique cache-miss points.
    slices = [
        (name, [2 * pair + 3, 2 * pair + 4])
        for pair in range(8)
        for name in designs
    ]
    points_per_slice = 24
    persistent = Engine(jobs=jobs, store=None, slab_size=8, pool="persistent")
    # Warm one slice per design so every worker has built every design's
    # interval model before measurement; measured slices then differ only
    # by thread counts, and repeats have uniform cost.
    for _ in designs:
        warm = slices.pop(0)
        n = DesignSpaceStudy(engine=persistent).prefetch(
            [warm[0]], "heterogeneous", warm[1]
        )
        assert n == points_per_slice, f"expected 24-point slices, got {n}"
    best = [float("inf")]

    def run() -> float:
        name, counts = slices.pop(0)
        study = DesignSpaceStudy(engine=persistent)
        start = time.perf_counter()
        study.prefetch([name], "heterogeneous", counts)
        seconds = time.perf_counter() - start
        best[0] = min(best[0], seconds)
        return seconds

    def _timed_slice(engine: "Engine") -> float:
        name, counts = slices.pop(0)
        study = DesignSpaceStudy(engine=engine)
        start = time.perf_counter()
        study.prefetch([name], "heterogeneous", counts)
        return time.perf_counter() - start

    def extras() -> Dict:
        per_call = Engine(jobs=jobs, store=None, slab_size=8, pool="per-call")
        persist_best = best[0]
        per_call_best = float("inf")
        for _ in range(2):
            persist_best = min(persist_best, _timed_slice(persistent))
            per_call_best = min(per_call_best, _timed_slice(per_call))
        per_call.shutdown()
        persistent.shutdown()
        speedup = per_call_best / persist_best if persist_best > 0 else 0.0
        return {
            "per_call_points_per_second": round(
                points_per_slice / per_call_best, 1
            ),
            "dispatch_speedup_vs_per_call": round(speedup, 3),
        }

    return points_per_slice, run, extras


# --------------------------------------------------------------------- #
# serve-tier scenarios                                                    #
# --------------------------------------------------------------------- #
#
# These time the resident daemon (docs/serving.md) end to end through a
# real unix socket: protocol round-trip latency and warm-cache burst
# throughput.  One daemon boots lazily on first use and is shared by all
# serve scenarios, so the numbers measure the request path, not startup.

_SERVE_STATE: Dict[str, object] = {}


def _serve_handle():
    from repro.serve import ServeConfig, ServerHandle

    if "handle" not in _SERVE_STATE:
        import atexit
        import shutil
        import tempfile

        tmp = tempfile.mkdtemp(prefix="repro-bench-serve-")
        handle = ServerHandle(
            ServeConfig(
                listen=f"unix:{tmp}/bench.sock",
                jobs=1,
                cache_dir=f"{tmp}/cache",
            )
        ).start()

        def teardown(handle=handle, tmp=tmp):
            handle.stop()
            shutil.rmtree(tmp, ignore_errors=True)

        atexit.register(teardown)
        _SERVE_STATE["handle"] = handle
    return _SERVE_STATE["handle"]


def _latency_extras(client) -> Callable[[], Dict]:
    """Read queue-wait/e2e percentiles from the daemon's live histograms.

    Goes through the ``metrics`` op (event-loop thread) rather than
    poking the registry from this thread; ``window=0`` skips the
    time-series payload.  Recorded into the report entry so the perf
    gate can catch latency regressions, not just throughput ones.
    """

    def extras() -> Dict:
        snapshot = client.metrics(window=0)["snapshot"]
        histograms = snapshot.get("histograms", {})
        latency: Dict[str, Dict[str, float]] = {}
        for field, metric in (
            ("queue_wait", "serve.job_queue_wait_seconds"),
            ("e2e", "serve.job_e2e_seconds"),
        ):
            snap = histograms.get(metric)
            if snap:
                latency[field] = {
                    q: snap[q] for q in ("p50", "p95", "p99") if q in snap
                }
        return {"latency": latency} if latency else {}

    return extras


def _scenario_serve_roundtrip() -> Tuple[int, Callable[[], float], Callable]:
    """submit+poll+wait round trips for an already-cached point."""
    from repro.serve import ServeClient

    handle = _serve_handle()
    client = ServeClient(handle.address, client_name="bench-roundtrip")
    _SERVE_STATE["roundtrip_client"] = client  # keep the connection open
    params = {
        "design": "4B",
        "mix": ["mcf", "tonto", "libquantum", "hmmer"],
        "smt": True,
    }
    client.wait(client.submit("point", params))  # warm the store
    requests = 50

    def run() -> float:
        start = time.perf_counter()
        for _ in range(requests):
            job = client.submit("point", params)
            client.poll(job)
            client.wait(job)
        return time.perf_counter() - start

    return requests, run, _latency_extras(client)


def _burst_body(client, params: Dict) -> Callable[[], float]:
    def run() -> float:
        start = time.perf_counter()
        first = client.submit("sweep", params)
        second = client.submit("sweep", params)
        client.wait(first)
        client.wait(second)
        return time.perf_counter() - start

    return run


_BURST_PARAMS = {
    "designs": ["4B"],
    "kind": "heterogeneous",
    "max_threads": 4,
    "smt": True,
}


def _scenario_serve_burst() -> Tuple[int, Callable[[], float], Callable]:
    """Warm-cache throughput for a ~100-point coalesced burst.

    Two identical sweep jobs are submitted back to back without waiting:
    whatever of the first job is still in flight when the second arrives
    is coalesced onto it, and every grid point is a store hit.
    """
    from repro.serve import ServeClient

    handle = _serve_handle()
    client = ServeClient(handle.address, client_name="bench-burst")
    _SERVE_STATE["burst_client"] = client
    status = client.wait(client.submit("sweep", _BURST_PARAMS))  # warm store
    points = 2 * status["total_points"]
    return points, _burst_body(client, _BURST_PARAMS), _latency_extras(client)


def _scenario_serve_burst_telemetry() -> Tuple[int, Callable[[], float], Callable]:
    """The coalesced burst again, on a daemon with full telemetry on.

    Boots a second daemon with the HTTP exposition thread and the
    time-series recorder enabled (its own cache dir, so the store warms
    identically) and runs the same burst body.  The report pairs this
    with ``serve_burst``: ``annotate_telemetry_overhead`` derives the
    relative throughput cost, and ``check_regressions`` fails when it
    exceeds 2 %.
    """
    from repro.serve import ServeClient, ServeConfig, ServerHandle

    if "telemetry_handle" not in _SERVE_STATE:
        import atexit
        import shutil
        import tempfile

        tmp = tempfile.mkdtemp(prefix="repro-bench-serve-telem-")
        handle = ServerHandle(
            ServeConfig(
                listen=f"unix:{tmp}/bench.sock",
                jobs=1,
                cache_dir=f"{tmp}/cache",
                http_port=0,  # ephemeral: exposition thread on, no clash
                record_interval=0.25,
            )
        ).start()

        def teardown(handle=handle, tmp=tmp):
            handle.stop()
            shutil.rmtree(tmp, ignore_errors=True)

        atexit.register(teardown)
        _SERVE_STATE["telemetry_handle"] = handle
    handle = _SERVE_STATE["telemetry_handle"]
    client = ServeClient(handle.address, client_name="bench-burst-telem")
    _SERVE_STATE["burst_telemetry_client"] = client
    status = client.wait(client.submit("sweep", _BURST_PARAMS))  # warm store
    points = 2 * status["total_points"]
    return points, _burst_body(client, _BURST_PARAMS), _latency_extras(client)


def _scenario_serve_slab_stream() -> Tuple[int, Callable[[], float], Callable]:
    """Multi-slab compute sweep streamed through a warm-pool daemon.

    Boots a cache-less ``jobs=2`` daemon (its own handle — the shared
    bench daemon is single-worker and store-backed) and times a sweep
    that dispatches as several 8-point slabs, so the number tracks the
    streaming dispatch path: slab fan-out, completion-order write-back
    and progress, with zero store hits.  Each repeat sweeps a *different*
    design so the persistent workers' memoized studies never shortcut
    the compute — warm pool, cold points, every time.
    """
    from repro.serve import ServeClient, ServeConfig, ServerHandle

    if "slab_stream_handle" not in _SERVE_STATE:
        import atexit
        import shutil
        import tempfile

        tmp = tempfile.mkdtemp(prefix="repro-bench-serve-slab-")
        handle = ServerHandle(
            ServeConfig(
                listen=f"unix:{tmp}/bench.sock",
                jobs=2,
                no_cache=True,
                slab_size=8,
            )
        ).start()

        def teardown(handle=handle, tmp=tmp):
            handle.stop()
            shutil.rmtree(tmp, ignore_errors=True)

        atexit.register(teardown)
        _SERVE_STATE["slab_stream_handle"] = handle
    handle = _SERVE_STATE["slab_stream_handle"]
    client = ServeClient(handle.address, client_name="bench-slab-stream")
    _SERVE_STATE["slab_stream_client"] = client
    from repro.core.designs import all_designs

    designs = [d.name for d in all_designs()]

    def params(design: str) -> Dict:
        return {
            "designs": [design],
            "kind": "heterogeneous",
            "max_threads": 4,
            "smt": True,
        }

    # Warm the pool (and pin the per-sweep point count) on one design;
    # repeats rotate through the rest so every sweep recomputes.
    status = client.wait(client.submit("sweep", params(designs[0])))
    points = status["total_points"]
    rotation = designs[1:]

    def run() -> float:
        design = rotation.pop(0)
        start = time.perf_counter()
        client.wait(client.submit("sweep", params(design)))
        return time.perf_counter() - start

    return points, run, _latency_extras(client)


SCENARIOS: Dict[str, Callable[[], Tuple[int, Callable[[], None]]]] = {
    "tracegen": _scenario_tracegen,
    "ooo_single": _scenario_ooo_single,
    "inorder_single": _scenario_inorder_single,
    "smt4": _scenario_smt4,
    "8core_llc": _scenario_8core_llc,
    "live_sampling": _scenario_live_sampling,
    "interval_point": _scenario_interval_point,
    "interval_slab": _scenario_interval_slab,
    "interval_solver": _scenario_interval_solver,
    "engine_dispatch": _scenario_engine_dispatch,
    "serve_roundtrip": _scenario_serve_roundtrip,
    "serve_burst": _scenario_serve_burst,
    "serve_burst_telemetry": _scenario_serve_burst_telemetry,
    "serve_slab_stream": _scenario_serve_slab_stream,
}

#: Scenario -> tier; each tier writes its own report file.
TIERS: Dict[str, Tuple[str, ...]] = {
    "cycle": (
        "tracegen",
        "ooo_single",
        "inorder_single",
        "smt4",
        "8core_llc",
        "live_sampling",
    ),
    "interval": (
        "interval_point",
        "interval_slab",
        "interval_solver",
        "engine_dispatch",
    ),
    "serve": (
        "serve_roundtrip",
        "serve_burst",
        "serve_burst_telemetry",
        "serve_slab_stream",
    ),
}

#: Default report file per tier (repo root, as ROADMAP.md documents).
REPORT_FILES: Dict[str, str] = {
    "cycle": "BENCH_cycle.json",
    "interval": "BENCH_interval.json",
    "serve": "BENCH_serve.json",
}

#: What each non-cycle scenario counts (cycle scenarios count instructions).
_SCENARIO_UNITS: Dict[str, str] = {
    "interval_point": "points",
    "interval_slab": "points",
    "interval_solver": "solves",
    "engine_dispatch": "points",
    "serve_roundtrip": "requests",
    "serve_burst": "points",
    "serve_burst_telemetry": "points",
    "serve_slab_stream": "points",
}


def tier_of(name: str) -> str:
    """Tier a scenario belongs to ("cycle", "interval" or "serve")."""
    for tier, names in TIERS.items():
        if name in names:
            return tier
    raise KeyError(f"unknown scenario {name!r}")


# --------------------------------------------------------------------- #
# running                                                                #
# --------------------------------------------------------------------- #


def run_scenario(
    name: str, repeats: int = 1, profile: bool = False
) -> ScenarioResult:
    """Time one scenario; best-of-``repeats`` wall time."""
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {', '.join(SCENARIOS)}"
        )
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    parts = SCENARIOS[name]()
    instructions, body = parts[0], parts[1]
    extras_fn = parts[2] if len(parts) > 2 else None
    if profile:
        _profile_scenario(name, body)
    best = float("inf")
    for _ in range(repeats):
        best = min(best, body())
    extras = extras_fn() if extras_fn is not None else None
    return ScenarioResult(
        name=name,
        instructions=instructions,
        seconds=best,
        repeats=repeats,
        unit=_SCENARIO_UNITS.get(name, "instr"),
        extras=extras or None,
    )


def _profile_scenario(name: str, body: Callable[[], None]) -> None:
    """Run ``body`` once under cProfile; log the top-20 cumulative hotspots."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        body()
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(20)
    _LOG.info(f"profile: {name} (top-20 cumulative)")
    for line in buffer.getvalue().splitlines():
        line = line.rstrip()
        if line:
            _LOG.info(f"profile: {line}")


def load_baseline(path: Optional[str] = None) -> Optional[Dict]:
    """Read the recorded baseline, or None if there is none to compare to."""
    path = path or os.environ.get("REPRO_BENCH_BASELINE") or DEFAULT_BASELINE
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or "scenarios" not in data:
        return None
    data.setdefault("path", path)
    return data


def run_suite(
    scenarios: Optional[Sequence[str]] = None,
    repeats: int = 1,
    baseline_path: Optional[str] = None,
    profile: bool = False,
) -> Dict:
    """Run the selected scenarios and assemble the ``BENCH_cycle`` report."""
    selected = list(scenarios) if scenarios else list(SCENARIOS)
    baseline = load_baseline(baseline_path)
    results: List[ScenarioResult] = []
    for name in selected:
        _LOG.info(f"bench: running {name} (repeats={repeats})")
        results.append(run_scenario(name, repeats=repeats, profile=profile))
    report: Dict = {
        "schema_version": _SCHEMA_VERSION,
        "baseline": None,
        "scenarios": {},
    }
    if baseline is not None:
        report["baseline"] = {
            "path": baseline.get("path"),
            "label": baseline.get("label", "seed"),
            "latency": baseline.get("latency", {}),
        }
    for r in results:
        entry = {
            "instructions": r.instructions,
            "seconds": round(r.seconds, 6),
            "instructions_per_second": round(r.instructions_per_second, 1),
            "repeats": r.repeats,
            "unit": r.unit,
            "speedup_vs_baseline": None,
        }
        if r.extras:
            entry.update(r.extras)
        if baseline is not None:
            base = baseline["scenarios"].get(r.name)
            if isinstance(base, dict) and base.get("instructions_per_second"):
                entry["speedup_vs_baseline"] = round(
                    r.instructions_per_second / base["instructions_per_second"],
                    3,
                )
        report["scenarios"][r.name] = entry
    annotate_telemetry_overhead(report)
    return report


def annotate_telemetry_overhead(report: Dict) -> Optional[float]:
    """Derive telemetry's relative throughput cost from the burst pair.

    When both ``serve_burst`` (telemetry-free daemon) and
    ``serve_burst_telemetry`` (recorder + HTTP exposition on) ran,
    record ``telemetry_overhead`` — the fraction of burst throughput
    lost with telemetry enabled (negative means noise made the
    telemetry run faster) — on the telemetry entry, and return it.
    """
    scenarios = report.get("scenarios", {})
    plain = scenarios.get("serve_burst")
    telem = scenarios.get("serve_burst_telemetry")
    if not plain or not telem:
        return None
    plain_ips = plain.get("instructions_per_second") or 0.0
    telem_ips = telem.get("instructions_per_second") or 0.0
    if plain_ips <= 0 or telem_ips <= 0:
        return None
    overhead = round(1.0 - telem_ips / plain_ips, 4)
    telem["telemetry_overhead"] = overhead
    return overhead


def format_report(report: Dict) -> str:
    """Human-readable table for stdout."""
    lines = [
        f"{'scenario':16s}{'work':>14s}{'seconds':>10s}"
        f"{'rate':>12s} {'unit':8s}{'vs seed':>9s}"
    ]
    for name, entry in report["scenarios"].items():
        speedup = entry["speedup_vs_baseline"]
        unit = entry.get("unit", "instr")
        lines.append(
            f"{name:16s}{entry['instructions']:>14,d}"
            f"{entry['seconds']:>10.3f}"
            f"{entry['instructions_per_second']:>12,.0f}"
            f" {unit + '/s':8s}"
            f"{f'{speedup:.2f}x' if speedup is not None else '-':>9s}"
        )
    if report["baseline"] is None:
        lines.append(
            "(no baseline recorded; run with --save-baseline to create one)"
        )
    return "\n".join(lines)


def write_report(report: Dict, path: str) -> None:
    atomic_write_json(path, report)


def check_regressions(
    report: Dict, max_regression: float = 0.25
) -> List[str]:
    """Compare a report against its baseline; return failure messages.

    A scenario fails when its throughput falls more than ``max_regression``
    below the recorded baseline (speedup < 1 - max_regression); the
    failure message names the offending scenario and quotes the exact
    throughput delta so the CI log alone identifies the culprit.
    Scenarios without a baseline entry are skipped — they cannot regress
    against nothing.  Four accuracy/latency checks ride along,
    independent of any baseline: a ``cpi_error`` above
    :data:`MAX_LIVE_SAMPLING_ERROR` fails (the live-sampling scenario's
    accuracy contract — a throughput win bought with estimator error is
    still a failure), a ``telemetry_overhead`` above
    :data:`MAX_TELEMETRY_OVERHEAD` fails, a
    ``dispatch_speedup_vs_per_call`` below :data:`MIN_DISPATCH_SPEEDUP`
    fails (the warm-pool engine must keep beating a per-call pool), and
    a recorded e2e p95 more than ``1 + max_regression`` above the
    baseline's fails.  Returns an empty list when everything is within
    bounds.
    """
    if not 0.0 < max_regression < 1.0:
        raise ValueError(
            f"max_regression must be in (0, 1), got {max_regression}"
        )
    failures: List[str] = []
    floor = 1.0 - max_regression
    baseline = report.get("baseline")
    for name, entry in report["scenarios"].items():
        speedup = entry.get("speedup_vs_baseline")
        if speedup is not None and speedup < floor:
            unit = entry.get("unit", "instr")
            current = entry["instructions_per_second"]
            recorded = current / speedup if speedup > 0 else 0.0
            failures.append(
                f"{name}: throughput regressed {1.0 - speedup:.1%} vs the "
                f"recorded baseline — {current:,.0f} {unit}/s against "
                f"{recorded:,.0f} {unit}/s ({speedup:.2f}x, allowed floor "
                f"{floor:.2f}x)"
            )
        cpi_error = entry.get("cpi_error")
        if cpi_error is not None and cpi_error > MAX_LIVE_SAMPLING_ERROR:
            failures.append(
                f"{name}: live-sampled chip CPI is {cpi_error:.1%} off the "
                f"full run (budget: {MAX_LIVE_SAMPLING_ERROR:.0%})"
            )
        overhead = entry.get("telemetry_overhead")
        if overhead is not None and overhead > MAX_TELEMETRY_OVERHEAD:
            failures.append(
                f"{name}: telemetry overhead {overhead:.1%} exceeds the "
                f"{MAX_TELEMETRY_OVERHEAD:.0%} budget"
            )
        dispatch = entry.get("dispatch_speedup_vs_per_call")
        if dispatch is not None and dispatch < MIN_DISPATCH_SPEEDUP:
            failures.append(
                f"{name}: warm persistent pool is only {dispatch:.2f}x a "
                f"per-call pool (floor: {MIN_DISPATCH_SPEEDUP:.1f}x)"
            )
        base_latency = (baseline or {}).get("latency", {}).get(name) or {}
        base_p95 = (base_latency.get("e2e") or {}).get("p95")
        p95 = (entry.get("latency", {}).get("e2e") or {}).get("p95")
        if base_p95 and p95 is not None:
            ceiling = base_p95 * (1.0 + max_regression)
            if p95 > ceiling:
                failures.append(
                    f"{name}: e2e p95 {p95 * 1000:.1f}ms exceeds "
                    f"{ceiling * 1000:.1f}ms "
                    f"(baseline {base_p95 * 1000:.1f}ms + {max_regression:.0%})"
                )
    return failures


def save_baseline(report: Dict, path: str, label: str = "seed") -> None:
    """Persist the current numbers as the comparison baseline."""
    payload = {
        "schema_version": _SCHEMA_VERSION,
        "label": label,
        "scenarios": {
            name: {
                "instructions": entry["instructions"],
                "instructions_per_second": entry["instructions_per_second"],
            }
            for name, entry in report["scenarios"].items()
        },
    }
    latency = {
        name: entry["latency"]
        for name, entry in report["scenarios"].items()
        if entry.get("latency")
    }
    if latency:
        payload["latency"] = latency
    atomic_write_json(path, payload)


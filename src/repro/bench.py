"""Tracked performance benchmarks for the cycle-level tier.

``python -m repro bench`` times a fixed set of scenarios — trace
generation, single-core OoO and in-order runs, an SMT run and an
8-core shared-LLC run — and writes ``BENCH_cycle.json`` with
instructions-per-second for each, plus the speedup against the recorded
seed baseline (``benchmarks/perf/baseline.json``).  Every future PR
therefore has a perf trajectory to move: CI re-runs the fast scenarios
and fails when a scenario regresses by more than 25 %.

Timing methodology: simulation scenarios time only the lockstep execute
loop (:meth:`MulticoreSimulator.execute`), not trace generation or cache
warming, so the number tracks the simulator hot path; ``tracegen`` times
the generator separately.  Each scenario runs ``--repeat`` times and the
best (minimum) wall time wins, which is the standard way to reject
scheduler noise on shared machines.
"""

import cProfile
import io
import json
import os
import pstats
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import get_logger
from repro.util.io import atomic_write_json

_LOG = get_logger("bench")

#: Default location of the recorded seed baseline, relative to the cwd
#: (the repo checkout); override with ``--baseline`` or
#: ``$REPRO_BENCH_BASELINE``.
DEFAULT_BASELINE = os.path.join("benchmarks", "perf", "baseline.json")

#: Scenarios cheap enough for CI's perf gate (skips the long SMT run).
FAST_SCENARIOS = ("tracegen", "ooo_single", "inorder_single", "8core_llc")

_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one timed scenario."""

    name: str
    instructions: int
    seconds: float
    repeats: int

    @property
    def instructions_per_second(self) -> float:
        return self.instructions / self.seconds if self.seconds else 0.0


# --------------------------------------------------------------------- #
# scenario definitions                                                   #
# --------------------------------------------------------------------- #
#
# Each scenario factory does its setup up front and returns
# ``(instructions, run)`` where ``run`` is a zero-argument body that
# returns the measured wall seconds (the body decides what is timed, so
# simulation scenarios can rebuild cold state per repeat without charging
# setup to the clock).  Budgets are sized so the suite finishes fast.


def _scenario_tracegen() -> Tuple[int, Callable[[], float]]:
    """Synthetic trace generation throughput (the workload generator)."""
    from repro.workloads.spec import get_profile
    from repro.workloads.tracegen import TraceGenerator

    profile = get_profile("mcf")
    n = 150_000

    def run() -> float:
        start = time.perf_counter()
        TraceGenerator(profile, seed=13).generate(n)
        return time.perf_counter() - start

    return n, run


def _sim_scenario(
    design, threads, instructions_per_thread: int
) -> Tuple[int, Callable[[], float]]:
    """Time the lockstep execute loop of one prepared simulation.

    Trace generation and cache warming happen outside the clock (they are
    tracked by the ``tracegen`` scenario); each repeat re-prepares so the
    timed loop always starts from identical cold simulator state.
    """
    from repro.sim.multicore import MulticoreSimulator

    sim = MulticoreSimulator(design)
    warmup = instructions_per_thread // 2
    # Every dispatched instruction (warmup prefix included) is simulator
    # work, so the throughput metric counts them all.
    total = len(threads) * (instructions_per_thread + warmup)

    def run() -> float:
        hierarchy, cores = sim.prepare(
            threads, instructions_per_thread, warmup_instructions=warmup
        )
        start = time.perf_counter()
        sim.execute(hierarchy, cores)
        return time.perf_counter() - start

    return total, run


def _scenario_ooo_single() -> Tuple[int, Callable[[], None]]:
    """One big out-of-order core running a mixed compute/memory profile."""
    from repro.core.designs import ChipDesign
    from repro.microarch.config import BIG
    from repro.sim.multicore import ThreadSim
    from repro.workloads.spec import get_profile

    design = ChipDesign(name="bench-1B", cores=(BIG,))
    threads = [ThreadSim(get_profile("tonto"), core_index=0)]
    return _sim_scenario(design, threads, 20_000)


def _scenario_inorder_single() -> Tuple[int, Callable[[], None]]:
    """One small in-order core on a memory-bound profile (stall-heavy)."""
    from repro.core.designs import ChipDesign
    from repro.microarch.config import SMALL
    from repro.sim.multicore import ThreadSim
    from repro.workloads.spec import get_profile

    design = ChipDesign(name="bench-1s", cores=(SMALL,))
    threads = [ThreadSim(get_profile("mcf"), core_index=0)]
    return _sim_scenario(design, threads, 20_000)


def _scenario_smt4() -> Tuple[int, Callable[[], None]]:
    """Four SMT contexts sharing one big core (fetch/ROB contention)."""
    from repro.core.designs import ChipDesign
    from repro.microarch.config import BIG
    from repro.sim.multicore import ThreadSim
    from repro.workloads.spec import get_profile

    design = ChipDesign(name="bench-1B", cores=(BIG,))
    threads = [
        ThreadSim(get_profile(name), core_index=0)
        for name in ("mcf", "libquantum", "tonto", "hmmer")
    ]
    return _sim_scenario(design, threads, 10_000)


def _scenario_8core_llc() -> Tuple[int, Callable[[], None]]:
    """Eight medium cores contending for the shared LLC, DRAM and bus."""
    from repro.core.designs import get_design
    from repro.sim.multicore import ThreadSim
    from repro.workloads.spec import get_profile

    design = get_design("8m")
    mix = ("mcf", "libquantum", "milc", "lbm", "omnetpp", "astar", "mcf", "hmmer")
    threads = [
        ThreadSim(get_profile(name), core_index=i) for i, name in enumerate(mix)
    ]
    return _sim_scenario(design, threads, 8_000)


SCENARIOS: Dict[str, Callable[[], Tuple[int, Callable[[], None]]]] = {
    "tracegen": _scenario_tracegen,
    "ooo_single": _scenario_ooo_single,
    "inorder_single": _scenario_inorder_single,
    "smt4": _scenario_smt4,
    "8core_llc": _scenario_8core_llc,
}


# --------------------------------------------------------------------- #
# running                                                                #
# --------------------------------------------------------------------- #


def run_scenario(
    name: str, repeats: int = 1, profile: bool = False
) -> ScenarioResult:
    """Time one scenario; best-of-``repeats`` wall time."""
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {', '.join(SCENARIOS)}"
        )
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    instructions, body = SCENARIOS[name]()
    if profile:
        _profile_scenario(name, body)
    best = float("inf")
    for _ in range(repeats):
        best = min(best, body())
    return ScenarioResult(
        name=name, instructions=instructions, seconds=best, repeats=repeats
    )


def _profile_scenario(name: str, body: Callable[[], None]) -> None:
    """Run ``body`` once under cProfile; log the top-20 cumulative hotspots."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        body()
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(20)
    _LOG.info(f"profile: {name} (top-20 cumulative)")
    for line in buffer.getvalue().splitlines():
        line = line.rstrip()
        if line:
            _LOG.info(f"profile: {line}")


def load_baseline(path: Optional[str] = None) -> Optional[Dict]:
    """Read the recorded baseline, or None if there is none to compare to."""
    path = path or os.environ.get("REPRO_BENCH_BASELINE") or DEFAULT_BASELINE
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or "scenarios" not in data:
        return None
    data.setdefault("path", path)
    return data


def run_suite(
    scenarios: Optional[Sequence[str]] = None,
    repeats: int = 1,
    baseline_path: Optional[str] = None,
    profile: bool = False,
) -> Dict:
    """Run the selected scenarios and assemble the ``BENCH_cycle`` report."""
    selected = list(scenarios) if scenarios else list(SCENARIOS)
    baseline = load_baseline(baseline_path)
    results: List[ScenarioResult] = []
    for name in selected:
        _LOG.info(f"bench: running {name} (repeats={repeats})")
        results.append(run_scenario(name, repeats=repeats, profile=profile))
    report: Dict = {
        "schema_version": _SCHEMA_VERSION,
        "baseline": None,
        "scenarios": {},
    }
    if baseline is not None:
        report["baseline"] = {
            "path": baseline.get("path"),
            "label": baseline.get("label", "seed"),
        }
    for r in results:
        entry = {
            "instructions": r.instructions,
            "seconds": round(r.seconds, 6),
            "instructions_per_second": round(r.instructions_per_second, 1),
            "repeats": r.repeats,
            "speedup_vs_baseline": None,
        }
        if baseline is not None:
            base = baseline["scenarios"].get(r.name)
            if isinstance(base, dict) and base.get("instructions_per_second"):
                entry["speedup_vs_baseline"] = round(
                    r.instructions_per_second / base["instructions_per_second"],
                    3,
                )
        report["scenarios"][r.name] = entry
    return report


def format_report(report: Dict) -> str:
    """Human-readable table for stdout."""
    lines = [
        f"{'scenario':16s}{'instructions':>14s}{'seconds':>10s}"
        f"{'instr/sec':>12s}{'vs seed':>9s}"
    ]
    for name, entry in report["scenarios"].items():
        speedup = entry["speedup_vs_baseline"]
        lines.append(
            f"{name:16s}{entry['instructions']:>14,d}"
            f"{entry['seconds']:>10.3f}"
            f"{entry['instructions_per_second']:>12,.0f}"
            f"{f'{speedup:.2f}x' if speedup is not None else '-':>9s}"
        )
    if report["baseline"] is None:
        lines.append(
            "(no baseline recorded; run with --save-baseline to create one)"
        )
    return "\n".join(lines)


def write_report(report: Dict, path: str) -> None:
    atomic_write_json(path, report)


def check_regressions(
    report: Dict, max_regression: float = 0.25
) -> List[str]:
    """Compare a report against its baseline; return failure messages.

    A scenario fails when its throughput falls more than ``max_regression``
    below the recorded baseline (speedup < 1 - max_regression).  Scenarios
    without a baseline entry are skipped — they cannot regress against
    nothing.  Returns an empty list when everything is within bounds.
    """
    if not 0.0 < max_regression < 1.0:
        raise ValueError(
            f"max_regression must be in (0, 1), got {max_regression}"
        )
    failures: List[str] = []
    floor = 1.0 - max_regression
    for name, entry in report["scenarios"].items():
        speedup = entry.get("speedup_vs_baseline")
        if speedup is None:
            continue
        if speedup < floor:
            failures.append(
                f"{name}: {entry['instructions_per_second']:,.0f} instr/s is "
                f"{speedup:.2f}x the baseline "
                f"(allowed floor: {floor:.2f}x)"
            )
    return failures


def save_baseline(report: Dict, path: str, label: str = "seed") -> None:
    """Persist the current numbers as the comparison baseline."""
    atomic_write_json(
        path,
        {
            "schema_version": _SCHEMA_VERSION,
            "label": label,
            "scenarios": {
                name: {
                    "instructions": entry["instructions"],
                    "instructions_per_second": entry["instructions_per_second"],
                }
                for name, entry in report["scenarios"].items()
            },
        },
    )

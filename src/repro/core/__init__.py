"""The paper's primary contribution: the multi-core design-space study.

Submodules: chip designs (Figure 2), thread-count distributions, scheduling
policy, system metrics (STP/ANTT), the study orchestrator, and the ideal
dynamic multi-core oracle.
"""

"""Thread-to-core scheduling policies (Section 3.2 of the paper).

The paper's scheduling principles, reproduced here:

1. **Big cores first** — in a heterogeneous design, threads are scheduled on
   the big core(s) before any small core is used.
2. **Spread before SMT** — threads are distributed one per core before any
   core runs two threads; SMT contexts are engaged only once every core is
   occupied (and then the biggest cores stack first, since their SMT
   capacity is largest).
3. **Offline best schedule** — the paper runs every benchmark on every core
   type (and every SMT co-run combination) in isolation offline, then picks
   the best thread-to-core mapping and co-schedule.  We reproduce this with
   (a) a *big-core-affinity* ranking deciding which threads get the big
   cores, computed from isolated per-core-type performance exactly as the
   paper does, and (b) a pressure-balancing snake deal deciding which
   threads co-run on a core, which mixes memory-intensive with
   compute-intensive threads (the symbiosis the paper credits for 4B's good
   cache usage).  An optional local-search refinement
   (:func:`optimize_coschedule`) evaluates pairwise swaps with the full chip
   model, for the ablation study.
4. **No-SMT time-sharing** — without SMT, when there are more active
   threads than cores, the extra threads time-share a core round-robin
   (equal duty cycles).
"""

from typing import List, Optional, Sequence, Tuple

from repro.core.designs import ChipDesign
from repro.engine.store import KeyedCache
from repro.interval.contention import (
    ChipModel,
    Placement,
    ThreadSpec,
    isolated_ips,
)
from repro.microarch.config import BIG, CoreConfig
from repro.obs import METRICS, TRACER
from repro.util import check_positive
from repro.workloads.profiles import BenchmarkProfile

#: Isolated per-core-type performance, memoized under the engine's keyed
#: content-key scheme (a pure function of (profile, core), so a
#: process-wide cache is sound).  Unlike the former module-level
#: ``lru_cache``, it is observable (hit/miss counters) and explicitly
#: clearable via :func:`clear_isolated_ips_cache`.
_ISOLATED_IPS_CACHE = KeyedCache("scheduler-isolated-ips")


def _cached_isolated_ips(profile: BenchmarkProfile, core: CoreConfig) -> float:
    return _ISOLATED_IPS_CACHE.get_or_compute(
        (profile, core), lambda: isolated_ips(profile, core)
    )


def clear_isolated_ips_cache() -> None:
    """Drop the memoized isolated-IPS values (tests that tweak model globals)."""
    _ISOLATED_IPS_CACHE.clear()


def big_core_affinity(profile: BenchmarkProfile, weakest: CoreConfig) -> float:
    """How much ``profile`` gains from a big core vs the design's weakest core.

    This is the paper's offline analysis: run each benchmark on each core
    type in isolation, and steer the highest-ratio benchmarks to the big
    cores.
    """
    strong = _cached_isolated_ips(profile, BIG)
    weak = _cached_isolated_ips(profile, weakest)
    return strong / weak


class Scheduler:
    """Places active threads onto a chip design per the paper's policy."""

    def __init__(self, design: ChipDesign, smt: bool = True):
        self.design = design
        self.smt = smt

    # ------------------------------------------------------------------ #
    # slot counting                                                       #
    # ------------------------------------------------------------------ #

    def slot_counts(self, n_threads: int) -> List[int]:
        """Number of threads each core receives (index-aligned with cores).

        With SMT, threads spread one-per-core first, then stack onto the
        cores with the lowest occupancy ratio (threads / contexts) — which
        fills the big cores' extra contexts first.  Without SMT each core
        takes one running thread; extras time-share big cores first.
        """
        check_positive("n_threads", n_threads)
        cores = self.design.cores
        counts = [0] * len(cores)
        caps = [c.max_smt_contexts if self.smt else 1 for c in cores]

        for _ in range(n_threads):
            open_cores = [i for i in range(len(cores)) if counts[i] < caps[i]]
            if open_cores:
                # Lowest occupancy ratio wins; ties go to the stronger
                # (earlier) core, implementing both spread-first and
                # big-first.
                best = min(open_cores, key=lambda i: (counts[i] / caps[i], i))
            else:
                # Hardware contexts exhausted: time-share, big cores first.
                best = min(range(len(cores)), key=lambda i: (counts[i] / caps[i], i))
            counts[best] += 1
        return counts

    # ------------------------------------------------------------------ #
    # placement                                                           #
    # ------------------------------------------------------------------ #

    def place(self, profiles: Sequence[BenchmarkProfile]) -> Placement:
        """Produce a :class:`Placement` for the given active threads."""
        if not profiles:
            raise ValueError("need at least one active thread")
        if METRICS.enabled:
            METRICS.inc("schedule.placements")
        with TRACER.span(
            "schedule.place",
            cat="schedule",
            design=self.design.name,
            threads=len(profiles),
            smt=self.smt,
        ):
            counts = self.slot_counts(len(profiles))
            assignment = self._deal_threads(list(profiles), counts)

            core_threads: List[List[ThreadSpec]] = []
            for core, threads in zip(self.design.cores, assignment):
                cap = core.max_smt_contexts if self.smt else 1
                duty = 1.0 if len(threads) <= cap else cap / len(threads)
                core_threads.append(
                    [ThreadSpec(p, duty_cycle=duty) for p in threads]
                )
            placement = Placement.from_lists(core_threads)
            if len(profiles) <= sum(
                (c.max_smt_contexts if self.smt else 1) for c in self.design.cores
            ):
                placement.validate_against(self.design, self.smt)
        return placement

    def _deal_threads(
        self, profiles: List[BenchmarkProfile], counts: List[int]
    ) -> List[List[BenchmarkProfile]]:
        """Decide which thread goes to which core, given per-core counts."""
        weakest = self.design.cores[-1]
        smt_engaged = any(c > 1 for c in counts)
        if not smt_engaged:
            # One thread per active core: highest big-core affinity first.
            order = sorted(
                profiles,
                key=lambda p: big_core_affinity(p, weakest),
                reverse=True,
            )
            assignment: List[List[BenchmarkProfile]] = [[] for _ in counts]
            it = iter(order)
            for i, c in enumerate(counts):
                for _ in range(c):
                    assignment[i].append(next(it))
            return assignment

        # SMT engaged: snake-deal by cache pressure so each core co-runs a
        # mix of memory- and compute-intensive threads (symbiotic
        # co-scheduling).
        order = sorted(profiles, key=lambda p: p.cache_pressure(), reverse=True)
        assignment = [[] for _ in counts]
        remaining = list(counts)
        direction = 1
        idx = 0
        core_order = list(range(len(counts)))
        while idx < len(order):
            progressed = False
            cores_in_round = core_order if direction == 1 else core_order[::-1]
            for core_idx in cores_in_round:
                if idx >= len(order):
                    break
                if remaining[core_idx] > 0:
                    assignment[core_idx].append(order[idx])
                    remaining[core_idx] -= 1
                    idx += 1
                    progressed = True
            direction = -direction
            if not progressed:
                raise AssertionError("slot counts inconsistent with thread count")
        return assignment


def optimize_coschedule(
    design: ChipDesign,
    placement: Placement,
    smt: bool = True,
    max_rounds: int = 2,
) -> Placement:
    """Local-search refinement of a placement (offline best co-schedule).

    Evaluates pairwise swaps of threads between cores with the full chip
    model and keeps any swap that improves STP, emulating the paper's
    exhaustive offline co-schedule search at tractable cost.  Each thread is
    normalized against its own isolated-on-big performance, so swaps cannot
    game the metric.

    Used by the scheduling ablation; the default heuristic schedule is
    typically within a few percent.
    """
    from repro.core.metrics import stp  # local import to avoid a cycle

    model = ChipModel(design)

    def score(p: Placement) -> float:
        # Result threads are flattened in placement order (core by core),
        # so references can be derived from the placement itself.
        result = model.evaluate(p, smt=smt)
        specs = [spec for threads in p.core_threads for spec in threads]
        refs = [_cached_isolated_ips(spec.profile, BIG) for spec in specs]
        return stp([t.ips for t in result.threads], refs)

    def flat_slots(p: Placement) -> List[Tuple[int, int]]:
        return [
            (ci, ti)
            for ci, threads in enumerate(p.core_threads)
            for ti in range(len(threads))
        ]

    best = placement
    best_score = score(best)
    for _ in range(max_rounds):
        improved = False
        slots = flat_slots(best)
        for a in range(len(slots)):
            for b in range(a + 1, len(slots)):
                ca, ta = slots[a]
                cb, tb = slots[b]
                if ca == cb:
                    continue
                lists = [list(ts) for ts in best.core_threads]
                lists[ca][ta], lists[cb][tb] = lists[cb][tb], lists[ca][ta]
                candidate = Placement.from_lists(lists)
                candidate_score = score(candidate)
                if candidate_score > best_score * (1 + 1e-9):
                    best, best_score = candidate, candidate_score
                    improved = True
        if not improved:
            break
    return best

"""Active-thread-count distributions (Section 4.2 of the paper).

A :class:`ThreadCountDistribution` assigns a probability to each active
thread count 1..N.  The paper evaluates three:

* **uniform** — every count 1..24 equally likely;
* **datacenter** — adapted from Barroso & Hölzle's measured CPU-utilization
  distribution of Google servers [2]: a peak at 1 thread (near-idle) and a
  second peak around 7-9 threads (30-40 % utilization), with a long light
  tail (Figure 10a);
* **mirrored datacenter** — the same distribution mirrored around the
  center, modelling a heavily loaded server park (peaks at 24 and 16-18).
"""

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.util import check_positive


@dataclass(frozen=True)
class ThreadCountDistribution:
    """Probability distribution over active thread counts 1..N."""

    name: str
    probabilities: Tuple[float, ...]  # index i -> P(thread count == i + 1)

    def __post_init__(self) -> None:
        if not self.probabilities:
            raise ValueError("distribution needs at least one thread count")
        if any(p < 0 for p in self.probabilities):
            raise ValueError("probabilities must be non-negative")
        total = sum(self.probabilities)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"probabilities must sum to 1, got {total}")

    @property
    def max_threads(self) -> int:
        return len(self.probabilities)

    def probability(self, thread_count: int) -> float:
        """P(active thread count == ``thread_count``)."""
        if not 1 <= thread_count <= self.max_threads:
            raise ValueError(
                f"thread_count must be in [1, {self.max_threads}], "
                f"got {thread_count}"
            )
        return self.probabilities[thread_count - 1]

    @property
    def support(self) -> Tuple[int, ...]:
        """Thread counts with nonzero probability, ascending."""
        return tuple(
            n for n in range(1, self.max_threads + 1)
            if self.probabilities[n - 1] > 0
        )

    def expectation(self, values: Dict[int, float]) -> float:
        """Expected value of a per-thread-count quantity under this distribution.

        ``values`` maps thread counts to their value (e.g. the STP achieved
        at that count).  Only counts with nonzero probability are required —
        timeline-derived distributions routinely carry zero-weight counts
        (e.g. after clamping), and those contribute nothing to the sum.
        """
        missing = [n for n in self.support if n not in values]
        if missing:
            raise ValueError(f"values missing for thread counts {missing}")
        return sum(self.probability(n) * values[n] for n in self.support)

    def mirrored(self) -> "ThreadCountDistribution":
        """The distribution mirrored around the center (P'(n) = P(N+1-n)).

        Mirroring is an involution, so the name toggles a ``-mirrored``
        suffix rather than accumulating one per application:
        ``d.mirrored().mirrored()`` round-trips to ``d`` exactly.
        """
        if self.name.endswith("-mirrored"):
            name = self.name[: -len("-mirrored")]
        else:
            name = f"{self.name}-mirrored"
        return ThreadCountDistribution(
            name=name,
            probabilities=tuple(reversed(self.probabilities)),
        )

    @classmethod
    def from_weights(
        cls, name: str, weights: Sequence[float]
    ) -> "ThreadCountDistribution":
        """Build a distribution from non-negative weights (normalized here)."""
        total = sum(weights)
        check_positive("sum of weights", total)
        return cls(name=name, probabilities=tuple(w / total for w in weights))


def uniform(max_threads: int = 24) -> ThreadCountDistribution:
    """Uniform distribution over 1..``max_threads`` (Section 4.2.1)."""
    check_positive("max_threads", max_threads)
    return ThreadCountDistribution.from_weights(
        f"uniform-{max_threads}", [1.0] * max_threads
    )


#: Per-thread-count weights shaped after Figure 10(a): a peak at one thread
#: (the near-zero-utilization mode of the Barroso-Hölzle distribution), a
#: second mode at 7-9 threads (30-40 % utilization) and a light tail.
_DATACENTER_WEIGHTS = (
    0.105,  # 1 thread
    0.060,  # 2
    0.045,  # 3
    0.042,  # 4
    0.048,  # 5
    0.058,  # 6
    0.065,  # 7
    0.066,  # 8
    0.063,  # 9
    0.055,  # 10
    0.047,  # 11
    0.040,  # 12
    0.034,  # 13
    0.029,  # 14
    0.025,  # 15
    0.022,  # 16
    0.019,  # 17
    0.017,  # 18
    0.015,  # 19
    0.013,  # 20
    0.012,  # 21
    0.010,  # 22
    0.008,  # 23
    0.007,  # 24
)


def datacenter(max_threads: int = 24) -> ThreadCountDistribution:
    """Datacenter distribution (Figure 10a), adapted to ``max_threads``.

    For ``max_threads`` other than 24 the 24-point shape is resampled by
    linear interpolation over the normalized thread-count axis.
    """
    check_positive("max_threads", max_threads)
    if max_threads == 24:
        weights: Sequence[float] = _DATACENTER_WEIGHTS
    else:
        weights = _resample(_DATACENTER_WEIGHTS, max_threads)
    return ThreadCountDistribution.from_weights(
        f"datacenter-{max_threads}", weights
    )


def mirrored_datacenter(max_threads: int = 24) -> ThreadCountDistribution:
    """The datacenter distribution mirrored around the center (Section 4.2.2)."""
    return datacenter(max_threads).mirrored()


def _resample(weights: Sequence[float], n: int) -> Tuple[float, ...]:
    """Linearly resample a weight vector onto ``n`` points."""
    if n == 1:
        return (1.0,)
    m = len(weights)
    out = []
    for i in range(n):
        x = i * (m - 1) / (n - 1)
        lo = int(x)
        hi = min(lo + 1, m - 1)
        frac = x - lo
        out.append(weights[lo] * (1 - frac) + weights[hi] * frac)
    return tuple(out)

"""Design-space study orchestration.

:class:`DesignSpaceStudy` evaluates (design x workload x thread count x SMT)
points with the interval chip model and aggregates them the way the paper's
figures do:

* per-thread-count average performance: **harmonic mean STP** (a rate) and
  arithmetic-mean ANTT across the workload mixes at that count;
* distribution-weighted averages: the expectation of per-count mean STP
  under a thread-count distribution (Figures 6-10);
* per-benchmark averages for Figure 9;
* power and energy per point for Figures 14-15.

All evaluations are memoized in-process; pass an
:class:`~repro.engine.executor.Engine` to add parallel evaluation and a
persistent, content-addressed result store shared across processes and runs
(see :mod:`repro.engine`).
"""

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.designs import ChipDesign, all_designs
from repro.core.distributions import ThreadCountDistribution
from repro.core.metrics import antt, arithmetic_mean, harmonic_mean, stp
from repro.core.scheduler import Scheduler
from repro.engine.store import KeyedCache
from repro.interval.contention import ChipModel, ChipResult, evaluate_batch
from repro.obs import METRICS, TRACER
from repro.microarch.config import BIG
from repro.microarch.uncore import DEFAULT_UNCORE, UncoreConfig
from repro.power.mcpat import ChipPowerModel
from repro.workloads.multiprogram import (
    Mix,
    heterogeneous_mixes,
    homogeneous_mixes,
    profiles_for,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.executor import Engine

#: Workload-mix kinds, matching the paper's terminology.
WORKLOAD_KINDS = ("homogeneous", "heterogeneous")


@dataclass(frozen=True)
class MixResult:
    """Outcome of one (design, mix, SMT) evaluation."""

    design_name: str
    mix: Tuple[str, ...]
    smt: bool
    stp: float
    antt: float
    power_gated_w: float
    power_ungated_w: float
    bus_utilization: float
    mem_latency_inflation: float


class DesignSpaceStudy:
    """Runs and caches the paper's design-space grid.

    Parameters
    ----------
    designs:
        Chip designs under study (default: the nine of Figure 2).
    uncore:
        Optional uncore override applied to every design (e.g. the 16 GB/s
        bus of Section 8.2).
    benchmarks:
        Benchmark names for mix construction (default: the 12 SPEC-like
        profiles).
    seed:
        Seed for balanced random heterogeneous mixes.
    mixes_per_count:
        Number of heterogeneous mixes per thread count (the paper uses 12).
    engine:
        Optional :class:`repro.engine.executor.Engine`: batch evaluations
        are then looked up in its persistent result store and misses are
        computed in parallel across worker processes.  Without an engine,
        everything runs serially in-process exactly as before.
    reference_uncore:
        Uncore for the isolated-on-big reference runs that normalize STP
        and ANTT; defaults to the first design's uncore.
    """

    def __init__(
        self,
        designs: Optional[Sequence[ChipDesign]] = None,
        uncore: Optional[UncoreConfig] = None,
        benchmarks: Optional[Sequence[str]] = None,
        seed: int = 42,
        mixes_per_count: int = 12,
        engine: Optional["Engine"] = None,
        reference_uncore: Optional[UncoreConfig] = None,
    ):
        base = list(designs) if designs is not None else all_designs()
        if uncore is not None:
            base = [d.with_uncore(uncore) for d in base]
        self.designs: Dict[str, ChipDesign] = {d.name: d for d in base}
        self.benchmarks = list(benchmarks) if benchmarks is not None else None
        self.seed = seed
        self.mixes_per_count = mixes_per_count
        self.engine = engine
        if reference_uncore is not None:
            self.reference_uncore = reference_uncore
        elif base:
            self.reference_uncore = base[0].uncore
        else:
            self.reference_uncore = DEFAULT_UNCORE
        self._chip_models: Dict[str, ChipModel] = {}
        self._power_models: Dict[str, ChipPowerModel] = {}
        self._mix_cache: Dict[Tuple[str, Tuple[str, ...], bool], MixResult] = {}
        # Per-study reference-IPS memo in front of the keyed cache: the
        # reference uncore is fixed per study, so the key reduces to the
        # profile (pinned so its id stays unique while the entry lives).
        self._ref_ips_memo: Dict[int, Tuple[object, float]] = {}

    # ------------------------------------------------------------------ #
    # single points                                                       #
    # ------------------------------------------------------------------ #

    def design(self, name: str) -> ChipDesign:
        try:
            return self.designs[name]
        except KeyError:
            raise KeyError(
                f"design {name!r} not in this study; have {sorted(self.designs)}"
            ) from None

    def add_design(self, design: ChipDesign) -> None:
        """Register an extra candidate design after construction.

        Used by the adaptive explorer's GA refinement to evaluate
        compositions outside the initial design list through the same
        memo/engine path.  Idempotent for an identical design; a name
        clash with a *different* design raises.
        """
        existing = self.designs.get(design.name)
        if existing is not None:
            if existing != design:
                raise ValueError(
                    f"design {design.name!r} already registered "
                    "with a different configuration"
                )
            return
        self.designs[design.name] = design

    @property
    def evaluated_points(self) -> int:
        """Unique (design, mix, SMT) points materialized in this study.

        Counts store hits and in-process computations alike — it is the
        number of grid points this study has *requested*, which is the
        quantity the adaptive explorer budgets against the full grid.
        """
        return len(self._mix_cache)

    def _chip_model(self, design_name: str) -> ChipModel:
        if design_name not in self._chip_models:
            self._chip_models[design_name] = ChipModel(self.design(design_name))
        return self._chip_models[design_name]

    def _power_model(self, design_name: str) -> ChipPowerModel:
        if design_name not in self._power_models:
            self._power_models[design_name] = ChipPowerModel(self.design(design_name))
        return self._power_models[design_name]

    def evaluate_mix(self, design_name: str, mix: Mix, smt: bool = True) -> MixResult:
        """Evaluate one workload mix on one design (memoized)."""
        key = (design_name, tuple(mix), smt)
        if key in self._mix_cache:
            return self._mix_cache[key]
        return self.evaluate_mixes(design_name, [mix], smt)[0]

    def evaluate_mixes(
        self, design_name: str, mixes: Sequence[Mix], smt: bool = True
    ) -> List[MixResult]:
        """Evaluate a batch of mixes on one design (memoized).

        With an engine attached, uncached points are looked up in the
        persistent store and misses are computed in parallel; otherwise the
        batch runs serially through the same code path as before.
        """
        keys = [(design_name, tuple(mix), smt) for mix in mixes]
        pending: List[Tuple[str, Tuple[str, ...], bool]] = []
        seen = set()
        for key in keys:
            if key not in self._mix_cache and key not in seen:
                pending.append(key)
                seen.add(key)
        if pending:
            with TRACER.span(
                "study.evaluate-batch",
                cat="study",
                design=design_name,
                pending=len(pending),
                smt=smt,
            ):
                if self.engine is not None:
                    from repro.engine.tasks import WorkUnit

                    design = self.design(design_name)
                    units = [
                        WorkUnit(
                            design=design,
                            mix=key[1],
                            smt=smt,
                            reference_uncore=self.reference_uncore,
                        )
                        for key in pending
                    ]
                    computed = self.engine.evaluate(units, on_failure="return")
                else:
                    computed = self._compute_mix_batch(pending)
                for key, result in zip(pending, computed):
                    self._mix_cache[key] = self._resolve_engine_result(key, result)
        return [self._mix_cache[key] for key in keys]

    def prefetch(
        self,
        design_names: Sequence[str],
        kind: str,
        thread_counts: Iterable[int],
        smt: bool = True,
    ) -> int:
        """Warm the memo for a (designs x thread counts) slab of the grid.

        All uncached points across every design go to the engine as one
        batch, maximizing worker occupancy; without an engine this is a
        plain serial warm-up.  Returns the number of points evaluated.
        """
        thread_counts = list(thread_counts)
        per_design_mixes = {n: self.mixes(kind, n) for n in thread_counts}
        pending: List[Tuple[str, Tuple[str, ...], bool]] = []
        seen = set()
        for name in design_names:
            self.design(name)  # fail fast on unknown designs
            for n in thread_counts:
                for mix in per_design_mixes[n]:
                    key = (name, tuple(mix), smt)
                    if key not in self._mix_cache and key not in seen:
                        pending.append(key)
                        seen.add(key)
        if not pending:
            return 0
        with TRACER.span(
            "study.prefetch",
            cat="study",
            designs=list(design_names),
            kind=kind,
            pending=len(pending),
        ):
            if self.engine is not None:
                from repro.engine.tasks import WorkUnit

                units = [
                    WorkUnit(
                        design=self.design(name),
                        mix=mix,
                        smt=point_smt,
                        reference_uncore=self.reference_uncore,
                    )
                    for name, mix, point_smt in pending
                ]
                computed = self.engine.evaluate(units, on_failure="return")
            else:
                computed = self._compute_mix_batch(pending)
            for key, result in zip(pending, computed):
                self._mix_cache[key] = self._resolve_engine_result(key, result)
        return len(pending)

    def _resolve_engine_result(
        self, key: Tuple[str, Tuple[str, ...], bool], result
    ) -> MixResult:
        """Unwrap one engine result, healing structured failures in-process.

        The engine isolates a crashing unit into a
        :class:`~repro.engine.tasks.UnitFailure` rather than aborting the
        batch; every other point's result (and its store write-back) has
        already survived.  For the failed point the study falls back to the
        plain serial evaluation path — the exact code that runs with no
        engine attached — so an engine-environment failure self-heals and a
        genuinely broken configuration raises the same error it would have
        raised before the engine existed.
        """
        from repro.engine.tasks import UnitFailure

        name, mix, smt = key
        if not isinstance(result, UnitFailure):
            # Seed the latency-hint cache from engine/store results too, so a
            # warm store also warm-starts the solver for nearby cold points.
            # Inflation is loaded/unloaded latency, so this reconstructs the
            # converged latency up to rounding; hints are advisory (the
            # solver certifies every warm bracket), so that is enough.
            hints = _latency_hints(self.design(name), smt)
            hints.setdefault(
                len(mix),
                result.mem_latency_inflation
                * self._chip_model(name).unloaded_mem_latency_ns,
            )
            return result
        return self._compute_mix(name, list(mix), smt)

    def _compute_mix(self, design_name: str, mix: Mix, smt: bool) -> MixResult:
        """The actual single-point evaluation (no memo, no engine)."""
        if METRICS.enabled:
            METRICS.inc("study.mix_computations")
        with TRACER.span(
            "study.compute-mix", cat="study", design=design_name, smt=smt
        ):
            design = self.design(design_name)
            profiles = profiles_for(mix)
            placement = Scheduler(design, smt=smt).place(profiles)
            hints = _latency_hints(design, smt)
            result = self._chip_model(design_name).evaluate(
                placement,
                smt=smt,
                mem_latency_hint_ns=_nearest_hint(hints, placement.num_threads),
            )
            hints[placement.num_threads] = result.mem_latency_ns
            mix_result = self._mix_result(design_name, mix, smt, placement, result)
        return mix_result

    def _compute_mix_batch(
        self, pending: Sequence[Tuple[str, Tuple[str, ...], bool]]
    ) -> List[MixResult]:
        """Serial batch evaluation: one lockstep solver call for all points.

        Bit-identical to mapping :meth:`_compute_mix` over ``pending`` —
        per-point placements, references and power are unchanged, and the
        lockstep bisection preserves every point's exact result — but the
        DRAM fixed points of the whole slab are solved together through the
        shared batch kernel, which is where the serial speedup comes from.

        The batch runs in chunks of :data:`_BATCH_CHUNK` points: warm-start
        hints recorded by an earlier chunk tighten the bisection brackets of
        every later chunk, which a single whole-slab call could not exploit.
        """
        out: List[MixResult] = []
        for start in range(0, len(pending), _BATCH_CHUNK):
            chunk = pending[start : start + _BATCH_CHUNK]
            requests = []
            placements = []
            hint_maps = []
            for design_name, mix, smt in chunk:
                if METRICS.enabled:
                    METRICS.inc("study.mix_computations")
                with TRACER.span(
                    "study.compute-mix", cat="study", design=design_name, smt=smt
                ):
                    design = self.design(design_name)
                    placement = Scheduler(design, smt=smt).place(
                        profiles_for(list(mix))
                    )
                hints = _latency_hints(design, smt)
                requests.append(
                    (
                        self._chip_model(design_name),
                        placement,
                        smt,
                        _nearest_hint(hints, placement.num_threads),
                    )
                )
                placements.append(placement)
                hint_maps.append(hints)
            chip_results = evaluate_batch(requests)
            for key, placement, hints, result in zip(
                chunk, placements, hint_maps, chip_results
            ):
                design_name, mix, smt = key
                hints[placement.num_threads] = result.mem_latency_ns
                out.append(
                    self._mix_result(design_name, mix, smt, placement, result)
                )
        return out

    def _mix_result(
        self,
        design_name: str,
        mix: Mix,
        smt: bool,
        placement,
        result: ChipResult,
    ) -> MixResult:
        """Fold one chip solve into the study-level per-mix record."""
        specs = [spec for threads in placement.core_threads for spec in threads]
        refs = [self._reference_ips(spec.profile) for spec in specs]
        shared = [t.ips for t in result.threads]
        power_model = self._power_model(design_name)
        return MixResult(
            design_name=design_name,
            mix=tuple(mix),
            smt=smt,
            stp=stp(shared, refs),
            antt=antt(shared, refs),
            power_gated_w=power_model.power(result, power_gate_idle=True),
            power_ungated_w=power_model.power(result, power_gate_idle=False),
            bus_utilization=result.bus_utilization,
            mem_latency_inflation=result.mem_latency_inflation,
        )

    def _reference_ips(self, profile) -> float:
        """Isolated-on-big reference, using the (possibly overridden) uncore.

        References use the same uncore as the study designs, so the
        Section 8.2 experiment normalizes against a 16 GB/s baseline just as
        the paper does.
        """
        hit = self._ref_ips_memo.get(id(profile))
        if hit is not None and hit[0] is profile:
            return hit[1]
        ref = _study_reference(profile, self.reference_uncore)
        self._ref_ips_memo[id(profile)] = (profile, ref)
        return ref

    # ------------------------------------------------------------------ #
    # mixes                                                               #
    # ------------------------------------------------------------------ #

    def mixes(self, kind: str, n_threads: int) -> List[Mix]:
        """The workload mixes for one thread count (homogeneous or heterogeneous)."""
        if kind not in WORKLOAD_KINDS:
            raise ValueError(f"kind must be one of {WORKLOAD_KINDS}, got {kind!r}")
        if kind == "homogeneous":
            return homogeneous_mixes(n_threads, self.benchmarks)
        return heterogeneous_mixes(
            n_threads, self.mixes_per_count, self.seed, self.benchmarks
        )

    # ------------------------------------------------------------------ #
    # aggregates                                                          #
    # ------------------------------------------------------------------ #

    def mean_stp(self, design_name: str, kind: str, n_threads: int, smt: bool = True) -> float:
        """Harmonic-mean STP across the mixes at one thread count."""
        results = self.evaluate_mixes(design_name, self.mixes(kind, n_threads), smt)
        return harmonic_mean([r.stp for r in results])

    def mean_antt(self, design_name: str, kind: str, n_threads: int, smt: bool = True) -> float:
        """Arithmetic-mean ANTT across the mixes at one thread count."""
        results = self.evaluate_mixes(design_name, self.mixes(kind, n_threads), smt)
        return arithmetic_mean([r.antt for r in results])

    def mean_power(
        self,
        design_name: str,
        kind: str,
        n_threads: int,
        smt: bool = True,
        power_gate_idle: bool = True,
    ) -> float:
        """Arithmetic-mean chip power across the mixes at one thread count."""
        results = self.evaluate_mixes(design_name, self.mixes(kind, n_threads), smt)
        values = [
            r.power_gated_w if power_gate_idle else r.power_ungated_w
            for r in results
        ]
        return arithmetic_mean(values)

    def throughput_curve(
        self,
        design_name: str,
        kind: str,
        thread_counts: Iterable[int] = range(1, 25),
        smt: bool = True,
    ) -> Dict[int, float]:
        """Mean STP as a function of thread count (Figure 3)."""
        thread_counts = list(thread_counts)
        self.prefetch([design_name], kind, thread_counts, smt)
        return {
            n: self.mean_stp(design_name, kind, n, smt) for n in thread_counts
        }

    def antt_curve(
        self,
        design_name: str,
        kind: str,
        thread_counts: Iterable[int] = range(1, 25),
        smt: bool = True,
    ) -> Dict[int, float]:
        """Mean ANTT as a function of thread count (Figure 5)."""
        thread_counts = list(thread_counts)
        self.prefetch([design_name], kind, thread_counts, smt)
        return {
            n: self.mean_antt(design_name, kind, n, smt) for n in thread_counts
        }

    def aggregate_stp(
        self,
        design_name: str,
        kind: str,
        distribution: ThreadCountDistribution,
        smt: bool = True,
    ) -> float:
        """Distribution-weighted average STP (Figures 6-10).

        Only thread counts with nonzero probability are evaluated — for
        timeline-derived distributions with gaps in their support this
        skips grid points that cannot affect the expectation.
        """
        curve = self.throughput_curve(design_name, kind, distribution.support, smt)
        return distribution.expectation(curve)

    def aggregate_power(
        self,
        design_name: str,
        kind: str,
        distribution: ThreadCountDistribution,
        smt: bool = True,
        power_gate_idle: bool = True,
    ) -> float:
        """Distribution-weighted average chip power (Figure 15)."""
        counts = distribution.support
        self.prefetch([design_name], kind, counts, smt)
        values = {
            n: self.mean_power(design_name, kind, n, smt, power_gate_idle)
            for n in counts
        }
        return distribution.expectation(values)

    def per_benchmark_aggregate(
        self,
        design_name: str,
        benchmark: str,
        distribution: ThreadCountDistribution,
        smt: bool = True,
    ) -> float:
        """Distribution-weighted STP for homogeneous mixes of one benchmark (Figure 9)."""
        counts = distribution.support
        results = self.evaluate_mixes(
            design_name, [[benchmark] * n for n in counts], smt
        )
        values = {n: r.stp for n, r in zip(counts, results)}
        return distribution.expectation(values)

    def best_design(
        self,
        kind: str,
        distribution: ThreadCountDistribution,
        smt: bool = True,
        exclude: Sequence[str] = (),
    ) -> Tuple[str, float]:
        """The design with the highest distribution-weighted STP."""
        candidates = [n for n in self.designs if n not in set(exclude)]
        scored = {
            name: self.aggregate_stp(name, kind, distribution, smt)
            for name in candidates
        }
        best = max(scored, key=scored.get)
        return best, scored[best]


#: Keyed memo of isolated-on-big references; values depend only on
#: (profile, uncore), so sharing it process-wide is sound.  Cleared by
#: :func:`clear_reference_cache` (tests that tweak model globals).
_REFERENCE_CACHE = KeyedCache("study-reference-ips")


def _study_reference(profile, uncore) -> float:
    """Isolated-on-big instructions/second under a given uncore (memoized)."""
    from repro.interval.contention import isolated_ips

    return _REFERENCE_CACHE.get_or_compute(
        (profile, uncore), lambda: isolated_ips(profile, BIG, uncore)
    )


def clear_reference_cache() -> None:
    """Drop the memoized isolated-on-big references."""
    _REFERENCE_CACHE.clear()


#: Converged loaded DRAM latencies by (design, smt) -> {n_threads: ns}, used
#: to warm-start the chip solver's bisection bracket from the nearest
#: already-solved grid point (same design, adjacent thread count).  Hints are
#: purely advisory: the solver certifies every warm bracket and falls back to
#: the cold bracket, so stale or wrong entries cost at most two evaluations.
# Points per lockstep solver call in :meth:`DesignSpaceStudy._compute_mix_batch`.
# Small enough that early chunks seed warm-start hints for later ones, large
# enough that the batch kernel amortizes its per-call setup.
_BATCH_CHUNK = 32

_LATENCY_HINT_CACHE = KeyedCache("study-latency-hints")


def _latency_hints(design: ChipDesign, smt: bool) -> Dict[int, float]:
    """The mutable hint map for one (design, SMT mode) slice of the grid."""
    return _LATENCY_HINT_CACHE.get_or_compute((design, smt), dict)


def _nearest_hint(hints: Dict[int, float], n_threads: int) -> Optional[float]:
    """Hint from the nearest thread count (ties break toward fewer threads)."""
    if not hints:
        return None
    nearest = min(hints, key=lambda k: (abs(k - n_threads), k))
    return hints[nearest]


def clear_latency_hint_cache() -> None:
    """Drop the solver warm-start hints (tests that tweak model globals)."""
    _LATENCY_HINT_CACHE.clear()

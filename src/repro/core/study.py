"""Design-space study orchestration.

:class:`DesignSpaceStudy` evaluates (design x workload x thread count x SMT)
points with the interval chip model and aggregates them the way the paper's
figures do:

* per-thread-count average performance: **harmonic mean STP** (a rate) and
  arithmetic-mean ANTT across the workload mixes at that count;
* distribution-weighted averages: the expectation of per-count mean STP
  under a thread-count distribution (Figures 6-10);
* per-benchmark averages for Figure 9;
* power and energy per point for Figures 14-15.

All evaluations are memoized in-process; pass an
:class:`~repro.engine.executor.Engine` to add parallel evaluation and a
persistent, content-addressed result store shared across processes and runs
(see :mod:`repro.engine`).
"""

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.designs import ChipDesign, all_designs
from repro.core.distributions import ThreadCountDistribution
from repro.core.metrics import antt, arithmetic_mean, harmonic_mean, stp
from repro.core.scheduler import Scheduler
from repro.engine.store import KeyedCache
from repro.interval.contention import ChipModel, ChipResult
from repro.obs import METRICS, TRACER
from repro.microarch.config import BIG
from repro.microarch.uncore import DEFAULT_UNCORE, UncoreConfig
from repro.power.mcpat import ChipPowerModel
from repro.workloads.multiprogram import (
    Mix,
    heterogeneous_mixes,
    homogeneous_mixes,
    profiles_for,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.executor import Engine

#: Workload-mix kinds, matching the paper's terminology.
WORKLOAD_KINDS = ("homogeneous", "heterogeneous")


@dataclass(frozen=True)
class MixResult:
    """Outcome of one (design, mix, SMT) evaluation."""

    design_name: str
    mix: Tuple[str, ...]
    smt: bool
    stp: float
    antt: float
    power_gated_w: float
    power_ungated_w: float
    bus_utilization: float
    mem_latency_inflation: float


class DesignSpaceStudy:
    """Runs and caches the paper's design-space grid.

    Parameters
    ----------
    designs:
        Chip designs under study (default: the nine of Figure 2).
    uncore:
        Optional uncore override applied to every design (e.g. the 16 GB/s
        bus of Section 8.2).
    benchmarks:
        Benchmark names for mix construction (default: the 12 SPEC-like
        profiles).
    seed:
        Seed for balanced random heterogeneous mixes.
    mixes_per_count:
        Number of heterogeneous mixes per thread count (the paper uses 12).
    engine:
        Optional :class:`repro.engine.executor.Engine`: batch evaluations
        are then looked up in its persistent result store and misses are
        computed in parallel across worker processes.  Without an engine,
        everything runs serially in-process exactly as before.
    reference_uncore:
        Uncore for the isolated-on-big reference runs that normalize STP
        and ANTT; defaults to the first design's uncore.
    """

    def __init__(
        self,
        designs: Optional[Sequence[ChipDesign]] = None,
        uncore: Optional[UncoreConfig] = None,
        benchmarks: Optional[Sequence[str]] = None,
        seed: int = 42,
        mixes_per_count: int = 12,
        engine: Optional["Engine"] = None,
        reference_uncore: Optional[UncoreConfig] = None,
    ):
        base = list(designs) if designs is not None else all_designs()
        if uncore is not None:
            base = [d.with_uncore(uncore) for d in base]
        self.designs: Dict[str, ChipDesign] = {d.name: d for d in base}
        self.benchmarks = list(benchmarks) if benchmarks is not None else None
        self.seed = seed
        self.mixes_per_count = mixes_per_count
        self.engine = engine
        if reference_uncore is not None:
            self.reference_uncore = reference_uncore
        elif base:
            self.reference_uncore = base[0].uncore
        else:
            self.reference_uncore = DEFAULT_UNCORE
        self._chip_models: Dict[str, ChipModel] = {}
        self._power_models: Dict[str, ChipPowerModel] = {}
        self._mix_cache: Dict[Tuple[str, Tuple[str, ...], bool], MixResult] = {}

    # ------------------------------------------------------------------ #
    # single points                                                       #
    # ------------------------------------------------------------------ #

    def design(self, name: str) -> ChipDesign:
        try:
            return self.designs[name]
        except KeyError:
            raise KeyError(
                f"design {name!r} not in this study; have {sorted(self.designs)}"
            ) from None

    def _chip_model(self, design_name: str) -> ChipModel:
        if design_name not in self._chip_models:
            self._chip_models[design_name] = ChipModel(self.design(design_name))
        return self._chip_models[design_name]

    def _power_model(self, design_name: str) -> ChipPowerModel:
        if design_name not in self._power_models:
            self._power_models[design_name] = ChipPowerModel(self.design(design_name))
        return self._power_models[design_name]

    def evaluate_mix(self, design_name: str, mix: Mix, smt: bool = True) -> MixResult:
        """Evaluate one workload mix on one design (memoized)."""
        key = (design_name, tuple(mix), smt)
        if key in self._mix_cache:
            return self._mix_cache[key]
        return self.evaluate_mixes(design_name, [mix], smt)[0]

    def evaluate_mixes(
        self, design_name: str, mixes: Sequence[Mix], smt: bool = True
    ) -> List[MixResult]:
        """Evaluate a batch of mixes on one design (memoized).

        With an engine attached, uncached points are looked up in the
        persistent store and misses are computed in parallel; otherwise the
        batch runs serially through the same code path as before.
        """
        keys = [(design_name, tuple(mix), smt) for mix in mixes]
        pending: List[Tuple[str, Tuple[str, ...], bool]] = []
        seen = set()
        for key in keys:
            if key not in self._mix_cache and key not in seen:
                pending.append(key)
                seen.add(key)
        if pending:
            with TRACER.span(
                "study.evaluate-batch",
                cat="study",
                design=design_name,
                pending=len(pending),
                smt=smt,
            ):
                if self.engine is not None:
                    from repro.engine.tasks import WorkUnit

                    design = self.design(design_name)
                    units = [
                        WorkUnit(
                            design=design,
                            mix=key[1],
                            smt=smt,
                            reference_uncore=self.reference_uncore,
                        )
                        for key in pending
                    ]
                    computed = self.engine.evaluate(units, on_failure="return")
                else:
                    computed = [
                        self._compute_mix(design_name, list(key[1]), smt)
                        for key in pending
                    ]
                for key, result in zip(pending, computed):
                    self._mix_cache[key] = self._resolve_engine_result(key, result)
        return [self._mix_cache[key] for key in keys]

    def prefetch(
        self,
        design_names: Sequence[str],
        kind: str,
        thread_counts: Iterable[int],
        smt: bool = True,
    ) -> int:
        """Warm the memo for a (designs x thread counts) slab of the grid.

        All uncached points across every design go to the engine as one
        batch, maximizing worker occupancy; without an engine this is a
        plain serial warm-up.  Returns the number of points evaluated.
        """
        thread_counts = list(thread_counts)
        per_design_mixes = {n: self.mixes(kind, n) for n in thread_counts}
        pending: List[Tuple[str, Tuple[str, ...], bool]] = []
        seen = set()
        for name in design_names:
            self.design(name)  # fail fast on unknown designs
            for n in thread_counts:
                for mix in per_design_mixes[n]:
                    key = (name, tuple(mix), smt)
                    if key not in self._mix_cache and key not in seen:
                        pending.append(key)
                        seen.add(key)
        if not pending:
            return 0
        with TRACER.span(
            "study.prefetch",
            cat="study",
            designs=list(design_names),
            kind=kind,
            pending=len(pending),
        ):
            if self.engine is not None:
                from repro.engine.tasks import WorkUnit

                units = [
                    WorkUnit(
                        design=self.design(name),
                        mix=mix,
                        smt=point_smt,
                        reference_uncore=self.reference_uncore,
                    )
                    for name, mix, point_smt in pending
                ]
                computed = self.engine.evaluate(units, on_failure="return")
            else:
                computed = [
                    self._compute_mix(name, list(mix), point_smt)
                    for name, mix, point_smt in pending
                ]
            for key, result in zip(pending, computed):
                self._mix_cache[key] = self._resolve_engine_result(key, result)
        return len(pending)

    def _resolve_engine_result(
        self, key: Tuple[str, Tuple[str, ...], bool], result
    ) -> MixResult:
        """Unwrap one engine result, healing structured failures in-process.

        The engine isolates a crashing unit into a
        :class:`~repro.engine.tasks.UnitFailure` rather than aborting the
        batch; every other point's result (and its store write-back) has
        already survived.  For the failed point the study falls back to the
        plain serial evaluation path — the exact code that runs with no
        engine attached — so an engine-environment failure self-heals and a
        genuinely broken configuration raises the same error it would have
        raised before the engine existed.
        """
        from repro.engine.tasks import UnitFailure

        if not isinstance(result, UnitFailure):
            return result
        name, mix, smt = key
        return self._compute_mix(name, list(mix), smt)

    def _compute_mix(self, design_name: str, mix: Mix, smt: bool) -> MixResult:
        """The actual single-point evaluation (no memo, no engine)."""
        if METRICS.enabled:
            METRICS.inc("study.mix_computations")
        with TRACER.span(
            "study.compute-mix", cat="study", design=design_name, smt=smt
        ):
            design = self.design(design_name)
            profiles = profiles_for(mix)
            placement = Scheduler(design, smt=smt).place(profiles)
            result = self._chip_model(design_name).evaluate(placement, smt=smt)
            specs = [spec for threads in placement.core_threads for spec in threads]
            refs = [self._reference_ips(spec.profile) for spec in specs]
            shared = [t.ips for t in result.threads]
            power_model = self._power_model(design_name)
            mix_result = MixResult(
                design_name=design_name,
                mix=tuple(mix),
                smt=smt,
                stp=stp(shared, refs),
                antt=antt(shared, refs),
                power_gated_w=power_model.power(result, power_gate_idle=True),
                power_ungated_w=power_model.power(result, power_gate_idle=False),
                bus_utilization=result.bus_utilization,
                mem_latency_inflation=result.mem_latency_inflation,
            )
        return mix_result

    def _reference_ips(self, profile) -> float:
        """Isolated-on-big reference, using the (possibly overridden) uncore.

        References use the same uncore as the study designs, so the
        Section 8.2 experiment normalizes against a 16 GB/s baseline just as
        the paper does.
        """
        return _study_reference(profile, self.reference_uncore)

    # ------------------------------------------------------------------ #
    # mixes                                                               #
    # ------------------------------------------------------------------ #

    def mixes(self, kind: str, n_threads: int) -> List[Mix]:
        """The workload mixes for one thread count (homogeneous or heterogeneous)."""
        if kind not in WORKLOAD_KINDS:
            raise ValueError(f"kind must be one of {WORKLOAD_KINDS}, got {kind!r}")
        if kind == "homogeneous":
            return homogeneous_mixes(n_threads, self.benchmarks)
        return heterogeneous_mixes(
            n_threads, self.mixes_per_count, self.seed, self.benchmarks
        )

    # ------------------------------------------------------------------ #
    # aggregates                                                          #
    # ------------------------------------------------------------------ #

    def mean_stp(self, design_name: str, kind: str, n_threads: int, smt: bool = True) -> float:
        """Harmonic-mean STP across the mixes at one thread count."""
        results = self.evaluate_mixes(design_name, self.mixes(kind, n_threads), smt)
        return harmonic_mean([r.stp for r in results])

    def mean_antt(self, design_name: str, kind: str, n_threads: int, smt: bool = True) -> float:
        """Arithmetic-mean ANTT across the mixes at one thread count."""
        results = self.evaluate_mixes(design_name, self.mixes(kind, n_threads), smt)
        return arithmetic_mean([r.antt for r in results])

    def mean_power(
        self,
        design_name: str,
        kind: str,
        n_threads: int,
        smt: bool = True,
        power_gate_idle: bool = True,
    ) -> float:
        """Arithmetic-mean chip power across the mixes at one thread count."""
        results = self.evaluate_mixes(design_name, self.mixes(kind, n_threads), smt)
        values = [
            r.power_gated_w if power_gate_idle else r.power_ungated_w
            for r in results
        ]
        return arithmetic_mean(values)

    def throughput_curve(
        self,
        design_name: str,
        kind: str,
        thread_counts: Iterable[int] = range(1, 25),
        smt: bool = True,
    ) -> Dict[int, float]:
        """Mean STP as a function of thread count (Figure 3)."""
        thread_counts = list(thread_counts)
        self.prefetch([design_name], kind, thread_counts, smt)
        return {
            n: self.mean_stp(design_name, kind, n, smt) for n in thread_counts
        }

    def antt_curve(
        self,
        design_name: str,
        kind: str,
        thread_counts: Iterable[int] = range(1, 25),
        smt: bool = True,
    ) -> Dict[int, float]:
        """Mean ANTT as a function of thread count (Figure 5)."""
        thread_counts = list(thread_counts)
        self.prefetch([design_name], kind, thread_counts, smt)
        return {
            n: self.mean_antt(design_name, kind, n, smt) for n in thread_counts
        }

    def aggregate_stp(
        self,
        design_name: str,
        kind: str,
        distribution: ThreadCountDistribution,
        smt: bool = True,
    ) -> float:
        """Distribution-weighted average STP (Figures 6-10)."""
        curve = self.throughput_curve(
            design_name, kind, range(1, distribution.max_threads + 1), smt
        )
        return distribution.expectation(curve)

    def aggregate_power(
        self,
        design_name: str,
        kind: str,
        distribution: ThreadCountDistribution,
        smt: bool = True,
        power_gate_idle: bool = True,
    ) -> float:
        """Distribution-weighted average chip power (Figure 15)."""
        counts = range(1, distribution.max_threads + 1)
        self.prefetch([design_name], kind, counts, smt)
        values = {
            n: self.mean_power(design_name, kind, n, smt, power_gate_idle)
            for n in counts
        }
        return distribution.expectation(values)

    def per_benchmark_aggregate(
        self,
        design_name: str,
        benchmark: str,
        distribution: ThreadCountDistribution,
        smt: bool = True,
    ) -> float:
        """Distribution-weighted STP for homogeneous mixes of one benchmark (Figure 9)."""
        counts = range(1, distribution.max_threads + 1)
        results = self.evaluate_mixes(
            design_name, [[benchmark] * n for n in counts], smt
        )
        values = {n: r.stp for n, r in zip(counts, results)}
        return distribution.expectation(values)

    def best_design(
        self,
        kind: str,
        distribution: ThreadCountDistribution,
        smt: bool = True,
        exclude: Sequence[str] = (),
    ) -> Tuple[str, float]:
        """The design with the highest distribution-weighted STP."""
        candidates = [n for n in self.designs if n not in set(exclude)]
        scored = {
            name: self.aggregate_stp(name, kind, distribution, smt)
            for name in candidates
        }
        best = max(scored, key=scored.get)
        return best, scored[best]


#: Keyed memo of isolated-on-big references; values depend only on
#: (profile, uncore), so sharing it process-wide is sound.  Cleared by
#: :func:`clear_reference_cache` (tests that tweak model globals).
_REFERENCE_CACHE = KeyedCache("study-reference-ips")


def _study_reference(profile, uncore) -> float:
    """Isolated-on-big instructions/second under a given uncore (memoized)."""
    from repro.interval.contention import isolated_ips

    return _REFERENCE_CACHE.get_or_compute(
        (profile, uncore), lambda: isolated_ips(profile, BIG, uncore)
    )


def clear_reference_cache() -> None:
    """Drop the memoized isolated-on-big references."""
    _REFERENCE_CACHE.clear()

"""Ideal dynamic multi-core model (Section 6 of the paper).

A dynamic multi-core (core fusion [11], composable processors [17]) can
reconfigure itself between many small cores and a few large cores.  The
paper compares against an **ideal** dynamic machine: at every thread count
and for every workload it morphs, with zero overhead, into whichever of the
nine power-equivalent configurations performs best.  This is deliberately
optimistic in favour of the dynamic design — fusing real cores costs time,
area and power — which makes the paper's Finding #8 (the 4B SMT design is
competitive anyway) conservative.

:class:`IdealDynamicMulticore` wraps a :class:`DesignSpaceStudy` and takes
the per-point maximum across the configurations, with or without SMT.
"""

from typing import Dict, Iterable, Optional, Sequence

from repro.core.designs import DESIGN_ORDER
from repro.core.metrics import harmonic_mean
from repro.core.study import DesignSpaceStudy


class IdealDynamicMulticore:
    """Best-of-N oracle over a set of chip designs."""

    def __init__(
        self,
        study: DesignSpaceStudy,
        design_names: Optional[Sequence[str]] = None,
    ):
        self.study = study
        self.design_names = (
            list(design_names) if design_names is not None else list(DESIGN_ORDER)
        )
        missing = [n for n in self.design_names if n not in study.designs]
        if missing:
            raise ValueError(f"designs {missing} not present in the study")

    def mix_stp(self, mix: Sequence[str], smt: bool) -> float:
        """Best achievable STP for one mix: morph into the best configuration.

        A dynamic machine that *supports* SMT may still choose not to engage
        it (running one thread per core and time-sharing instead), so with
        ``smt=True`` the oracle takes the better of both scheduling modes.
        """
        best = max(
            self.study.evaluate_mix(name, list(mix), False).stp
            for name in self.design_names
        )
        if smt:
            best = max(
                best,
                max(
                    self.study.evaluate_mix(name, list(mix), True).stp
                    for name in self.design_names
                ),
            )
        return best

    def mean_stp(self, kind: str, n_threads: int, smt: bool) -> float:
        """Harmonic-mean best-configuration STP at one thread count.

        The oracle picks the best configuration *per workload*, as the paper
        does ("chooses the best performing configuration ... at each thread
        count for each workload").
        """
        values = [
            self.mix_stp(mix, smt) for mix in self.study.mixes(kind, n_threads)
        ]
        return harmonic_mean(values)

    def throughput_curve(
        self,
        kind: str,
        thread_counts: Iterable[int] = range(1, 25),
        smt: bool = False,
    ) -> Dict[int, float]:
        """Best-of-N STP vs thread count (the 'dynamic' lines of Figure 13)."""
        return {n: self.mean_stp(kind, n, smt) for n in thread_counts}

"""System-level performance metrics for multi-program workloads.

The paper uses the metrics of Eyerman & Eeckhout, *System-level performance
metrics for multi-program workloads* (IEEE Micro 2008) [7]:

* **STP** (system throughput, a.k.a. weighted speedup [27]) — the number of
  jobs completed per unit time relative to isolated execution:
  ``STP = sum_i perf_shared_i / perf_isolated_i``.  A *rate* metric, so
  averages across workloads use the harmonic mean.
* **ANTT** (average normalized turnaround time) — mean per-program slowdown:
  ``ANTT = (1/n) sum_i perf_isolated_i / perf_shared_i``.  A *time* metric,
  so averages across workloads use the arithmetic mean.

Both are normalized against isolated execution on the **big** core
(Section 3.2 of the paper), regardless of which core the thread actually ran
on — so STP of one thread on a small core is < 1.
"""

from typing import Iterable, Sequence

from repro.util import check_positive


def stp(shared_perf: Sequence[float], isolated_perf: Sequence[float]) -> float:
    """System throughput: sum of per-thread normalized progress rates."""
    _check_aligned(shared_perf, isolated_perf)
    return sum(s / i for s, i in zip(shared_perf, isolated_perf))


def antt(shared_perf: Sequence[float], isolated_perf: Sequence[float]) -> float:
    """Average normalized turnaround time: mean per-thread slowdown (>= is worse)."""
    _check_aligned(shared_perf, isolated_perf)
    slowdowns = [i / s for s, i in zip(shared_perf, isolated_perf)]
    return sum(slowdowns) / len(slowdowns)


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean, the correct average for rate metrics such as STP."""
    values = list(values)
    if not values:
        raise ValueError("harmonic_mean of an empty sequence")
    for v in values:
        check_positive("value", v)
    return len(values) / sum(1.0 / v for v in values)


def arithmetic_mean(values: Iterable[float]) -> float:
    """Arithmetic mean, the correct average for time metrics such as ANTT."""
    values = list(values)
    if not values:
        raise ValueError("arithmetic_mean of an empty sequence")
    return sum(values) / len(values)


def energy_delay_product(power_watts: float, throughput: float) -> float:
    """EDP proxy: energy per unit work times time per unit work.

    With throughput ``T`` (work/second) and power ``P``, energy per unit of
    work is ``P/T`` and delay per unit of work is ``1/T``, so
    ``EDP = P / T**2``.  Lower is better.
    """
    check_positive("power_watts", power_watts)
    check_positive("throughput", throughput)
    return power_watts / throughput**2


def _check_aligned(
    shared_perf: Sequence[float], isolated_perf: Sequence[float]
) -> None:
    if len(shared_perf) != len(isolated_perf):
        raise ValueError(
            f"length mismatch: {len(shared_perf)} shared vs "
            f"{len(isolated_perf)} isolated values"
        )
    if not shared_perf:
        raise ValueError("metrics need at least one thread")
    for s in shared_perf:
        check_positive("shared_perf", s)
    for i in isolated_perf:
        check_positive("isolated_perf", i)

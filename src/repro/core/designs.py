"""The power-equivalent chip designs of the study (Figure 2 of the paper).

The total chip power budget equals 4 big cores, 8 medium cores or 20 small
cores (1 big ~ 2 medium ~ 5 small), plus a shared LLC.  Mixing big cores with
medium *or* small cores (never medium with small) yields nine designs:

======  ==============================
name    composition
======  ==============================
4B      4 big
3B2m    3 big + 2 medium
3B5s    3 big + 5 small
2B4m    2 big + 4 medium
2B10s   2 big + 10 small
1B6m    1 big + 6 medium
1B15s   1 big + 15 small
8m      8 medium
20s     20 small
======  ==============================

Section 8.1 adds four alternative homogeneous designs built from the
larger-cache and higher-frequency medium/small variants: ``6m_lc``,
``16s_lc``, ``6m_hf`` and ``16s_hf``.

With SMT enabled, every design supports up to 24 hardware threads
(big: 6 contexts, medium: 3, small: 2).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.microarch.config import (
    BIG,
    MEDIUM,
    MEDIUM_HF,
    MEDIUM_LC,
    SMALL,
    SMALL_HF,
    SMALL_LC,
    CoreConfig,
)
from repro.microarch.uncore import DEFAULT_UNCORE, UncoreConfig


@dataclass(frozen=True)
class ChipDesign:
    """A multi-core chip: an ordered list of cores plus a shared uncore.

    Cores are ordered from most to least powerful; the scheduler relies on
    this ordering to implement the paper's "big cores first" policy.
    """

    name: str
    cores: Tuple[CoreConfig, ...]
    uncore: UncoreConfig = DEFAULT_UNCORE

    def __post_init__(self) -> None:
        if not self.cores:
            raise ValueError("a chip design needs at least one core")

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    @property
    def max_threads(self) -> int:
        """Hardware thread capacity with SMT enabled in every core."""
        return sum(core.max_smt_contexts for core in self.cores)

    @property
    def power_budget_weight(self) -> float:
        """Total power weight in big-core equivalents (4.0 for every design)."""
        return sum(core.power_weight for core in self.cores)

    @property
    def is_homogeneous(self) -> bool:
        return len({core.name for core in self.cores}) == 1

    def core_counts(self) -> Dict[str, int]:
        """Number of cores of each type, keyed by core-config name."""
        counts: Dict[str, int] = {}
        for core in self.cores:
            counts[core.name] = counts.get(core.name, 0) + 1
        return counts

    def with_uncore(self, uncore: UncoreConfig) -> "ChipDesign":
        """A copy of this design with a different uncore (e.g. 16 GB/s bus)."""
        return ChipDesign(self.name, self.cores, uncore)


def _mix(name: str, *parts: Tuple[int, CoreConfig]) -> ChipDesign:
    cores: List[CoreConfig] = []
    for count, config in parts:
        cores.extend([config] * count)
    return ChipDesign(name=name, cores=tuple(cores))


#: The nine power-equivalent designs of Figure 2, keyed by name.
DESIGNS: Dict[str, ChipDesign] = {
    design.name: design
    for design in (
        _mix("4B", (4, BIG)),
        _mix("3B2m", (3, BIG), (2, MEDIUM)),
        _mix("3B5s", (3, BIG), (5, SMALL)),
        _mix("2B4m", (2, BIG), (4, MEDIUM)),
        _mix("2B10s", (2, BIG), (10, SMALL)),
        _mix("1B6m", (1, BIG), (6, MEDIUM)),
        _mix("1B15s", (1, BIG), (15, SMALL)),
        _mix("8m", (8, MEDIUM)),
        _mix("20s", (20, SMALL)),
    )
}

#: Canonical ordering used in the paper's figures.
DESIGN_ORDER: Tuple[str, ...] = (
    "4B",
    "8m",
    "20s",
    "3B2m",
    "3B5s",
    "2B4m",
    "2B10s",
    "1B6m",
    "1B15s",
)

#: Section 8.1 alternative designs (larger caches / higher frequency shrink
#: the core count the power budget can afford).
ALTERNATIVE_DESIGNS: Dict[str, ChipDesign] = {
    design.name: design
    for design in (
        _mix("6m_lc", (6, MEDIUM_LC)),
        _mix("16s_lc", (16, SMALL_LC)),
        _mix("6m_hf", (6, MEDIUM_HF)),
        _mix("16s_hf", (16, SMALL_HF)),
    )
}


def get_design(name: str) -> ChipDesign:
    """Look up a design by name from the nine baseline or four alternative designs."""
    if name in DESIGNS:
        return DESIGNS[name]
    if name in ALTERNATIVE_DESIGNS:
        return ALTERNATIVE_DESIGNS[name]
    known = sorted(DESIGNS) + sorted(ALTERNATIVE_DESIGNS)
    raise KeyError(f"unknown design {name!r}; known designs: {known}")


def all_designs(include_alternatives: bool = False) -> List[ChipDesign]:
    """The nine baseline designs in figure order, optionally plus Section 8.1 variants."""
    designs = [DESIGNS[name] for name in DESIGN_ORDER]
    if include_alternatives:
        designs.extend(ALTERNATIVE_DESIGNS.values())
    return designs

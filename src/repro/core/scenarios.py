"""Named thread-count scenarios beyond the paper's three distributions.

The paper evaluates every design against three fixed thread-count
distributions (uniform, datacenter, mirrored datacenter).  Van Stralen's
scenario-based exploration work argues the interesting question is the
other way around: given a *scenario* — a workload arrival pattern a
deployment actually faces — which design wins?  This module provides a
catalog of such scenarios, each a deterministic-per-seed arrival process
(built on :func:`repro.core.timeline.simulate_arrival_process`) whose
simulated timeline exports a time-weighted
:class:`~repro.core.distributions.ThreadCountDistribution` via
:meth:`~repro.core.timeline.ThreadCountTimeline.to_distribution`.

Catalog (all scale their offered load with ``max_threads``):

* ``steady`` — stationary Poisson arrivals at moderate load; the
  Section 2.1 baseline process.
* ``datacenter`` — a diurnal trace: sinusoidal day/night arrival rate
  (non-homogeneous Poisson via thinning) with near-idle troughs and
  peaks brushing capacity, the shape behind Figure 10(a).
* ``bursty`` — self-similar on/off traffic: exponential interarrivals
  inside bursts separated by Pareto(α=1.5) quiet gaps.
* ``flash-crowd`` — a background trickle punctuated by rare batch
  arrivals of many jobs at once; the queue drains through capacity.
* ``latency-classes`` — a priority mix of frequent short interactive
  jobs and rare long batch jobs sharing the machine.
* ``peak-load`` — offered load above capacity: the machine sits pegged
  near ``max_threads`` with a standing queue (the mirrored-datacenter
  regime).

Scenarios are registered in :data:`SCENARIOS`; look one up with
:func:`get_scenario` and feed ``scenario.distribution(...)`` to
:meth:`~repro.core.study.DesignSpaceStudy.aggregate_stp` or to the
adaptive searcher in :mod:`repro.explore`.
"""

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.core.distributions import ThreadCountDistribution
from repro.core.timeline import (
    ArrivalSimulation,
    Sampler,
    ThreadCountTimeline,
    simulate_arrival_process,
)
from repro.util import check_positive

#: Default simulation horizon (time units; service times are ~100).
DEFAULT_HORIZON = 20_000.0
#: Length of one simulated "day" for diurnal scenarios.
DAY = 5_000.0

#: A scenario's process factory: (max_threads,) -> (interarrival sampler,
#: service sampler, batch-size sampler or None).
ProcessFactory = Callable[
    [int],
    Tuple[Sampler, Sampler, Optional[Callable[[random.Random, float], int]]],
]


@dataclass(frozen=True)
class Scenario:
    """A named, deterministic-per-seed thread-count scenario."""

    name: str
    description: str
    process: ProcessFactory = field(repr=False)

    def simulate(
        self,
        max_threads: int = 24,
        horizon: float = DEFAULT_HORIZON,
        seed: int = 42,
    ) -> ArrivalSimulation:
        """Run the arrival process; full result with idle/queue stats."""
        check_positive("max_threads", max_threads)
        interarrival, service, batch = self.process(max_threads)
        return simulate_arrival_process(
            interarrival=interarrival,
            service=service,
            max_threads=max_threads,
            horizon=horizon,
            seed=seed,
            batch_size=batch,
        )

    def timeline(
        self,
        max_threads: int = 24,
        horizon: float = DEFAULT_HORIZON,
        seed: int = 42,
    ) -> ThreadCountTimeline:
        return self.simulate(max_threads, horizon, seed).timeline

    def distribution(
        self,
        max_threads: int = 24,
        horizon: float = DEFAULT_HORIZON,
        seed: int = 42,
    ) -> ThreadCountDistribution:
        """The scenario's time-weighted distribution, named
        ``<scenario>-<max_threads>``."""
        return self.timeline(max_threads, horizon, seed).to_distribution(
            max_threads=max_threads, name=f"{self.name}-{max_threads}"
        )


def _nonhomogeneous_poisson(
    rate: Callable[[float], float], rate_max: float
) -> Sampler:
    """Interarrival sampler for a non-homogeneous Poisson process.

    Standard thinning: propose candidate gaps at ``rate_max`` and accept
    each with probability ``rate(t)/rate_max``.  ``rate`` must never
    exceed ``rate_max``.
    """

    def sample(rng: random.Random, t: float) -> float:
        dt = 0.0
        while True:
            dt += rng.expovariate(rate_max)
            if rng.random() * rate_max < rate(t + dt):
                return dt

    return sample


def _exponential(mean: float) -> Sampler:
    return lambda rng, _t: rng.expovariate(1.0 / mean)


# --------------------------------------------------------------------- #
# Process factories
# --------------------------------------------------------------------- #

_SERVICE_MEAN = 100.0


def _steady(max_threads: int) -> Tuple[Sampler, Sampler, None]:
    # Offered load 0.45 * capacity: busy but rarely saturated.
    rate = 0.45 * max_threads / _SERVICE_MEAN
    return _exponential(1.0 / rate), _exponential(_SERVICE_MEAN), None


def _datacenter(max_threads: int) -> Tuple[Sampler, Sampler, None]:
    # Diurnal rate: near-idle troughs (6 % of peak) and midday peaks at
    # ~90 % of capacity — the Barroso-Hölzle utilization shape.
    peak = 0.9 * max_threads / _SERVICE_MEAN

    def rate(t: float) -> float:
        phase = math.sin(math.pi * ((t % DAY) / DAY))
        return peak * (0.06 + 0.94 * phase * phase)

    return (
        _nonhomogeneous_poisson(rate, peak),
        _exponential(_SERVICE_MEAN),
        None,
    )


def _bursty(max_threads: int) -> Tuple[Sampler, Sampler, None]:
    # On/off self-similar traffic: inside a burst, arrivals outpace
    # capacity turnover; bursts end after ~20 jobs (geometric) and are
    # separated by heavy-tailed Pareto(1.5) gaps.
    burst_rate = 2.0 * max_threads / _SERVICE_MEAN
    mean_burst_jobs = 20.0
    gap_scale = 2.0 * _SERVICE_MEAN

    def interarrival(rng: random.Random, _t: float) -> float:
        dt = rng.expovariate(burst_rate)
        if rng.random() < 1.0 / mean_burst_jobs:
            dt += gap_scale * rng.paretovariate(1.5)
        return dt

    return interarrival, _exponential(_SERVICE_MEAN), None


def _flash_crowd(max_threads: int) -> Tuple[
    Sampler, Sampler, Callable[[random.Random, float], int]
]:
    # A light background trickle (15 % load); ~3 % of arrival instants
    # are crowds of roughly 1.5x capacity jobs landing at once.
    rate = 0.15 * max_threads / _SERVICE_MEAN
    crowd_mean = 1.5 * max_threads

    def batch(rng: random.Random, _t: float) -> int:
        if rng.random() < 0.03:
            return 2 + int(rng.expovariate(1.0 / crowd_mean))
        return 1

    return _exponential(1.0 / rate), _exponential(_SERVICE_MEAN), batch


def _latency_classes(max_threads: int) -> Tuple[Sampler, Sampler, None]:
    # 85 % interactive jobs (mean 20) + 15 % batch jobs (mean 420):
    # overall mean service 80, offered load ~55 % of capacity.
    mean_service = 0.85 * 20.0 + 0.15 * 420.0
    rate = 0.55 * max_threads / mean_service

    def service(rng: random.Random, _t: float) -> float:
        if rng.random() < 0.85:
            return rng.expovariate(1.0 / 20.0)
        return rng.expovariate(1.0 / 420.0)

    return _exponential(1.0 / rate), service, None


def _peak_load(max_threads: int) -> Tuple[Sampler, Sampler, None]:
    # Offered load 1.25x capacity: pegged at max_threads with a standing
    # queue — probability mass concentrated at the top counts.
    rate = 1.25 * max_threads / _SERVICE_MEAN
    return _exponential(1.0 / rate), _exponential(_SERVICE_MEAN), None


#: The scenario catalog, keyed by name.
SCENARIOS: Dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            "steady",
            "stationary Poisson arrivals at moderate (45 %) load",
            _steady,
        ),
        Scenario(
            "datacenter",
            "diurnal trace: near-idle troughs, peaks brushing capacity",
            _datacenter,
        ),
        Scenario(
            "bursty",
            "self-similar on/off arrivals with Pareto(1.5) quiet gaps",
            _bursty,
        ),
        Scenario(
            "flash-crowd",
            "light trickle punctuated by rare batch crowds of jobs",
            _flash_crowd,
        ),
        Scenario(
            "latency-classes",
            "frequent short interactive jobs mixed with rare long batch jobs",
            _latency_classes,
        ),
        Scenario(
            "peak-load",
            "offered load above capacity: pegged near max threads",
            _peak_load,
        ),
    )
}


def scenario_names() -> Tuple[str, ...]:
    return tuple(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {', '.join(SCENARIOS)}"
        ) from None

"""Execution model for multi-threaded (PARSEC-like) workloads (Section 5).

Runs a :class:`~repro.workloads.parsec.ParallelWorkload` on a chip design
with pinned scheduling (threads stay on their assigned contexts, as modern
multi-core schedulers do for locality [13]):

* serial phases (initialization, finalization, and per-round critical
  sections) execute on the design's **strongest core** in isolation;
* in each barrier round every thread executes its work share at the rate the
  chip model predicts under full contention; the round ends when the slowest
  thread reaches the barrier — so per-round imbalance plus core heterogeneity
  (a share pinned to a small core) sets the critical path;
* while threads wait at the barrier they are scheduled out, which is what
  produces the varying active-thread counts of Figure 1.  The model records
  the exact time spent at each active-thread level.

Approximation: thread rates are computed once per (design, thread count)
with all threads resident.  When few threads remain active near a barrier
the survivors would see slightly less shared-resource contention; ignoring
this is conservative and affects all designs alike.
"""

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.core.designs import ChipDesign
from repro.core.scheduler import Scheduler
from repro.interval.contention import ChipModel, isolated_ips
from repro.util import check_positive
from repro.workloads.parsec import ParallelWorkload


@lru_cache(maxsize=8192)
def _cached_isolated(profile, core, uncore) -> float:
    return isolated_ips(profile, core, uncore)


@dataclass(frozen=True)
class MultithreadedResult:
    """Timing of one (workload, design, thread count) execution."""

    workload_name: str
    design_name: str
    n_threads: int
    smt: bool
    roi_seconds: float
    total_seconds: float
    #: ROI time fraction spent with exactly k threads active, k = 1..n.
    active_thread_fractions: Dict[int, float]

    def fraction_at_least(self, k: int) -> float:
        """ROI time fraction with ``k`` or more threads active."""
        return sum(f for n, f in self.active_thread_fractions.items() if n >= k)

    def fraction_at_most(self, k: int) -> float:
        """ROI time fraction with ``k`` or fewer threads active."""
        return sum(f for n, f in self.active_thread_fractions.items() if n <= k)


class MultithreadedModel:
    """Evaluates parallel workloads on one chip design."""

    def __init__(self, design: ChipDesign):
        self.design = design
        self._chip = ChipModel(design)

    def serial_rate(self, workload: ParallelWorkload) -> float:
        """Instructions/second of the kernel alone on the strongest core.

        Serial phases are executed on the big core when one is present
        (Section 5: "we execute serial phases on the big core").
        """
        return _cached_isolated(
            workload.kernel, self.design.cores[0], self.design.uncore
        )

    #: One-way thread-migration cost for ACS (cache-state transfer and OS
    #: hand-off); charged twice per accelerated critical section.
    ACS_MIGRATION_NS = 1500.0

    def boosted_serial_rate(
        self, workload: ParallelWorkload, boost_factor: float = 1.25
    ) -> float:
        """Serial-phase rate with EPI-style frequency boosting.

        During serial phases the other cores idle, freeing power headroom;
        EPI throttling (Annavaram et al. [1]) / TurboBoost spends it on a
        higher clock for the one busy core.  Performance scales sublinearly
        with frequency (memory latency in ns is unchanged), which the
        underlying model captures by re-evaluating the kernel on a
        frequency-scaled core.
        """
        check_positive("boost_factor", boost_factor)
        boosted_core = self.design.cores[0].with_frequency(
            self.design.cores[0].frequency_ghz * boost_factor
        )
        return _cached_isolated(workload.kernel, boosted_core, self.design.uncore)

    def run(
        self,
        workload: ParallelWorkload,
        n_threads: int,
        smt: bool = True,
        critical_sections: str = "pinned",
    ) -> MultithreadedResult:
        """Execute ``workload`` with ``n_threads`` software threads.

        ``critical_sections`` selects how serialized sections execute:

        * ``"pinned"`` (the paper's baseline) — the owning thread runs its
          critical section on its own core;
        * ``"accelerated"`` — Accelerating Critical Sections (Suleman et
          al. [29]): the section migrates to the design's big core, paying
          :data:`ACS_MIGRATION_NS` each way.  On a homogeneous big-core
          design this converges to pinned behaviour minus the migration
          tax, which is the paper's Section 9 argument that SMT-throttling
          on 4B gets ACS's benefit for free.
        """
        check_positive("n_threads", n_threads)
        if critical_sections not in ("pinned", "accelerated"):
            raise ValueError(
                f"critical_sections must be 'pinned' or 'accelerated', "
                f"got {critical_sections!r}"
            )
        placement = Scheduler(self.design, smt=smt).place(
            [workload.kernel] * n_threads
        )
        chip_result = self._chip.evaluate(placement, smt=smt)
        rates = [t.ips for t in chip_result.threads]
        serial_rate = self.serial_rate(workload)

        roi_seconds = 0.0
        time_at_level: Dict[int, float] = {k: 0.0 for k in range(1, n_threads + 1)}
        contention = 1.0 + workload.cs_contention_per_thread * (n_threads - 1)
        # Critical sections stay *pinned*: the owning thread executes them on
        # its own core (alone, so at that core's isolated rate), and ownership
        # rotates across threads -- so the per-round serialized time is the
        # mean over the threads' cores.  Only the program-level serial phases
        # (init/final) migrate to the big core.
        if critical_sections == "accelerated" and workload.round_serial_work() > 0:
            # Every critical section runs on the big core, plus migration.
            cs_seconds_mean = (
                workload.round_serial_work() / serial_rate
                + 2 * self.ACS_MIGRATION_NS * 1e-9
            )
        else:
            cs_rates = [
                _cached_isolated(
                    workload.kernel,
                    self.design.cores[t.core_index],
                    self.design.uncore,
                )
                for t in chip_result.threads
            ]
            cs_seconds_mean = sum(
                workload.round_serial_work() / r for r in cs_rates
            ) / len(cs_rates)
        serial_per_round = cs_seconds_mean * contention
        for r in range(workload.rounds):
            shares = workload.round_shares(r, n_threads)
            times = sorted(share / rate for share, rate in zip(shares, rates))
            # Between the (k-1)th and kth barrier arrival, n-k+1 threads run.
            previous = 0.0
            for k, t in enumerate(times):
                time_at_level[n_threads - k] += t - previous
                previous = t
            time_at_level[1] += serial_per_round
            roi_seconds += times[-1] + serial_per_round

        init_seconds = workload.serial_init / serial_rate
        final_seconds = workload.serial_final / serial_rate
        fractions = {
            k: v / roi_seconds for k, v in time_at_level.items() if v > 0.0
        }
        return MultithreadedResult(
            workload_name=workload.name,
            design_name=self.design.name,
            n_threads=n_threads,
            smt=smt,
            roi_seconds=roi_seconds,
            total_seconds=init_seconds + roi_seconds + final_seconds,
            active_thread_fractions=fractions,
        )

    def best_run(
        self,
        workload: ParallelWorkload,
        smt: bool,
        thread_counts: Optional[Iterable[int]] = None,
        scope: str = "roi",
    ) -> MultithreadedResult:
        """The fastest run across thread counts (the paper reports maxima).

        Without SMT the paper sets the thread count equal to the core count;
        with SMT it sweeps 4..24 in steps of 4 (capped at the design's
        hardware thread capacity) and reports the best.
        """
        if scope not in ("roi", "whole"):
            raise ValueError(f"scope must be 'roi' or 'whole', got {scope!r}")
        if thread_counts is None:
            if smt:
                thread_counts = [
                    n for n in range(4, 25, 4) if n <= self.design.max_threads
                ]
            else:
                thread_counts = [self.design.num_cores]
        runs = [self.run(workload, n, smt) for n in thread_counts]
        if not runs:
            raise ValueError("no feasible thread counts for this design")
        key = (
            (lambda r: r.roi_seconds) if scope == "roi" else (lambda r: r.total_seconds)
        )
        return min(runs, key=key)


def speedup(
    result: MultithreadedResult,
    reference: MultithreadedResult,
    scope: str = "roi",
) -> float:
    """Speedup of ``result`` over ``reference`` (paper: 4 threads on 4B)."""
    if scope == "roi":
        return reference.roi_seconds / result.roi_seconds
    if scope == "whole":
        return reference.total_seconds / result.total_seconds
    raise ValueError(f"scope must be 'roi' or 'whole', got {scope!r}")

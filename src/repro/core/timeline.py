"""Active-thread-count timelines: the "jobs come and go" of Section 2.1.

The paper motivates varying thread counts with multiprogramming (jobs
arrive, block on I/O, finish).  This module makes that concrete: a
:class:`ThreadCountTimeline` is a piecewise-constant record of how many
threads were active over time.  Timelines can be

* synthesized from a job arrival/departure process
  (:func:`simulate_job_arrivals` — Poisson arrivals, exponential service,
  capped at the machine's thread capacity, deterministic per seed), or
  built from measured (duration, count) samples;
* converted to a :class:`~repro.core.distributions.ThreadCountDistribution`
  (time-weighted), which plugs straight into
  :meth:`~repro.core.study.DesignSpaceStudy.aggregate_stp` — so a measured
  utilization trace can drive the whole design-space comparison.
"""

import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.distributions import ThreadCountDistribution
from repro.util import check_positive


@dataclass(frozen=True)
class ThreadCountTimeline:
    """Piecewise-constant active-thread history: (duration, count) segments.

    Durations are in arbitrary (consistent) time units; counts are >= 1 —
    fully idle periods carry no work, contribute nothing to throughput
    comparisons, and should be dropped before construction.
    """

    segments: Tuple[Tuple[float, int], ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("a timeline needs at least one segment")
        for duration, count in self.segments:
            if duration <= 0:
                raise ValueError(f"segment durations must be > 0, got {duration}")
            if count < 1:
                raise ValueError(f"segment thread counts must be >= 1, got {count}")

    @classmethod
    def from_samples(
        cls, samples: Sequence[Tuple[float, int]]
    ) -> "ThreadCountTimeline":
        return cls(tuple((float(d), int(c)) for d, c in samples))

    @property
    def total_time(self) -> float:
        return sum(d for d, _c in self.segments)

    @property
    def max_threads(self) -> int:
        return max(c for _d, c in self.segments)

    @property
    def mean_threads(self) -> float:
        """Time-weighted average active thread count."""
        return (
            sum(d * c for d, c in self.segments) / self.total_time
        )

    def time_at(self, count: int) -> float:
        """Total time spent with exactly ``count`` threads active."""
        return sum(d for d, c in self.segments if c == count)

    def to_distribution(self, max_threads: int = 0) -> ThreadCountDistribution:
        """The time-weighted thread-count distribution of this timeline.

        Counts above ``max_threads`` (default: the timeline's own maximum)
        are clamped to it, matching a machine that queues excess jobs.
        """
        cap = max_threads if max_threads > 0 else self.max_threads
        weights = [0.0] * cap
        for duration, count in self.segments:
            weights[min(count, cap) - 1] += duration
        return ThreadCountDistribution.from_weights(
            f"timeline-{cap}", weights
        )


def simulate_job_arrivals(
    arrival_rate: float,
    mean_service_time: float,
    max_threads: int = 24,
    horizon: float = 10_000.0,
    seed: int = 42,
) -> ThreadCountTimeline:
    """Synthesize a timeline from a Poisson job arrival/departure process.

    Jobs arrive at ``arrival_rate`` per time unit and each runs for an
    exponentially distributed service time (mean ``mean_service_time``);
    at most ``max_threads`` run concurrently (excess arrivals queue).  The
    offered load ``arrival_rate * mean_service_time`` sets the average
    parallelism — e.g. rate 0.08 x service 100 ~ 8 concurrently active
    jobs, a lightly loaded 24-thread server.

    Fully idle periods are dropped (no work to schedule).  Deterministic
    for a given seed.
    """
    check_positive("arrival_rate", arrival_rate)
    check_positive("mean_service_time", mean_service_time)
    check_positive("max_threads", max_threads)
    check_positive("horizon", horizon)
    rng = random.Random(seed)

    t = 0.0
    # Absolute completion times of the running jobs (absolute timestamps
    # avoid the accumulate-tiny-remainders failure mode where a residual
    # smaller than the ULP of `t` stalls the clock).
    running: List[float] = []
    queued = 0
    next_arrival = rng.expovariate(arrival_rate)
    segments: List[Tuple[float, int]] = []

    while t < horizon:
        active = len(running)
        next_departure = min(running) if running else math.inf
        next_event = min(next_arrival, next_departure, horizon)
        span = next_event - t
        if span > 0 and active > 0:
            segments.append((span, active))
        t = next_event
        if t >= horizon:
            break
        if next_event == next_arrival:
            if len(running) < max_threads:
                running.append(t + rng.expovariate(1.0 / mean_service_time))
            else:
                queued += 1
            next_arrival = t + rng.expovariate(arrival_rate)
        # Departures: retire every job due by now, admit queued work.
        still = [done for done in running if done > t]
        finished = len(running) - len(still)
        running = still
        for _ in range(finished):
            if queued > 0:
                queued -= 1
                running.append(t + rng.expovariate(1.0 / mean_service_time))

    if not segments:
        raise ValueError(
            "no active periods in the horizon; raise arrival_rate or horizon"
        )
    return ThreadCountTimeline.from_samples(_coalesce(segments))


def _coalesce(
    segments: Sequence[Tuple[float, int]]
) -> List[Tuple[float, int]]:
    """Merge adjacent segments with equal thread counts."""
    out: List[Tuple[float, int]] = []
    for duration, count in segments:
        if out and out[-1][1] == count:
            out[-1] = (out[-1][0] + duration, count)
        else:
            out.append((duration, count))
    return out

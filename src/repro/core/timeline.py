"""Active-thread-count timelines: the "jobs come and go" of Section 2.1.

The paper motivates varying thread counts with multiprogramming (jobs
arrive, block on I/O, finish).  This module makes that concrete: a
:class:`ThreadCountTimeline` is a piecewise-constant record of how many
threads were active over time.  Timelines can be

* synthesized from a job arrival/departure process
  (:func:`simulate_job_arrivals` — Poisson arrivals, exponential service,
  capped at the machine's thread capacity, deterministic per seed), or
  from a custom process via :func:`simulate_arrival_process` (pluggable
  interarrival/service/batch samplers — the scenario library in
  :mod:`repro.core.scenarios` is built on this), or
  built from measured (duration, count) samples;
* converted to a :class:`~repro.core.distributions.ThreadCountDistribution`
  (time-weighted), which plugs straight into
  :meth:`~repro.core.study.DesignSpaceStudy.aggregate_stp` — so a measured
  utilization trace can drive the whole design-space comparison.

Event semantics of the simulator (locked in by tests/test_timeline.py):

* departures are processed **before** arrivals at the same instant, so a
  job arriving exactly when another finishes takes the freed slot
  directly instead of bouncing through the queue;
* queued jobs draw their service time at *admission* (when a slot frees
  up), not at arrival — a job's clock starts when it starts running;
* the queue drains to capacity on every departure batch;
* time is conserved: ``timeline.total_time + idle_time == horizon``.
"""

import math
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.distributions import ThreadCountDistribution
from repro.util import check_positive

#: Sampler signature: (rng, current_time) -> value.  Taking the current
#: time lets processes be non-stationary (diurnal rates, flash crowds).
Sampler = Callable[[random.Random, float], float]


@dataclass(frozen=True)
class ThreadCountTimeline:
    """Piecewise-constant active-thread history: (duration, count) segments.

    Durations are in arbitrary (consistent) time units; counts are >= 1 —
    fully idle periods carry no work, contribute nothing to throughput
    comparisons, and should be dropped before construction.
    """

    segments: Tuple[Tuple[float, int], ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("a timeline needs at least one segment")
        for duration, count in self.segments:
            if duration <= 0:
                raise ValueError(f"segment durations must be > 0, got {duration}")
            if count < 1:
                raise ValueError(f"segment thread counts must be >= 1, got {count}")

    @classmethod
    def from_samples(
        cls, samples: Sequence[Tuple[float, int]]
    ) -> "ThreadCountTimeline":
        return cls(tuple((float(d), int(c)) for d, c in samples))

    @property
    def total_time(self) -> float:
        return sum(d for d, _c in self.segments)

    @property
    def max_threads(self) -> int:
        return max(c for _d, c in self.segments)

    @property
    def mean_threads(self) -> float:
        """Time-weighted average active thread count."""
        return (
            sum(d * c for d, c in self.segments) / self.total_time
        )

    def time_at(self, count: int) -> float:
        """Total time spent with exactly ``count`` threads active."""
        return sum(d for d, c in self.segments if c == count)

    def to_distribution(
        self, max_threads: int = 0, name: Optional[str] = None
    ) -> ThreadCountDistribution:
        """The time-weighted thread-count distribution of this timeline.

        Counts above ``max_threads`` (default: the timeline's own maximum)
        are clamped to it, matching a machine that queues excess jobs.
        ``name`` overrides the default ``timeline-<cap>`` label.
        """
        cap = max_threads if max_threads > 0 else self.max_threads
        weights = [0.0] * cap
        for duration, count in self.segments:
            weights[min(count, cap) - 1] += duration
        return ThreadCountDistribution.from_weights(
            name if name is not None else f"timeline-{cap}", weights
        )


@dataclass(frozen=True)
class ArrivalSimulation:
    """Full result of :func:`simulate_arrival_process`.

    Beyond the timeline itself, the counters make the simulator's event
    handling auditable: ``timeline.total_time + idle_time`` must equal the
    horizon exactly, and the queue statistics expose whether coincident
    arrival/departure events were resolved in favor of the freed slot.
    """

    timeline: ThreadCountTimeline
    #: Time within the horizon with zero active jobs (dropped from the
    #: timeline); conservation: ``timeline.total_time + idle_time == horizon``.
    idle_time: float
    jobs_arrived: int
    jobs_completed: int
    #: Jobs that waited in the queue before being admitted to a slot.
    jobs_queued: int
    #: Largest queue length observed.
    max_queue_length: int


def simulate_arrival_process(
    interarrival: Sampler,
    service: Sampler,
    max_threads: int = 24,
    horizon: float = 10_000.0,
    seed: int = 42,
    batch_size: Optional[Callable[[random.Random, float], int]] = None,
) -> ArrivalSimulation:
    """Simulate a capacitated arrival/departure process into a timeline.

    ``interarrival`` and ``service`` are sampler callables ``(rng, t) ->
    duration`` — both must return values > 0 — which makes the process
    fully pluggable: non-homogeneous Poisson (diurnal rates), heavy-tailed
    on/off bursts, deterministic fixtures for tests.  ``batch_size``
    optionally returns how many jobs arrive together at each arrival
    instant (flash crowds); default one.

    At most ``max_threads`` jobs run concurrently; excess arrivals queue
    and are admitted (drawing their service time at admission) as slots
    free up.  Departures are processed before arrivals at the same
    instant, so a coincident arrival takes the freed slot directly.
    Deterministic for a given seed.
    """
    check_positive("max_threads", max_threads)
    check_positive("horizon", horizon)
    rng = random.Random(seed)

    def draw(sampler: Sampler, what: str) -> float:
        value = sampler(rng, t)
        if value <= 0:
            raise ValueError(f"{what} sampler must return > 0, got {value}")
        return value

    t = 0.0
    # Absolute completion times of the running jobs (absolute timestamps
    # avoid the accumulate-tiny-remainders failure mode where a residual
    # smaller than the ULP of `t` stalls the clock).
    running: List[float] = []
    queued = 0
    arrived = completed = queued_total = max_queue = 0
    idle = 0.0
    next_arrival = draw(interarrival, "interarrival")
    segments: List[Tuple[float, int]] = []

    while t < horizon:
        active = len(running)
        next_departure = min(running) if running else math.inf
        next_event = min(next_arrival, next_departure, horizon)
        span = next_event - t
        if span > 0:
            if active > 0:
                segments.append((span, active))
            else:
                idle += span
        t = next_event
        if t >= horizon:
            break
        # Departures first: retire every job due by now and refill from
        # the queue, so a coincident arrival sees the freed capacity.
        if next_departure <= t:
            still = [done for done in running if done > t]
            completed += len(running) - len(still)
            running = still
            while queued > 0 and len(running) < max_threads:
                queued -= 1
                running.append(t + draw(service, "service"))
        if next_arrival <= t:
            batch = 1 if batch_size is None else int(batch_size(rng, t))
            if batch < 1:
                raise ValueError(f"batch_size must return >= 1, got {batch}")
            for _ in range(batch):
                arrived += 1
                if len(running) < max_threads:
                    running.append(t + draw(service, "service"))
                else:
                    queued += 1
                    queued_total += 1
            max_queue = max(max_queue, queued)
            next_arrival = t + draw(interarrival, "interarrival")

    if not segments:
        raise ValueError(
            "no active periods in the horizon; raise arrival_rate or horizon"
        )
    return ArrivalSimulation(
        timeline=ThreadCountTimeline.from_samples(_coalesce(segments)),
        idle_time=idle,
        jobs_arrived=arrived,
        jobs_completed=completed,
        jobs_queued=queued_total,
        max_queue_length=max_queue,
    )


def simulate_job_arrivals(
    arrival_rate: float,
    mean_service_time: float,
    max_threads: int = 24,
    horizon: float = 10_000.0,
    seed: int = 42,
) -> ThreadCountTimeline:
    """Synthesize a timeline from a Poisson job arrival/departure process.

    Jobs arrive at ``arrival_rate`` per time unit and each runs for an
    exponentially distributed service time (mean ``mean_service_time``);
    at most ``max_threads`` run concurrently (excess arrivals queue).  The
    offered load ``arrival_rate * mean_service_time`` sets the average
    parallelism — e.g. rate 0.08 x service 100 ~ 8 concurrently active
    jobs, a lightly loaded 24-thread server.

    Fully idle periods are dropped (no work to schedule).  Deterministic
    for a given seed.  This is :func:`simulate_arrival_process` with
    exponential samplers; use that directly for non-Poisson processes or
    to inspect idle time and queue statistics.
    """
    check_positive("arrival_rate", arrival_rate)
    check_positive("mean_service_time", mean_service_time)
    return simulate_arrival_process(
        interarrival=lambda rng, _t: rng.expovariate(arrival_rate),
        service=lambda rng, _t: rng.expovariate(1.0 / mean_service_time),
        max_threads=max_threads,
        horizon=horizon,
        seed=seed,
    ).timeline


def _coalesce(
    segments: Sequence[Tuple[float, int]]
) -> List[Tuple[float, int]]:
    """Merge adjacent segments with equal thread counts."""
    out: List[Tuple[float, int]] = []
    for duration, count in segments:
        if out and out[-1][1] == count:
            out[-1] = (out[-1][0] + duration, count)
        else:
            out.append((duration, count))
    return out

"""Adaptive design-space exploration: successive halving + GA refinement.

The exhaustive answer to "which design wins on this workload?" evaluates
the full (design x thread count x mix) grid — 2592 points for the paper's
nine designs.  This module recovers the same winner at a fraction of that
cost using *successive halving*: all candidate designs are scored cheaply
at low fidelity (a few high-probability thread counts, a few mixes per
count), the bottom ``1 - 1/eta`` are dropped, and the survivors are
rescored at ``eta`` x higher fidelity, repeating until one remains.  Low
fidelity is enough to discard clearly-dominated designs; full fidelity is
spent only where the ranking is still unresolved (van Stralen's
scenario-based exploration argument, PAPERS.md).

Fitness is the *partial* distribution-weighted STP: the scenario
distribution's expectation restricted to the evaluated thread counts and
renormalized, so scores are comparable across rungs and exactly equal to
:meth:`~repro.core.study.DesignSpaceStudy.aggregate_stp` at full
fidelity.  Thread counts enter in descending probability order — the
evaluation budget goes where the scenario actually spends its time.

Every evaluation flows through
:meth:`~repro.core.study.DesignSpaceStudy.evaluate_mixes`, so the
engine's slabs, the persistent ResultStore and the solver's warm-start
hints amortize across rungs, and a later exhaustive sweep reuses
everything the explorer already computed.

An optional GA refinement stage then searches the *full* power-budget
composition space — every (big, medium, small) core mix with the paper's
4.0 power weight, including the medium+small hybrids the paper excludes —
seeded by the successive-halving winner.

If the two finalists are within ``tie_tolerance`` (relative), the
explorer escalates them to full fidelity before declaring a winner,
budget permitting — cheap insurance against low-fidelity ranking noise.
"""

import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.designs import DESIGN_ORDER, ChipDesign, get_design
from repro.core.distributions import ThreadCountDistribution
from repro.core.metrics import harmonic_mean
from repro.core.scenarios import DEFAULT_HORIZON, get_scenario
from repro.core.study import WORKLOAD_KINDS, DesignSpaceStudy
from repro.microarch.config import BIG, MEDIUM, SMALL
from repro.obs import TRACER
from repro.util import check_positive


@dataclass(frozen=True)
class ExploreConfig:
    """Parameters of one adaptive exploration run."""

    scenario: str
    designs: Tuple[str, ...] = DESIGN_ORDER
    kind: str = "heterogeneous"
    max_threads: int = 24
    smt: bool = True
    #: Seeds the scenario trace and the GA; workload mixes keep the
    #: study's own seed so explorer and exhaustive sweep share a grid.
    seed: int = 42
    #: Keep 1/eta of the candidates per rung; fidelity grows by eta.
    eta: int = 3
    #: Rung-0 fidelity: thread counts x mixes per count.
    min_counts: int = 4
    min_mixes: int = 3
    #: Ceiling on evaluated points as a fraction of the full grid; the
    #: tie-escalation and GA stages stop before crossing it.
    budget_fraction: float = 0.2
    #: Relative score gap under which the two finalists are re-scored at
    #: full fidelity before the winner is declared.
    tie_tolerance: float = 1e-3
    #: GA refinement rounds over the composition space (0 = off).
    ga_rounds: int = 0
    ga_population: int = 6
    horizon: float = DEFAULT_HORIZON

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(
                f"kind must be one of {WORKLOAD_KINDS}, got {self.kind!r}"
            )
        if not self.designs:
            raise ValueError("explore needs at least one candidate design")
        if self.eta < 2:
            raise ValueError(f"eta must be >= 2, got {self.eta}")
        check_positive("max_threads", self.max_threads)
        check_positive("min_counts", self.min_counts)
        check_positive("min_mixes", self.min_mixes)
        check_positive("budget_fraction", self.budget_fraction)


class _PointLedger:
    """Unique grid points *this exploration* asked for.

    Deliberately independent of the study's memo cache: a warm study (a
    long-lived serve daemon, a prior sweep over the same grid) satisfies
    requests without fresh computation, but the search's cost metric must
    be a property of the search — the same config always reports the same
    point counts, so local and ``--server`` output stay byte-identical.
    """

    def __init__(self) -> None:
        self._keys: set = set()

    def record(self, design_name: str, mixes: Sequence, smt: bool) -> None:
        for mix in mixes:
            self._keys.add((design_name, tuple(mix), smt))

    @property
    def count(self) -> int:
        return len(self._keys)


def run_explore(
    config: ExploreConfig,
    study: Optional[DesignSpaceStudy] = None,
    engine=None,
) -> Dict[str, Any]:
    """Run the adaptive search; returns a JSON-round-trippable summary.

    The result dict contains only JSON-native types (str/int/float/bool/
    list/dict/None) so the ``repro explore`` CLI renders identical output
    whether the search ran in-process or on a serve daemon.
    """
    scenario = get_scenario(config.scenario)
    distribution = scenario.distribution(
        max_threads=config.max_threads, horizon=config.horizon, seed=config.seed
    )
    if study is None:
        study = DesignSpaceStudy(
            designs=[get_design(name) for name in config.designs],
            engine=engine,
        )
    else:
        for name in config.designs:
            study.design(name)  # fail fast on unknown designs
    ledger = _PointLedger()

    support = _counts_by_probability(distribution)
    full_mixes = {n: len(study.mixes(config.kind, n)) for n in support}
    full_grid = len(config.designs) * sum(full_mixes.values())
    budget = int(config.budget_fraction * full_grid)

    with TRACER.span(
        "explore.run",
        cat="explore",
        scenario=config.scenario,
        designs=len(config.designs),
        full_grid=full_grid,
    ):
        rungs, ranking = _successive_halving(
            config, study, distribution, support, ledger
        )
        winner, winner_score = ranking[0]
        escalated = False
        if len(ranking) > 1:
            winner, winner_score, escalated = _resolve_tie(
                config, study, distribution, support, ranking,
                ledger, budget,
            )
        ga_report = None
        if config.ga_rounds > 0:
            ga_report, winner, winner_score = _ga_refine(
                config, study, distribution, support,
                winner, winner_score, ledger, budget,
                depth=rungs[-1]["rung"],
            )

    evaluations = ledger.count
    return {
        "scenario": config.scenario,
        "distribution": distribution.name,
        "kind": config.kind,
        "smt": config.smt,
        "seed": config.seed,
        "max_threads": config.max_threads,
        "designs": list(config.designs),
        "winner": winner,
        "winner_score": winner_score,
        "tie_escalated": escalated,
        "ranking": [
            {"design": name, "score": score} for name, score in ranking
        ],
        "rungs": rungs,
        "ga": ga_report,
        "evaluations": evaluations,
        "full_grid_points": full_grid,
        "fraction": evaluations / full_grid if full_grid else 0.0,
    }


# --------------------------------------------------------------------- #
# successive halving
# --------------------------------------------------------------------- #


def _counts_by_probability(
    distribution: ThreadCountDistribution,
) -> List[int]:
    """Support thread counts, most probable first (ties: fewer threads)."""
    return sorted(
        distribution.support,
        key=lambda n: (-distribution.probability(n), n),
    )


def _partial_score(
    config: ExploreConfig,
    study: DesignSpaceStudy,
    distribution: ThreadCountDistribution,
    design_name: str,
    counts: Sequence[int],
    mixes_per_count: int,
    ledger: _PointLedger,
) -> float:
    """Renormalized partial expectation of harmonic-mean STP.

    Equals :meth:`DesignSpaceStudy.aggregate_stp` when ``counts`` covers
    the full support and ``mixes_per_count`` covers every mix.
    """
    per_count = {
        n: study.mixes(config.kind, n)[:mixes_per_count] for n in counts
    }
    # One batch per design keeps engine workers saturated; the per-count
    # reads below are then pure memo hits.
    batch = [mix for mixes in per_count.values() for mix in mixes]
    ledger.record(design_name, batch, config.smt)
    study.evaluate_mixes(design_name, batch, config.smt)
    total = weight = 0.0
    for n, mixes in per_count.items():
        results = study.evaluate_mixes(design_name, mixes, config.smt)
        p = distribution.probability(n)
        total += p * harmonic_mean([r.stp for r in results])
        weight += p
    return total / weight


def _successive_halving(
    config: ExploreConfig,
    study: DesignSpaceStudy,
    distribution: ThreadCountDistribution,
    support: Sequence[int],
    ledger: _PointLedger,
) -> Tuple[List[Dict[str, Any]], List[Tuple[str, float]]]:
    """The rung loop; returns (rung reports, final ranking best-first)."""
    survivors = list(config.designs)
    rungs: List[Dict[str, Any]] = []
    ranking: List[Tuple[str, float]] = [(survivors[0], 0.0)]
    rung = 0
    while True:
        n_counts = min(len(support), config.min_counts * config.eta**rung)
        mixes_per_count = config.min_mixes * config.eta**rung
        counts = list(support[:n_counts])
        before = ledger.count
        scores = {
            name: _partial_score(
                config, study, distribution, name, counts, mixes_per_count,
                ledger,
            )
            for name in survivors
        }
        # Best first; ties break toward the caller's design order.
        order = {name: i for i, name in enumerate(config.designs)}
        ranking = sorted(
            scores.items(), key=lambda kv: (-kv[1], order[kv[0]])
        )
        keep = max(1, math.ceil(len(survivors) / config.eta))
        if keep == len(survivors):
            keep = len(survivors) - 1  # guarantee progress
        kept = [name for name, _score in ranking[: max(1, keep)]]
        rungs.append(
            {
                "rung": rung,
                "designs": survivors,
                "thread_counts": len(counts),
                "mixes_per_count": mixes_per_count,
                "scores": {n: s for n, s in ranking},
                "kept": kept,
                "new_points": ledger.count - before,
                "cumulative_points": ledger.count,
            }
        )
        if len(survivors) == 1 or len(kept) == 1:
            break
        survivors = kept
        rung += 1
    return rungs, ranking


def _resolve_tie(
    config: ExploreConfig,
    study: DesignSpaceStudy,
    distribution: ThreadCountDistribution,
    support: Sequence[int],
    ranking: List[Tuple[str, float]],
    ledger: _PointLedger,
    budget: int,
) -> Tuple[str, float, bool]:
    """Escalate a near-tie between the two finalists to full fidelity."""
    (first, s1), (second, s2) = ranking[0], ranking[1]
    if s1 <= 0 or (s1 - s2) / s1 > config.tie_tolerance:
        return first, s1, False
    # Full fidelity on two designs costs at most this many fresh points.
    remaining = 2 * sum(len(study.mixes(config.kind, n)) for n in support)
    if ledger.count + remaining > budget:
        return first, s1, False
    for name in (first, second):
        for n in support:
            ledger.record(name, study.mixes(config.kind, n), config.smt)
    exact = {
        name: study.aggregate_stp(name, config.kind, distribution, config.smt)
        for name in (first, second)
    }
    winner = max(exact, key=exact.get)
    return winner, exact[winner], True


# --------------------------------------------------------------------- #
# GA refinement over the power-budget composition space
# --------------------------------------------------------------------- #

#: Power weights in big-core equivalents, times 10 (exact integers).
_WEIGHTS_X10 = {"big": 10, "medium": 5, "small": 2}
_BUDGET_X10 = 40  # 4.0 big-core equivalents

Composition = Tuple[int, int, int]  # (big, medium, small) core counts


def feasible_compositions() -> List[Composition]:
    """Every (big, medium, small) core mix with exactly the 4.0 budget."""
    out: List[Composition] = []
    for nb in range(_BUDGET_X10 // _WEIGHTS_X10["big"] + 1):
        rest = _BUDGET_X10 - nb * _WEIGHTS_X10["big"]
        for nm in range(rest // _WEIGHTS_X10["medium"] + 1):
            tail = rest - nm * _WEIGHTS_X10["medium"]
            if tail % _WEIGHTS_X10["small"] == 0:
                out.append((nb, nm, tail // _WEIGHTS_X10["small"]))
    return out


def composition_design(comp: Composition) -> ChipDesign:
    """The chip design for a composition (cores ordered big to small)."""
    nb, nm, ns = comp
    if nb + nm + ns == 0:
        raise ValueError("composition needs at least one core")
    return ChipDesign(
        name=f"ga-{nb}B{nm}m{ns}s",
        cores=(BIG,) * nb + (MEDIUM,) * nm + (SMALL,) * ns,
    )


def _composition_of(design: ChipDesign) -> Composition:
    counts = design.core_counts()
    return (
        counts.get(BIG.name, 0),
        counts.get(MEDIUM.name, 0),
        counts.get(SMALL.name, 0),
    )


def _neighbors(comp: Composition) -> List[Composition]:
    """Feasible one-step weight transfers (1 big <-> 2 medium <-> 5 small)."""
    nb, nm, ns = comp
    candidates = [
        (nb - 1, nm + 2, ns),
        (nb + 1, nm - 2, ns),
        (nb - 1, nm, ns + 5),
        (nb + 1, nm, ns - 5),
        (nb, nm - 2, ns + 5),
        (nb, nm + 2, ns - 5),
    ]
    return [
        c for c in candidates if all(v >= 0 for v in c) and sum(c) > 0
    ]


def _ga_refine(
    config: ExploreConfig,
    study: DesignSpaceStudy,
    distribution: ThreadCountDistribution,
    support: Sequence[int],
    winner: str,
    winner_score: float,
    ledger: _PointLedger,
    budget: int,
    depth: int,
) -> Tuple[Dict[str, Any], str, float]:
    """Evolve compositions around the halving winner, budget permitting.

    Candidates equal to an already-registered design reuse it (and its
    memoized points); new compositions are registered via
    :meth:`DesignSpaceStudy.add_design`.  Fitness uses the fidelity of
    the deepest halving rung (``depth``) so GA scores are comparable
    with the halving scores.
    """
    rng = random.Random(config.seed)
    by_comp = {
        _composition_of(study.design(name)): name for name in config.designs
    }

    def design_for(comp: Composition) -> str:
        if comp in by_comp:
            return by_comp[comp]
        design = composition_design(comp)
        study.add_design(design)
        by_comp[comp] = design.name
        return design.name

    counts = list(
        support[: min(len(support), config.min_counts * config.eta**depth)]
    )
    mixes_per_count = config.min_mixes * config.eta**depth
    points_per_candidate = sum(
        min(mixes_per_count, len(study.mixes(config.kind, n))) for n in counts
    )

    scores: Dict[Composition, float] = {}

    def fitness(comp: Composition) -> Optional[float]:
        if comp in scores:
            return scores[comp]
        if ledger.count + points_per_candidate > budget:
            return None  # budget exhausted: skip fresh evaluations
        scores[comp] = _partial_score(
            config, study, distribution, design_for(comp),
            counts, mixes_per_count, ledger,
        )
        return scores[comp]

    seed_comp = _composition_of(study.design(winner))
    pool = [c for c in feasible_compositions() if c != seed_comp]
    rng.shuffle(pool)
    population = [seed_comp] + pool[: config.ga_population - 1]
    evaluated_rounds = 0
    for _ in range(config.ga_rounds):
        for comp in population:
            fitness(comp)
        if not scores:
            break
        evaluated_rounds += 1
        elite = sorted(
            (c for c in population if c in scores),
            key=lambda c: -scores[c],
        )[: max(2, len(population) // 2)]
        children: List[Composition] = []
        for comp in elite:
            moves = _neighbors(comp)
            if moves:
                children.append(rng.choice(moves))
        if len(elite) >= 2:
            a, b = rng.sample(elite, 2)
            blend = tuple((x + y) // 2 for x, y in zip(a, b))
            children.extend(
                c for c in _neighbors(blend) + [blend]
                if sum(
                    v * w
                    for v, w in zip(c, (10, 5, 2))
                ) == _BUDGET_X10
            )
        merged = list(dict.fromkeys(elite + children))
        population = merged[: config.ga_population]

    best_comp = max(scores, key=scores.get) if scores else seed_comp
    best_name = design_for(best_comp)
    best_score = scores.get(best_comp, winner_score)
    report = {
        "rounds": evaluated_rounds,
        "evaluated": [
            {
                "design": design_for(comp),
                "composition": list(comp),
                "score": score,
            }
            for comp, score in sorted(scores.items(), key=lambda kv: -kv[1])
        ],
        "best": best_name,
        "best_score": best_score,
    }
    if best_score > winner_score:
        return report, best_name, best_score
    return report, winner, winner_score

"""Figures 11-12: PARSEC speedups across designs, with and without SMT.

Speedups are normalized to a four-thread execution on the 4B design
(Section 3.2).  Without SMT the thread count equals the core count; with
SMT the best thread count in {4, 8, ..., 24} is reported.  Only the
single-big-core heterogeneous designs (1B6m, 1B15s) are compared, as the
paper does under pinned scheduling.

Paper anchors: ROI-only without SMT, 8m is optimal; adding SMT pulls 4B
level with it.  Whole-program, 4B is best both ways, with a bigger margin
once SMT is enabled (Finding #7).
"""

from typing import Dict, List, Optional, Sequence

from repro.core.designs import ChipDesign, get_design
from repro.core.metrics import harmonic_mean
from repro.core.multithreaded import MultithreadedModel, MultithreadedResult, speedup
from repro.experiments.base import ExperimentTable
from repro.workloads.parsec import PARSEC_ORDER, get_workload

#: Designs shown in Figures 11 and 12.
PARSEC_DESIGNS = ("4B", "8m", "20s", "1B6m", "1B15s")

_REFERENCES: Dict[str, MultithreadedResult] = {}
_MODELS: Dict[str, MultithreadedModel] = {}


def _model(design_name: str) -> MultithreadedModel:
    if design_name not in _MODELS:
        _MODELS[design_name] = MultithreadedModel(get_design(design_name))
    return _MODELS[design_name]


def _reference(workload_name: str) -> MultithreadedResult:
    """The paper's normalization point: 4 threads on the 4B design."""
    if workload_name not in _REFERENCES:
        _REFERENCES[workload_name] = _model("4B").run(
            get_workload(workload_name), 4, smt=True
        )
    return _REFERENCES[workload_name]


def benchmark_speedup(
    design_name: str, workload_name: str, smt: bool, scope: str
) -> float:
    """Best speedup of one workload on one design (vs 4 threads on 4B)."""
    best = _model(design_name).best_run(
        get_workload(workload_name), smt=smt, scope=scope
    )
    return speedup(best, _reference(workload_name), scope)


def run_average(scope: str = "roi") -> ExperimentTable:
    """Figure 11 (one panel): mean normalized speedups across all benchmarks."""
    table = ExperimentTable(
        experiment_id="Figure 11" + ("a" if scope == "roi" else "b"),
        title=f"Average PARSEC speedup ({scope}), vs 4 threads on 4B",
        columns=["design", "without SMT", "with SMT"],
    )
    values: Dict[str, Dict[str, float]] = {}
    for smt, key in ((False, "without SMT"), (True, "with SMT")):
        values[key] = {
            d: harmonic_mean(
                [benchmark_speedup(d, w, smt, scope) for w in PARSEC_ORDER]
            )
            for d in PARSEC_DESIGNS
        }
    for d in PARSEC_DESIGNS:
        table.add_row(
            design=d,
            **{key: values[key][d] for key in ("without SMT", "with SMT")},
        )
    for key in ("without SMT", "with SMT"):
        vals = values[key]
        best = max(vals, key=vals.get)
        table.notes.append(f"{scope} {key}: best={best} ({vals[best]:.2f})")
    return table


def run_per_benchmark(scope: str = "roi", smt: bool = True) -> ExperimentTable:
    """Figure 12 (one panel): per-benchmark speedups."""
    table = ExperimentTable(
        experiment_id="Figure 12" + ("a" if scope == "roi" else "b"),
        title=f"Per-benchmark PARSEC speedup ({scope}, SMT={'on' if smt else 'off'})",
        columns=["benchmark"] + list(PARSEC_DESIGNS) + ["best"],
    )
    for w in PARSEC_ORDER:
        values = {d: benchmark_speedup(d, w, smt, scope) for d in PARSEC_DESIGNS}
        best = max(values, key=values.get)
        table.add_row(benchmark=w, **values, best=best)
    return table


def reset_cache() -> None:
    """Drop memoized models/references (for tests that tweak workloads)."""
    _REFERENCES.clear()
    _MODELS.clear()

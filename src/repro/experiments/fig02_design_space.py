"""Figure 2: the nine power-equivalent multi-core designs."""

from repro.core.designs import DESIGN_ORDER, get_design
from repro.experiments.base import ExperimentTable


def run() -> ExperimentTable:
    """Enumerate the design space with its power-equivalence bookkeeping."""
    table = ExperimentTable(
        experiment_id="Figure 2",
        title="Nine power-equivalent multi-core designs",
        columns=[
            "design",
            "big",
            "medium",
            "small",
            "cores",
            "max threads (SMT)",
            "power weight (B-equiv)",
        ],
    )
    for name in DESIGN_ORDER:
        design = get_design(name)
        counts = design.core_counts()
        table.add_row(
            design=name,
            big=counts.get("big", 0),
            medium=counts.get("medium", 0),
            small=counts.get("small", 0),
            cores=design.num_cores,
            **{
                "max threads (SMT)": design.max_threads,
                "power weight (B-equiv)": design.power_budget_weight,
            },
        )
    table.notes.append(
        "1 big ~ 2 medium ~ 5 small in power; every design supports >=24 "
        "hardware threads with SMT"
    )
    return table

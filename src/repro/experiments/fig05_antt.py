"""Figure 5: average normalized turnaround time (ANTT) vs thread count.

ANTT is per-program slowdown (lower is better): 4B starts lowest (every
thread gets a big core) and rises as SMT sharing deepens; 20s starts high
(weak cores) but stays flatter (less sharing per core).
"""

from typing import Iterable

from repro.core.designs import DESIGN_ORDER
from repro.experiments.base import ExperimentTable
from repro.experiments.context import get_study


def run(
    kind: str = "homogeneous",
    thread_counts: Iterable[int] = range(1, 25),
    smt: bool = True,
) -> ExperimentTable:
    """Reproduce Figure 5 (ANTT curves for all nine designs)."""
    study = get_study()
    thread_counts = list(thread_counts)
    table = ExperimentTable(
        experiment_id="Figure 5",
        title=f"ANTT vs thread count, {kind} workloads",
        columns=["threads"] + list(DESIGN_ORDER),
    )
    curves = {
        name: study.antt_curve(name, kind, thread_counts, smt)
        for name in DESIGN_ORDER
    }
    for n in thread_counts:
        table.add_row(threads=n, **{name: curves[name][n] for name in DESIGN_ORDER})
    low, high = min(thread_counts), max(thread_counts)
    best_low = min(DESIGN_ORDER, key=lambda d: curves[d][low])
    table.notes.append(
        f"lowest ANTT at {low} thread(s): {best_low} (paper: 4B); "
        f"at {high} threads 4B ANTT {curves['4B'][high]:.1f} vs 20s "
        f"{curves['20s'][high]:.1f}"
    )
    return table

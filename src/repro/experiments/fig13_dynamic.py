"""Figure 13: the 4B SMT design versus an ideal dynamic multi-core.

The dynamic machine morphs, with zero overhead, into the best of the nine
configurations for every (workload, thread count) — deliberately optimistic.
The paper finds 4B with SMT similar or better than the dynamic machine
without SMT (Finding #8), because SMT offers finer-grained flexibility than
discrete core fusion (which jumps between 1B<->2m<->5s plateaus).
"""

from typing import Iterable

from repro.core.dynamic import IdealDynamicMulticore
from repro.experiments.base import ExperimentTable
from repro.experiments.context import get_study


def run(
    kind: str = "heterogeneous", thread_counts: Iterable[int] = range(1, 25)
) -> ExperimentTable:
    """One panel of Figure 13 (homogeneous or heterogeneous workloads)."""
    study = get_study()
    oracle = IdealDynamicMulticore(study)
    thread_counts = list(thread_counts)
    table = ExperimentTable(
        experiment_id="Figure 13" + ("a" if kind == "homogeneous" else "b"),
        title=f"4B with SMT vs ideal dynamic multi-core, {kind} workloads",
        columns=["threads", "4B (SMT)", "dynamic w/o SMT", "dynamic w/ SMT"],
    )
    curve_4b = study.throughput_curve("4B", kind, thread_counts, smt=True)
    dyn_no = oracle.throughput_curve(kind, thread_counts, smt=False)
    dyn_smt = oracle.throughput_curve(kind, thread_counts, smt=True)
    for n in thread_counts:
        table.add_row(
            threads=n,
            **{
                "4B (SMT)": curve_4b[n],
                "dynamic w/o SMT": dyn_no[n],
                "dynamic w/ SMT": dyn_smt[n],
            },
        )
    mean_4b = sum(curve_4b.values()) / len(curve_4b)
    mean_dyn = sum(dyn_no.values()) / len(dyn_no)
    table.notes.append(
        f"mean over thread counts: 4B(SMT)={mean_4b:.3f}, dynamic w/o "
        f"SMT={mean_dyn:.3f} ({mean_4b / mean_dyn - 1:+.1%}); paper: 4B "
        "similar or better than dynamic without SMT"
    )
    return table

"""Figure 1: distribution of active thread counts, PARSEC on twenty cores.

The paper runs each PARSEC benchmark with 20 threads on a twenty-core
machine and reports, per benchmark, the fraction of ROI time spent at each
active-thread level (bucketed).  Headline statistics: 20 threads are active
only ~half the time on average, and <= 4 threads ~31 % of the time.
"""

from typing import List, Tuple

from repro.core.designs import get_design
from repro.core.multithreaded import MultithreadedModel
from repro.experiments.base import ExperimentTable
from repro.workloads.parsec import PARSEC_ORDER, get_workload

#: Active-thread buckets as drawn in Figure 1.
BUCKETS: List[Tuple[str, int, int]] = [
    ("1", 1, 1),
    ("2", 2, 2),
    ("3", 3, 3),
    ("4", 4, 4),
    ("5", 5, 5),
    ("6-10", 6, 10),
    ("11-15", 11, 15),
    ("16-19", 16, 19),
    ("20", 20, 20),
]


def run(n_threads: int = 20, design_name: str = "20s") -> ExperimentTable:
    """Reproduce Figure 1 on a twenty-core machine (the 20s design)."""
    model = MultithreadedModel(get_design(design_name))
    table = ExperimentTable(
        experiment_id="Figure 1",
        title=f"Active-thread distribution, {n_threads} threads on {design_name}",
        columns=["benchmark"] + [b[0] for b in BUCKETS],
    )
    sum_at_max = 0.0
    sum_le4 = 0.0
    for name in PARSEC_ORDER:
        result = model.run(get_workload(name), n_threads, smt=False)
        values = {"benchmark": name}
        for label, lo, hi in BUCKETS:
            values[label] = sum(
                f
                for k, f in result.active_thread_fractions.items()
                if lo <= k <= hi
            )
        table.rows.append(values)
        sum_at_max += result.active_thread_fractions.get(n_threads, 0.0)
        sum_le4 += result.fraction_at_most(4)
    n = len(PARSEC_ORDER)
    table.notes.append(
        f"avg time at {n_threads} threads: {sum_at_max / n:.2f} (paper ~0.50); "
        f"avg time at <=4 threads: {sum_le4 / n:.2f} (paper ~0.31)"
    )
    return table

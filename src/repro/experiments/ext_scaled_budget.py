"""Extension: the study projected to a doubled hardware budget.

The paper argues its results "are general enough to be projected to larger
hardware budgets and thread counts (e.g., 8 large cores and up to 48
threads)".  This experiment builds the doubled design space — 8 big cores,
16 medium, 40 small and the analogous mixes — and repeats the uniform-
distribution comparison up to 48 threads.  If the paper's projection holds,
the all-big SMT design stays on top with SMT everywhere.
"""

from typing import Dict, List, Tuple

from dataclasses import replace

from repro.core.designs import ChipDesign
from repro.core.distributions import uniform
from repro.core.study import DesignSpaceStudy
from repro.experiments.base import ExperimentTable
from repro.microarch.config import BIG, MEDIUM, SMALL, CacheConfig
from repro.microarch.uncore import DEFAULT_UNCORE, UncoreConfig
from repro.util import MB

#: The uncore scales with the budget: twice the LLC, bus and banks.
SCALED_UNCORE = UncoreConfig(
    llc=CacheConfig(16 * MB, 16, latency_cycles=32),
    interconnect=DEFAULT_UNCORE.interconnect,
    dram=replace(
        DEFAULT_UNCORE.dram, num_banks=16, bus_bandwidth_bytes_per_s=16e9
    ),
)


def _mix(name: str, *parts: Tuple[int, object]) -> ChipDesign:
    cores: List = []
    for count, config in parts:
        cores.extend([config] * count)
    return ChipDesign(name=name, cores=tuple(cores), uncore=SCALED_UNCORE)


#: Doubled power budget: 8 big-core equivalents.
SCALED_DESIGNS = [
    _mix("8B", (8, BIG)),
    _mix("6B4m", (6, BIG), (4, MEDIUM)),
    _mix("6B10s", (6, BIG), (10, SMALL)),
    _mix("4B8m", (4, BIG), (8, MEDIUM)),
    _mix("4B20s", (4, BIG), (20, SMALL)),
    _mix("2B30s", (2, BIG), (30, SMALL)),
    _mix("16m", (16, MEDIUM)),
    _mix("40s", (40, SMALL)),
]


def run(max_threads: int = 48, mixes_per_count: int = 12) -> ExperimentTable:
    """Uniform-distribution comparison at the doubled budget."""
    study = DesignSpaceStudy(
        designs=SCALED_DESIGNS, mixes_per_count=mixes_per_count
    )
    dist = uniform(max_threads)
    table = ExperimentTable(
        experiment_id="Extension: scaled budget",
        title=f"Doubled power budget (8 big-core equivalents), 1-{max_threads} threads",
        columns=["design", "no SMT", "SMT"],
    )
    values: Dict[str, Dict[str, float]] = {"no SMT": {}, "SMT": {}}
    for design in SCALED_DESIGNS:
        values["no SMT"][design.name] = study.aggregate_stp(
            design.name, "heterogeneous", dist, smt=False
        )
        values["SMT"][design.name] = study.aggregate_stp(
            design.name, "heterogeneous", dist, smt=True
        )
        table.add_row(
            design=design.name,
            **{
                "no SMT": values["no SMT"][design.name],
                "SMT": values["SMT"][design.name],
            },
        )
    for key, vals in values.items():
        best = max(vals, key=vals.get)
        table.notes.append(
            f"{key}: best={best} ({vals[best]:.3f}); 8B "
            f"{(vals['8B'] / vals[best] - 1):+.1%} vs best"
        )
    return table

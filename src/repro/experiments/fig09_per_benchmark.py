"""Figure 9: per-benchmark uniform-distribution performance (SMT everywhere).

For some benchmarks (calculix, h264ref, hmmer, tonto) 4B trails the best
heterogeneous design; for bandwidth-bound ones (libquantum, mcf) it matches
or wins — those are bandwidth-limited at high thread counts, so nothing
beats 4B's low-thread-count advantage.
"""

from repro.core.designs import DESIGN_ORDER
from repro.core.distributions import uniform
from repro.experiments.base import ExperimentTable
from repro.experiments.context import get_study
from repro.workloads.spec import SPEC_ORDER


def run() -> ExperimentTable:
    """Reproduce Figure 9 (per-benchmark averages, homogeneous mixes)."""
    study = get_study()
    dist = uniform(24)
    table = ExperimentTable(
        experiment_id="Figure 9",
        title="Per-benchmark uniform-distribution STP (SMT in all designs)",
        columns=["benchmark"] + list(DESIGN_ORDER) + ["best", "4B vs best"],
    )
    for bench in SPEC_ORDER:
        values = {
            name: study.per_benchmark_aggregate(name, bench, dist)
            for name in DESIGN_ORDER
        }
        best = max(values, key=values.get)
        table.add_row(
            benchmark=bench,
            **values,
            best=best,
            **{"4B vs best": f"{values['4B'] / values[best] - 1:+.1%}"},
        )
    return table

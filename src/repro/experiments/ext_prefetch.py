"""Extension: what would a hardware prefetcher change?

The paper's core configurations specify no prefetcher.  This experiment
runs the streaming benchmarks through the *cycle-level* tier with no
prefetcher, a next-line prefetcher, and a per-PC stride prefetcher, and
reports single-thread IPC on the big core — quantifying how much headroom
the no-prefetcher assumption leaves on the bandwidth-bound class (whose
behaviour drives Figure 4b).
"""

from typing import Dict, Optional

from repro.core.designs import ChipDesign
from repro.experiments.base import ExperimentTable
from repro.microarch.config import BIG
from repro.sim.multicore import MulticoreSimulator, ThreadSim
from repro.workloads.spec import get_profile

#: The bandwidth-bound class plus one cache-sensitive control.
PREFETCH_BENCHMARKS = ("libquantum", "lbm", "milc", "mcf")

_CONFIGS: Dict[str, Optional[str]] = {
    "none": None,
    "nextline": "nextline",
    "stride": "stride",
}


def run(instructions: int = 8_000) -> ExperimentTable:
    """Cycle-level single-thread IPC under three prefetcher configurations."""
    table = ExperimentTable(
        experiment_id="Extension: prefetching",
        title="Cycle-level big-core IPC with hardware prefetchers",
        columns=["benchmark"] + list(_CONFIGS) + ["best gain"],
    )
    design = ChipDesign(name="pf-1B", cores=(BIG,))
    for bench in PREFETCH_BENCHMARKS:
        profile = get_profile(bench)
        values: Dict[str, float] = {}
        for label, kind in _CONFIGS.items():
            sim = MulticoreSimulator(design, prefetcher=kind)
            result = sim.run([ThreadSim(profile, 0)], instructions)
            values[label] = result.ipc_of(0)
        best = max(values[k] for k in ("nextline", "stride"))
        table.add_row(
            benchmark=bench,
            **values,
            **{"best gain": f"{best / values['none'] - 1:+.1%}"},
        )
    table.notes.append(
        "the paper's cores have no prefetcher; gains here UPPER-BOUND what "
        "that assumption costs the streaming class — the synthetic "
        "compulsory stream is perfectly sequential and fills are fully "
        "timely, so next-line coverage is ideal (real mcf-style pointer "
        "chasing would not prefetch)"
    )
    return table

"""Figure 15: power and energy versus performance (Pareto analysis).

Under a uniform thread-count distribution with power-gated idle cores,
each design becomes one (throughput, power) point.  Paper anchors: 20s has
the lowest power but poor energy (too slow); 4B the highest performance but
highest power; the Pareto frontier is populated by heterogeneous designs;
the minimum-EDP design is 3B5s — yet it beats 4B's EDP by only ~4.1 %
(homogeneous mixes) / ~1.8 % (heterogeneous mixes) — Finding #9.
"""

from typing import List, Optional

from repro.core.designs import DESIGN_ORDER
from repro.core.distributions import ThreadCountDistribution, uniform
from repro.experiments.base import ExperimentTable
from repro.experiments.context import get_study
from repro.power.energy import EnergyPoint, best_edp, pareto_front


def energy_points(
    kind: str = "heterogeneous",
    distribution: Optional[ThreadCountDistribution] = None,
) -> List[EnergyPoint]:
    """One (throughput, power) point per design."""
    study = get_study()
    dist = distribution if distribution is not None else uniform(24)
    points = []
    for name in DESIGN_ORDER:
        points.append(
            EnergyPoint(
                design_name=name,
                throughput=study.aggregate_stp(name, kind, dist, smt=True),
                power_w=study.aggregate_power(name, kind, dist, smt=True),
            )
        )
    return points


def run(kind: str = "heterogeneous") -> ExperimentTable:
    """Reproduce Figure 15 (both panels, plus the EDP comparison)."""
    points = energy_points(kind)
    table = ExperimentTable(
        experiment_id="Figure 15",
        title=f"Throughput vs power and energy, {kind} workloads",
        columns=["design", "throughput", "power (W)", "energy/work", "EDP"],
    )
    for p in points:
        table.add_row(
            design=p.design_name,
            throughput=p.throughput,
            **{
                "power (W)": p.power_w,
                "energy/work": p.energy_per_work,
                "EDP": p.edp,
            },
        )
    power_front = [p.design_name for p in pareto_front(points, "power")]
    energy_front = [p.design_name for p in pareto_front(points, "energy")]
    winner = best_edp(points)
    four_b = next(p for p in points if p.design_name == "4B")
    table.notes.append(f"power-performance Pareto front: {power_front}")
    table.notes.append(f"energy-performance Pareto front: {energy_front}")
    table.notes.append(
        f"min EDP: {winner.design_name}, beating 4B by "
        f"{1 - winner.edp / four_b.edp:.1%} (paper: 3B5s by ~1.8-4.1%)"
    )
    return table

"""Figure 14: power consumption vs thread count with power gating.

All designs have SMT enabled; idle cores are power gated.  Paper anchors:
4B consumes the most power at low thread counts (~17 W with one active big
core incl. uncore, vs ~13.5/9.8 W for one medium/small core) while
delivering the highest performance; 4B grows only 42->46 W from 4 to 24
threads because activating SMT contexts costs far less than waking cores.
"""

from typing import Iterable

from repro.core.designs import DESIGN_ORDER
from repro.experiments.base import ExperimentTable
from repro.experiments.context import get_study


def run(
    kind: str = "homogeneous", thread_counts: Iterable[int] = range(1, 25)
) -> ExperimentTable:
    """Reproduce Figure 14 (per-design power curves, idle cores gated)."""
    study = get_study()
    thread_counts = list(thread_counts)
    table = ExperimentTable(
        experiment_id="Figure 14",
        title="Chip power (W) vs thread count, power-gated idle cores",
        columns=["threads"] + list(DESIGN_ORDER),
    )
    curves = {
        name: {
            n: study.mean_power(name, kind, n, smt=True, power_gate_idle=True)
            for n in thread_counts
        }
        for name in DESIGN_ORDER
    }
    for n in thread_counts:
        table.add_row(threads=n, **{name: curves[name][n] for name in DESIGN_ORDER})
    if 4 in curves["4B"] and 24 in curves["4B"]:
        table.notes.append(
            f"4B: {curves['4B'][4]:.1f} W at 4 threads -> "
            f"{curves['4B'][24]:.1f} W at 24 threads (paper: 42 -> 46 W)"
        )
    if 1 in thread_counts:
        table.notes.append(
            "one active core incl. uncore: "
            f"4B={curves['4B'][1]:.1f} W, 8m={curves['8m'][1]:.1f} W, "
            f"20s={curves['20s'][1]:.1f} W (paper: 17.3 / 13.5 / 9.8 W)"
        )
    return table

"""Extension: EPI throttling / TurboBoost for serial phases.

Annavaram et al. [1] (and Intel TurboBoost [25]) spend the power headroom
of idle cores on clocking up the one core running a serial phase.  This
experiment asks how much whole-program speedup a 25 % serial-phase boost
buys each design — and whether it changes the paper's ranking (it should
not: boosting helps every design's serial phases, and 4B's advantage never
came from its serial phases alone).
"""

from typing import Dict

from repro.core.designs import get_design
from repro.core.metrics import harmonic_mean
from repro.core.multithreaded import MultithreadedModel, speedup
from repro.experiments.base import ExperimentTable
from repro.experiments.fig11_fig12_parsec import PARSEC_DESIGNS, _reference
from repro.workloads.parsec import PARSEC_ORDER, get_workload


def run(n_threads: int = 16, boost_factor: float = 1.25) -> ExperimentTable:
    """Whole-program speedups with and without serial-phase boosting."""
    table = ExperimentTable(
        experiment_id="Extension: serial boost",
        title=f"Serial phases boosted x{boost_factor} (whole program, "
        f"{n_threads} threads)",
        columns=["design", "baseline", "boosted", "gain"],
    )
    results: Dict[str, float] = {}
    for design_name in PARSEC_DESIGNS:
        model = MultithreadedModel(get_design(design_name))
        base_speedups = []
        boosted_speedups = []
        for w_name in PARSEC_ORDER:
            w = get_workload(w_name)
            ref = _reference(w_name)
            run_result = model.run(w, n_threads, smt=True)
            base_speedups.append(speedup(run_result, ref, "whole"))
            # Boost shortens only the serial init/final phases.
            serial_time = run_result.total_seconds - run_result.roi_seconds
            boost = model.serial_rate(w) / model.boosted_serial_rate(
                w, boost_factor
            )
            boosted_total = run_result.roi_seconds + serial_time * boost
            boosted_speedups.append(ref.total_seconds / boosted_total)
        base = harmonic_mean(base_speedups)
        boosted = harmonic_mean(boosted_speedups)
        results[design_name] = boosted
        table.add_row(
            design=design_name,
            baseline=base,
            boosted=boosted,
            gain=f"{boosted / base - 1:+.1%}",
        )
    best = max(results, key=results.get)
    table.notes.append(
        f"best design with serial boosting: {best} — boosting every "
        "design's serial phases does not change the ranking"
    )
    return table

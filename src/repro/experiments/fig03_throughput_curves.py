"""Figure 3: STP vs thread count for the nine designs (SMT everywhere).

Two panels: (a) homogeneous multi-program workloads, (b) heterogeneous
mixes.  The paper's anchor points: at 24 threads 4B trails the best design
(2B10s) by ~11.6 % for homogeneous and ~7.1 % for heterogeneous workloads,
while leading at low thread counts.
"""

from typing import Iterable, Optional

from repro.core.designs import DESIGN_ORDER
from repro.experiments.base import ExperimentTable
from repro.experiments.context import get_study
from repro.microarch.uncore import UncoreConfig


def run(
    kind: str = "heterogeneous",
    thread_counts: Iterable[int] = range(1, 25),
    smt: bool = True,
    uncore: Optional[UncoreConfig] = None,
) -> ExperimentTable:
    """One panel of Figure 3: STP curves for all nine designs."""
    study = get_study(uncore)
    thread_counts = list(thread_counts)
    table = ExperimentTable(
        experiment_id="Figure 3" + ("a" if kind == "homogeneous" else "b"),
        title=f"STP vs thread count, {kind} workloads"
        + ("" if smt else " (no SMT)"),
        columns=["threads"] + list(DESIGN_ORDER),
    )
    curves = {
        name: study.throughput_curve(name, kind, thread_counts, smt)
        for name in DESIGN_ORDER
    }
    for n in thread_counts:
        table.add_row(threads=n, **{name: curves[name][n] for name in DESIGN_ORDER})

    if 24 in thread_counts:
        at24 = {name: curves[name][24] for name in DESIGN_ORDER}
        best = max(at24, key=at24.get)
        gap = 1.0 - at24["4B"] / at24[best]
        paper_gap = 0.116 if kind == "homogeneous" else 0.071
        table.notes.append(
            f"at 24 threads: best={best}, 4B trails by {gap:.1%} "
            f"(paper: {paper_gap:.1%} behind 2B10s)"
        )
    low = min(thread_counts)
    at_low = {name: curves[name][low] for name in DESIGN_ORDER}
    table.notes.append(
        f"at {low} thread(s): best={max(at_low, key=at_low.get)} (paper: 4B)"
    )
    return table

"""Figures 6-8: average performance under a uniform thread-count distribution.

Three SMT policies, one figure each:

* **Figure 6** — no SMT anywhere: heterogeneous designs win (Finding #2);
  among homogeneous designs 4B > 8m > 20s.
* **Figure 7** — SMT only in the homogeneous designs (4B/8m/20s): 4B now
  beats every heterogeneous design (Finding #3: SMT outperforms
  heterogeneity).
* **Figure 8** — SMT everywhere: the best heterogeneous design is at most
  a sliver above 4B (Findings #4-5), and the heterogeneous optimum shifts
  towards fewer, bigger cores (3B2m).
"""

from typing import Dict, Optional

from repro.core.designs import DESIGN_ORDER, get_design
from repro.core.distributions import ThreadCountDistribution, uniform
from repro.experiments.base import ExperimentTable
from repro.experiments.context import get_study
from repro.microarch.uncore import UncoreConfig

#: SMT policies keyed by figure.
SMT_POLICIES = {
    "fig6": "none",
    "fig7": "homogeneous-only",
    "fig8": "all",
}


def smt_enabled(policy: str, design_name: str) -> bool:
    """Whether SMT is on for ``design_name`` under a figure's policy."""
    if policy == "none":
        return False
    if policy == "all":
        return True
    if policy == "homogeneous-only":
        return get_design(design_name).is_homogeneous
    raise ValueError(f"unknown SMT policy {policy!r}")


def aggregate(
    policy: str,
    kind: str,
    distribution: Optional[ThreadCountDistribution] = None,
    uncore: Optional[UncoreConfig] = None,
) -> Dict[str, float]:
    """Distribution-weighted STP per design under one SMT policy."""
    study = get_study(uncore)
    dist = distribution if distribution is not None else uniform(24)
    return {
        name: study.aggregate_stp(name, kind, dist, smt=smt_enabled(policy, name))
        for name in DESIGN_ORDER
    }


def run(policy: str = "none", uncore: Optional[UncoreConfig] = None) -> ExperimentTable:
    """One of Figures 6/7/8, selected by SMT policy.

    ``policy`` is ``"none"`` (Figure 6), ``"homogeneous-only"`` (Figure 7)
    or ``"all"`` (Figure 8).
    """
    fig = {v: k for k, v in SMT_POLICIES.items()}[policy]
    number = {"fig6": "Figure 6", "fig7": "Figure 7", "fig8": "Figure 8"}[fig]
    table = ExperimentTable(
        experiment_id=number,
        title=f"Uniform-distribution average STP, SMT policy: {policy}",
        columns=["design", "homogeneous", "heterogeneous"],
    )
    per_kind = {kind: aggregate(policy, kind) for kind in ("homogeneous", "heterogeneous")}
    for name in DESIGN_ORDER:
        table.add_row(
            design=name,
            homogeneous=per_kind["homogeneous"][name],
            heterogeneous=per_kind["heterogeneous"][name],
        )
    for kind in ("homogeneous", "heterogeneous"):
        vals = per_kind[kind]
        best = max(vals, key=vals.get)
        table.notes.append(
            f"{kind}: best={best} ({vals[best]:.3f}), 4B={vals['4B']:.3f} "
            f"({(vals['4B'] / vals[best] - 1):+.1%} vs best)"
        )
    return table

"""Figure 17: the study repeated with 16 GB/s memory bandwidth.

Doubling the off-chip bus relieves the bandwidth-bound benchmarks on every
design.  Paper anchors (uniform distribution, SMT everywhere): for
homogeneous multi-program workloads 4B ends up ~0.8 % below the optimum
(was 0.6 % at 8 GB/s); for heterogeneous mixes ~0.4 % below (was 0.5 %
above); multi-threaded ROI 4B ~2.9 % below the optimum — the conclusions
survive high bandwidth (Finding #11).
"""

from typing import Dict

from repro.core.designs import DESIGN_ORDER
from repro.core.distributions import uniform
from repro.experiments.base import ExperimentTable
from repro.experiments.context import get_study
from repro.microarch.uncore import HIGH_BANDWIDTH_UNCORE


def run(kind: str = "heterogeneous") -> ExperimentTable:
    """Reproduce Figure 17(a): multi-program results at 16 GB/s."""
    study = get_study(HIGH_BANDWIDTH_UNCORE)
    baseline = get_study()
    dist = uniform(24)
    table = ExperimentTable(
        experiment_id="Figure 17",
        title=f"Uniform-distribution STP at 16 GB/s, {kind} workloads",
        columns=["design", "STP @8GB/s", "STP @16GB/s", "gain"],
    )
    high: Dict[str, float] = {}
    for name in DESIGN_ORDER:
        v8 = baseline.aggregate_stp(name, kind, dist, smt=True)
        v16 = study.aggregate_stp(name, kind, dist, smt=True)
        high[name] = v16
        table.add_row(
            design=name,
            **{
                "STP @8GB/s": v8,
                "STP @16GB/s": v16,
                "gain": f"{v16 / v8 - 1:+.1%}",
            },
        )
    best = max(high, key=high.get)
    table.notes.append(
        f"at 16 GB/s: best={best}, 4B {(high['4B'] / high[best] - 1):+.1%} vs "
        "best (paper: within ~1%)"
    )
    return table

"""Shared result-table plumbing for the experiment drivers."""

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass
class ExperimentTable:
    """A figure/table reproduction: named columns and data rows.

    ``rows`` are dicts keyed by column name; values may be strings or
    numbers.  ``notes`` carries the experiment's paper-vs-measured summary
    lines used by EXPERIMENTS.md and the benchmark printouts.
    """

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ValueError(f"row missing columns {missing}")
        self.rows.append(values)

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}; have {self.columns}")
        return [row[name] for row in self.rows]

    def row_by(self, key_column: str, key: Any) -> Dict[str, Any]:
        """The first row whose ``key_column`` equals ``key``."""
        for row in self.rows:
            if row[key_column] == key:
                return row
        raise KeyError(f"no row with {key_column}={key!r}")

    def to_json(self, indent: int = 2) -> str:
        """Machine-readable rendering (used by the CLI's ``--json`` flag)."""
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "columns": self.columns,
                "rows": self.rows,
                "notes": self.notes,
            },
            indent=indent,
        )

    def formatted(self, float_digits: int = 3) -> str:
        """Human-readable fixed-width rendering (used by the bench harness)."""

        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.{float_digits}f}"
            return str(value)

        header = [self.columns]
        body = [[fmt(row[c]) for c in self.columns] for row in self.rows]
        widths = [
            max(len(r[i]) for r in header + body) for i in range(len(self.columns))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in body:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        for note in self.notes:
            lines.append(f"# {note}")
        return "\n".join(lines)

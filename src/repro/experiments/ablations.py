"""Ablation studies for the design choices DESIGN.md calls out.

* **Co-scheduling** — the paper selects SMT co-schedules offline; the
  library's heuristic (pressure-balancing snake deal) is compared against
  local-search-optimized and adversarial (pressure-stacked) schedules.
* **LLC sharing model** — LRU-like demand occupancy vs idealized even
  partitioning: quantifies how much a managed shared cache would buy on
  top of the study's baseline.
* **ROB partitioning** — static (the paper's SMT core) vs dynamically
  shared windows.
* **SMT fetch policy** — the paper's round-robin fetch [24] vs ICOUNT
  [31]: throughput-vs-fairness under n-way SMT.
"""

from typing import Dict, List

from repro.core.designs import get_design
from repro.core.metrics import harmonic_mean, stp
from repro.core.scheduler import (
    Scheduler,
    _cached_isolated_ips,
    optimize_coschedule,
)
from repro.experiments.base import ExperimentTable
from repro.interval.contention import ChipModel, Placement
from repro.microarch.config import BIG
from repro.workloads.multiprogram import heterogeneous_mixes, profiles_for


def _score(design, placement: Placement, **model_kwargs) -> float:
    result = ChipModel(design, **model_kwargs).evaluate(placement)
    specs = [s for ts in placement.core_threads for s in ts]
    refs = [_cached_isolated_ips(s.profile, BIG) for s in specs]
    return stp([t.ips for t in result.threads], refs)


def _stacked_placement(design, profiles, smt=True) -> Placement:
    """Adversarial co-schedule: group similar-pressure threads together."""
    scheduler = Scheduler(design, smt=smt)
    counts = scheduler.slot_counts(len(profiles))
    ordered = sorted(profiles, key=lambda p: p.cache_pressure(), reverse=True)
    from repro.interval.contention import ThreadSpec

    core_threads: List[List[ThreadSpec]] = []
    it = iter(ordered)
    for c in counts:
        core_threads.append([ThreadSpec(next(it)) for _ in range(c)])
    return Placement.from_lists(core_threads)


def run_scheduling(
    design_name: str = "4B", n_threads: int = 8, num_mixes: int = 6, seed: int = 7
) -> ExperimentTable:
    """Heuristic vs optimized vs adversarial co-scheduling."""
    design = get_design(design_name)
    table = ExperimentTable(
        experiment_id="Ablation: co-scheduling",
        title=f"Co-schedule quality on {design_name}, {n_threads} threads",
        columns=["mix", "stacked", "heuristic", "optimized"],
    )
    sums: Dict[str, List[float]] = {"stacked": [], "heuristic": [], "optimized": []}
    for i, mix in enumerate(
        heterogeneous_mixes(n_threads, num_mixes=num_mixes, seed=seed)
    ):
        profiles = profiles_for(mix)
        heuristic = Scheduler(design, smt=True).place(profiles)
        stacked = _stacked_placement(design, profiles)
        optimized = optimize_coschedule(design, heuristic, max_rounds=1)
        row = {
            "mix": f"mix{i}",
            "stacked": _score(design, stacked),
            "heuristic": _score(design, heuristic),
            "optimized": _score(design, optimized),
        }
        table.rows.append(row)
        for key in sums:
            sums[key].append(row[key])
    means = {k: harmonic_mean(v) for k, v in sums.items()}
    table.notes.append(
        "mean STP: "
        + ", ".join(f"{k}={v:.3f}" for k, v in means.items())
        + f"; heuristic within {1 - means['heuristic'] / means['optimized']:.1%} "
        "of optimized"
    )
    return table


def run_llc_sharing(n_threads: int = 24, num_mixes: int = 6) -> ExperimentTable:
    """LRU-like demand occupancy vs idealized even LLC partitioning (4B).

    ``demand`` (the study's baseline) models what an unmanaged LRU shared
    cache converges to: occupancy proportional to miss pressure — which
    lets thrashing streamers squat on capacity they cannot use.  ``even``
    models an idealized way-partitioned cache.  Even partitioning winning
    by a wide margin reproduces the classic motivation for utility-based
    cache partitioning (Qureshi & Patt's UCP).
    """
    design = get_design("4B")
    table = ExperimentTable(
        experiment_id="Ablation: LLC sharing",
        title="LRU-like demand occupancy vs even LLC partitioning (4B)",
        columns=["mix", "even", "demand"],
    )
    gains = []
    for i, mix in enumerate(heterogeneous_mixes(n_threads, num_mixes=num_mixes)):
        profiles = profiles_for(mix)
        placement = Scheduler(design, smt=True).place(profiles)
        even = _score(design, placement, llc_sharing="even")
        demand = _score(design, placement, llc_sharing="demand")
        table.add_row(mix=f"mix{i}", even=even, demand=demand)
        gains.append(demand / even - 1)
    table.notes.append(
        f"LRU-like demand occupancy changes STP by "
        f"{sum(gains) / len(gains):+.1%} vs idealized even partitioning — "
        "streamers squat on capacity they cannot use (the UCP motivation)"
    )
    return table


def run_rob_partitioning(n_threads: int = 24, num_mixes: int = 6) -> ExperimentTable:
    """Static vs dynamically shared SMT windows on the 4B design."""
    design = get_design("4B")
    table = ExperimentTable(
        experiment_id="Ablation: ROB partitioning",
        title="Static vs shared ROB partitioning under 6-way SMT (4B)",
        columns=["mix", "static", "shared"],
    )
    gains = []
    for i, mix in enumerate(heterogeneous_mixes(n_threads, num_mixes=num_mixes)):
        profiles = profiles_for(mix)
        placement = Scheduler(design, smt=True).place(profiles)
        static = _score(design, placement, rob_partitioning="static")
        shared = _score(design, placement, rob_partitioning="shared")
        table.add_row(mix=f"mix{i}", static=static, shared=shared)
        gains.append(shared / static - 1)
    table.notes.append(
        f"sharing the window changes STP by {sum(gains) / len(gains):+.1%} "
        "on average — near-zero: the extra per-thread MLP mostly turns into "
        "extra bus pressure once the chip is memory-saturated"
    )
    return table


def run_fetch_policy(n_threads: int = 24, num_mixes: int = 6) -> ExperimentTable:
    """Round-robin vs ICOUNT SMT fetch on the 4B design.

    Reports both throughput (STP) and fairness (ANTT): ICOUNT equalizes
    per-thread progress, which typically trades a little peak throughput
    for a better worst-case slowdown.
    """
    from repro.core.metrics import antt

    design = get_design("4B")
    table = ExperimentTable(
        experiment_id="Ablation: SMT fetch policy",
        title="Round-robin vs ICOUNT fetch under 6-way SMT (4B)",
        columns=["mix", "RR stp", "ICOUNT stp", "RR antt", "ICOUNT antt"],
    )

    def score_both(placement, policy):
        result = ChipModel(design, fetch_policy=policy).evaluate(placement)
        specs = [s for ts in placement.core_threads for s in ts]
        refs = [_cached_isolated_ips(s.profile, BIG) for s in specs]
        shared = [t.ips for t in result.threads]
        return stp(shared, refs), antt(shared, refs)

    stp_deltas = []
    antt_deltas = []
    for i, mix in enumerate(heterogeneous_mixes(n_threads, num_mixes=num_mixes)):
        placement = Scheduler(design, smt=True).place(profiles_for(mix))
        rr_stp, rr_antt = score_both(placement, "roundrobin")
        ic_stp, ic_antt = score_both(placement, "icount")
        table.add_row(
            mix=f"mix{i}",
            **{
                "RR stp": rr_stp,
                "ICOUNT stp": ic_stp,
                "RR antt": rr_antt,
                "ICOUNT antt": ic_antt,
            },
        )
        stp_deltas.append(ic_stp / rr_stp - 1)
        antt_deltas.append(ic_antt / rr_antt - 1)
    table.notes.append(
        f"ICOUNT vs round-robin: STP {sum(stp_deltas) / len(stp_deltas):+.2%}, "
        f"ANTT {sum(antt_deltas) / len(antt_deltas):+.2%} — near-zero, "
        "because the statically partitioned window already enforces "
        "fairness, making the fetch policy secondary (the Raasch & "
        "Reinhardt [24] observation the paper's SMT core builds on)"
    )
    return table

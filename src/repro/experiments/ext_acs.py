"""Extension: Accelerating Critical Sections vs SMT flexibility.

The paper's Section 9 argues that the benefits of ACS (Suleman et al. [29]
— migrating critical sections to a big core in a heterogeneous multi-core)
"might potentially be achieved through SMT on a homogeneous multi-core":
on 4B a critical section already runs on a big core with no migration or
data-marshaling cost.

This experiment runs the lock-heavy PARSEC-like workloads on the
single-big-core heterogeneous designs with pinned vs ACS critical
sections, and compares against plain 4B — quantifying how much of ACS's
gain the homogeneous SMT design gets "for free".
"""

from typing import Dict

from repro.core.designs import get_design
from repro.core.metrics import harmonic_mean
from repro.core.multithreaded import MultithreadedModel, speedup
from repro.experiments.base import ExperimentTable
from repro.experiments.fig11_fig12_parsec import _reference
from repro.workloads.parsec import PARSEC_ORDER, get_workload

#: The lock-heavy applications where critical sections matter.
ACS_WORKLOADS = ("bodytrack", "swaptions", "ferret", "freqmine", "dedup")


def run(n_threads: int = 16) -> ExperimentTable:
    """Whole-program speedups with pinned vs accelerated critical sections."""
    table = ExperimentTable(
        experiment_id="Extension: ACS",
        title=f"Critical-section acceleration at {n_threads} threads (whole program)",
        columns=["design", "pinned", "ACS", "ACS gain"],
    )
    means: Dict[str, Dict[str, float]] = {}
    for design_name in ("1B6m", "1B15s", "4B"):
        model = MultithreadedModel(get_design(design_name))
        speedups = {"pinned": [], "ACS": []}
        for w_name in ACS_WORKLOADS:
            w = get_workload(w_name)
            ref = _reference(w_name)
            for mode, key in (("pinned", "pinned"), ("accelerated", "ACS")):
                run_result = model.run(
                    w, n_threads, smt=True, critical_sections=mode
                )
                speedups[key].append(speedup(run_result, ref, "whole"))
        pinned = harmonic_mean(speedups["pinned"])
        acs = harmonic_mean(speedups["ACS"])
        means[design_name] = {"pinned": pinned, "ACS": acs}
        table.add_row(
            design=design_name,
            pinned=pinned,
            ACS=acs,
            **{"ACS gain": f"{acs / pinned - 1:+.1%}"},
        )
    best_acs = max(means, key=lambda d: means[d]["ACS"])
    table.notes.append(
        f"best with ACS: {best_acs}; plain 4B (SMT) = "
        f"{means['4B']['pinned']:.2f} — the homogeneous design gets the "
        "big-core critical-section rate without migration"
    )
    return table

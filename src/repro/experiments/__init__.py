"""Experiment drivers: one module per paper figure/table.

Each ``figNN_*`` module exposes a ``run(...)`` function returning an
:class:`~repro.experiments.base.ExperimentTable` whose rows mirror the data
series of the corresponding figure in the paper, and the benchmark harness
(`benchmarks/`) simply calls these and prints them.  ``findings`` evaluates
the paper's eleven findings as boolean claims with tolerances.

All drivers share the memoized study context in
:mod:`repro.experiments.context`, so regenerating every figure reuses
common (design, mix, thread count) evaluations.
"""

from repro.experiments.base import ExperimentTable
from repro.experiments.context import get_study, reset_context

__all__ = ["ExperimentTable", "get_study", "reset_context"]

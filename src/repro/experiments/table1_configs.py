"""Table 1: the big, medium and small core configurations."""

from repro.experiments.base import ExperimentTable
from repro.microarch.config import BIG, MEDIUM, SMALL
from repro.util import KB


def run() -> ExperimentTable:
    """Reproduce Table 1 (core configuration summary)."""
    table = ExperimentTable(
        experiment_id="Table 1",
        title="Big, medium and small core configurations",
        columns=[
            "parameter",
            "big",
            "medium",
            "small",
        ],
    )
    cores = (BIG, MEDIUM, SMALL)

    def row(parameter, values):
        table.add_row(
            parameter=parameter,
            big=values[0],
            medium=values[1],
            small=values[2],
        )

    row("frequency (GHz)", [f"{c.frequency_ghz:.2f}" for c in cores])
    row("type", [c.core_type.value for c in cores])
    row("width", [str(c.width) for c in cores])
    row("ROB size", [str(c.rob_size) if c.is_out_of_order else "N/A" for c in cores])
    row(
        "func. units (int/ldst/muldiv/fp)",
        [
            f"{c.functional_units.int_alu}/{c.functional_units.load_store}/"
            f"{c.functional_units.mul_div}/{c.functional_units.fp}"
            for c in cores
        ],
    )
    row("SMT contexts", [f"up to {c.max_smt_contexts}" for c in cores])
    row(
        "L1 I-cache",
        [f"{c.l1i.size_bytes // KB}KB {c.l1i.associativity}-way" for c in cores],
    )
    row(
        "L1 D-cache",
        [f"{c.l1d.size_bytes // KB}KB {c.l1d.associativity}-way" for c in cores],
    )
    row(
        "L2 cache",
        [f"{c.l2.size_bytes // KB}KB {c.l2.associativity}-way" for c in cores],
    )
    table.notes.append(
        "Shared: 8MB 16-way LLC, 2.66GHz full crossbar, 8-bank 45ns DRAM, 8GB/s bus"
    )
    return table

"""The paper's eleven findings, evaluated as checkable claims.

Each ``finding_N()`` recomputes the relevant experiment through the shared
study context and returns a :class:`Finding` with a pass/fail verdict and
the measured evidence.  Tolerances encode "roughly the paper's factor":
this is a reproduction on synthetic workload substitutes, so claims are
checked directionally (who wins, ordering, within-x-percent) rather than to
the paper's third decimal.
"""

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.designs import DESIGN_ORDER, get_design
from repro.core.distributions import datacenter, mirrored_datacenter, uniform
from repro.core.dynamic import IdealDynamicMulticore
from repro.core.metrics import harmonic_mean
from repro.experiments.context import get_study
from repro.experiments.fig06_fig07_fig08_uniform import aggregate
from repro.experiments.fig11_fig12_parsec import PARSEC_DESIGNS, benchmark_speedup
from repro.experiments.fig15_pareto import best_edp, energy_points
from repro.experiments.fig16_alternatives import FIG16_DESIGNS
from repro.experiments import fig16_alternatives, fig17_bandwidth
from repro.workloads.parsec import PARSEC_ORDER

HETERO_DESIGNS = [n for n in DESIGN_ORDER if not get_design(n).is_homogeneous]
HOMOG_DESIGNS = [n for n in DESIGN_ORDER if get_design(n).is_homogeneous]


@dataclass(frozen=True)
class Finding:
    """One of the paper's findings, with the reproduction's verdict."""

    number: int
    claim: str
    holds: bool
    evidence: str


def finding_1() -> Finding:
    """4B leads at low thread counts and stays close at high ones."""
    study = get_study()
    verdicts = []
    evidence = []
    for kind in ("homogeneous", "heterogeneous"):
        low = {n: study.mean_stp(n, kind, 1, smt=True) for n in DESIGN_ORDER}
        high = {n: study.mean_stp(n, kind, 24, smt=True) for n in DESIGN_ORDER}
        best_low = max(low, key=low.get)
        best_high = max(high, key=high.get)
        gap_high = 1.0 - high["4B"] / high[best_high]
        verdicts.append(best_low == "4B" and gap_high < 0.25)
        evidence.append(
            f"{kind}: best@1={best_low}, 4B trails best@24 ({best_high}) by "
            f"{gap_high:.1%}"
        )
    return Finding(
        1,
        "Homogeneous 4B SMT: best at few threads, only modestly worse at many",
        all(verdicts),
        "; ".join(evidence),
    )


def finding_2() -> Finding:
    """Without SMT, heterogeneous designs win; 4B leads the homogeneous ones."""
    verdicts = []
    evidence = []
    for kind in ("homogeneous", "heterogeneous"):
        vals = aggregate("none", kind)
        best = max(vals, key=vals.get)
        hetero_best = best in HETERO_DESIGNS
        ordering = vals["4B"] >= vals["8m"] * 0.98 >= 0 and vals["8m"] > vals["20s"]
        verdicts.append(hetero_best and ordering)
        evidence.append(
            f"{kind}: best={best}, 4B={vals['4B']:.2f} 8m={vals['8m']:.2f} "
            f"20s={vals['20s']:.2f}"
        )
    return Finding(
        2,
        "No SMT: heterogeneous multi-cores outperform homogeneous ones",
        all(verdicts),
        "; ".join(evidence),
    )


def finding_3() -> Finding:
    """SMT in the homogeneous designs beats heterogeneity without SMT."""
    verdicts = []
    evidence = []
    for kind in ("homogeneous", "heterogeneous"):
        vals = aggregate("homogeneous-only", kind)
        best = max(vals, key=vals.get)
        verdicts.append(best == "4B")
        evidence.append(f"{kind}: best={best} ({vals[best]:.2f})")
    return Finding(
        3,
        "4B with SMT outperforms heterogeneous designs without SMT",
        all(verdicts),
        "; ".join(evidence),
    )


def finding_4() -> Finding:
    """Adding SMT to heterogeneous designs buys almost nothing over 4B."""
    verdicts = []
    evidence = []
    for kind in ("homogeneous", "heterogeneous"):
        vals = aggregate("all", kind)
        hetero_best = max(
            (n for n in HETERO_DESIGNS), key=lambda n: vals[n]
        )
        margin = vals[hetero_best] / vals["4B"] - 1.0
        verdicts.append(margin < 0.03)
        evidence.append(
            f"{kind}: best hetero {hetero_best} is {margin:+.1%} vs 4B "
            "(paper: +0.6% / -0.5%)"
        )
    return Finding(
        4,
        "The added benefit of combining heterogeneity and SMT is limited",
        all(verdicts),
        "; ".join(evidence),
    )


def finding_5() -> Finding:
    """With SMT, the optimal heterogeneous design shifts to fewer, bigger cores."""
    verdicts = []
    evidence = []
    for kind in ("homogeneous", "heterogeneous"):
        no_smt = aggregate("none", kind)
        smt = aggregate("all", kind)
        best_no = max(HETERO_DESIGNS, key=lambda n: no_smt[n])
        best_smt = max(HETERO_DESIGNS, key=lambda n: smt[n])
        bigs_no = get_design(best_no).core_counts().get("big", 0)
        bigs_smt = get_design(best_smt).core_counts().get("big", 0)
        verdicts.append(bigs_smt >= bigs_no)
        evidence.append(
            f"{kind}: optimum {best_no} ({bigs_no} big) -> {best_smt} "
            f"({bigs_smt} big)"
        )
    return Finding(
        5,
        "Adding SMT shifts the heterogeneous optimum towards fewer, larger cores",
        all(verdicts),
        "; ".join(evidence),
    )


def finding_6() -> Finding:
    """Datacenter distributions: 4B SMT optimal or within ~1.5% of optimal."""
    study = get_study()
    verdicts = []
    evidence = []
    for dist, must_win in ((datacenter(24), True), (mirrored_datacenter(24), False)):
        vals = {
            n: study.aggregate_stp(n, "heterogeneous", dist, smt=True)
            for n in DESIGN_ORDER
        }
        best = max(vals, key=vals.get)
        gap = 1.0 - vals["4B"] / vals[best]
        verdicts.append(best == "4B" if must_win else gap < 0.015)
        evidence.append(f"{dist.name}: best={best}, 4B gap {gap:.2%}")
    return Finding(
        6,
        "4B SMT optimal for thread-skewed distributions, near-optimal otherwise",
        all(verdicts),
        "; ".join(evidence),
    )


def finding_7() -> Finding:
    """Multi-threaded workloads: SMT lets 4B match/beat heterogeneous designs."""
    whole_smt = {
        d: harmonic_mean(
            [benchmark_speedup(d, w, True, "whole") for w in PARSEC_ORDER]
        )
        for d in PARSEC_DESIGNS
    }
    hetero_no_smt = {
        d: harmonic_mean(
            [benchmark_speedup(d, w, False, "whole") for w in PARSEC_ORDER]
        )
        for d in ("1B6m", "1B15s")
    }
    best_whole = max(whole_smt, key=whole_smt.get)
    beats_hetero = whole_smt["4B"] >= max(hetero_no_smt.values())
    return Finding(
        7,
        "SMT benefits multi-threaded workloads; 4B+SMT beats hetero w/o SMT",
        best_whole == "4B" and beats_hetero,
        f"whole-program best={best_whole} ({whole_smt[best_whole]:.2f}); "
        f"4B+SMT={whole_smt['4B']:.2f} vs best hetero w/o SMT "
        f"{max(hetero_no_smt.values()):.2f}",
    )


def finding_8() -> Finding:
    """4B with SMT is competitive with an ideal dynamic multi-core (no SMT)."""
    study = get_study()
    oracle = IdealDynamicMulticore(study)
    verdicts = []
    evidence = []
    for kind in ("homogeneous", "heterogeneous"):
        counts = range(1, 25)
        c4b = study.throughput_curve("4B", kind, counts, smt=True)
        cdyn = oracle.throughput_curve(kind, counts, smt=False)
        mean_4b = sum(c4b.values()) / len(c4b)
        mean_dyn = sum(cdyn.values()) / len(cdyn)
        verdicts.append(mean_4b >= mean_dyn * 0.97)
        evidence.append(
            f"{kind}: 4B(SMT)={mean_4b:.2f} vs dynamic(noSMT)={mean_dyn:.2f}"
        )
    return Finding(
        8,
        "4B SMT outperforms or matches an ideal dynamic multi-core without SMT",
        all(verdicts),
        "; ".join(evidence),
    )


def finding_9() -> Finding:
    """Power gating buys heterogeneous designs only slightly better EDP."""
    verdicts = []
    evidence = []
    for kind in ("homogeneous", "heterogeneous"):
        points = energy_points(kind)
        winner = best_edp(points)
        four_b = next(p for p in points if p.design_name == "4B")
        margin = 1.0 - winner.edp / four_b.edp
        is_hetero_or_4b = winner.design_name in HETERO_DESIGNS + ["4B"]
        verdicts.append(is_hetero_or_4b and margin < 0.10)
        evidence.append(
            f"{kind}: min-EDP={winner.design_name}, {margin:.1%} better than 4B "
            "(paper: 3B5s by 4.1%/1.8%)"
        )
    return Finding(
        9,
        "Heterogeneous designs are only slightly more energy-efficient than 4B",
        all(verdicts),
        "; ".join(evidence),
    )


def finding_10() -> Finding:
    """Bigger caches / higher frequency for small cores do not dethrone 4B."""
    table = fig16_alternatives.run()
    vals = {row["design"]: row["mean speedup"] for row in table.rows}
    best = max(vals, key=vals.get)
    return Finding(
        10,
        "4B stays (near-)optimal against larger-cache/higher-frequency variants",
        best == "4B",
        f"best={best}; " + ", ".join(f"{k}={v:.2f}" for k, v in vals.items()),
    )


def finding_11() -> Finding:
    """The conclusions survive doubling memory bandwidth to 16 GB/s."""
    verdicts = []
    evidence = []
    for kind in ("homogeneous", "heterogeneous"):
        table = fig17_bandwidth.run(kind)
        vals = {row["design"]: row["STP @16GB/s"] for row in table.rows}
        best = max(vals, key=vals.get)
        gap = 1.0 - vals["4B"] / vals[best]
        verdicts.append(gap < 0.03)
        evidence.append(f"{kind}: best={best}, 4B gap {gap:.2%} (paper: <1%)")
    return Finding(
        11,
        "4B remains close to optimal under 16 GB/s memory bandwidth",
        all(verdicts),
        "; ".join(evidence),
    )


ALL_FINDINGS: List[Callable[[], Finding]] = [
    finding_1,
    finding_2,
    finding_3,
    finding_4,
    finding_5,
    finding_6,
    finding_7,
    finding_8,
    finding_9,
    finding_10,
    finding_11,
]


def evaluate_all() -> List[Finding]:
    """Evaluate every finding (shares the memoized study context)."""
    return [f() for f in ALL_FINDINGS]

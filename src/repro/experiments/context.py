"""Shared, memoized evaluation context for the experiment drivers.

Regenerating every figure touches thousands of (design, mix, thread count)
points, many of them shared between figures; this module keeps one
:class:`~repro.core.study.DesignSpaceStudy` per uncore configuration so the
work is done once per process.
"""

from typing import Dict, Optional

from repro.core.study import DesignSpaceStudy
from repro.microarch.uncore import UncoreConfig

_STUDIES: Dict[Optional[UncoreConfig], DesignSpaceStudy] = {}


def get_study(uncore: Optional[UncoreConfig] = None) -> DesignSpaceStudy:
    """The process-wide study for a given uncore (None = baseline 8 GB/s)."""
    if uncore not in _STUDIES:
        _STUDIES[uncore] = DesignSpaceStudy(uncore=uncore)
    return _STUDIES[uncore]


def reset_context() -> None:
    """Drop all memoized studies (mainly for tests that tweak globals)."""
    _STUDIES.clear()

"""Shared, memoized evaluation context for the experiment drivers.

Regenerating every figure touches thousands of (design, mix, thread count)
points, many of them shared between figures; this module keeps one
:class:`~repro.core.study.DesignSpaceStudy` per uncore configuration so the
work is done once per process.

An :class:`~repro.engine.executor.Engine` can be installed with
:func:`set_engine`; every study created afterwards submits its grid points
through it, gaining parallel evaluation and the persistent result store.
The CLI (``figure --jobs/--cache-dir``) and the benchmark harness
(``benchmarks/conftest.py``) both use this hook.
"""

from typing import TYPE_CHECKING, Dict, Optional

from repro.core.study import DesignSpaceStudy
from repro.microarch.uncore import UncoreConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.executor import Engine

_STUDIES: Dict[Optional[UncoreConfig], DesignSpaceStudy] = {}
_ENGINE: Optional["Engine"] = None


def get_study(uncore: Optional[UncoreConfig] = None) -> DesignSpaceStudy:
    """The process-wide study for a given uncore (None = baseline 8 GB/s)."""
    if uncore not in _STUDIES:
        _STUDIES[uncore] = DesignSpaceStudy(uncore=uncore, engine=_ENGINE)
    return _STUDIES[uncore]


def set_engine(engine: Optional["Engine"]) -> None:
    """Install (or remove, with None) the engine behind future studies.

    Existing memoized studies are dropped so they cannot keep submitting
    through a stale engine; their in-memory results are recomputed on
    demand (or served from the new engine's store).
    """
    global _ENGINE
    _ENGINE = engine
    _STUDIES.clear()


def get_engine() -> Optional["Engine"]:
    """The currently installed engine, if any."""
    return _ENGINE


def reset_context() -> None:
    """Drop all memoized studies and any installed engine (mainly tests)."""
    global _ENGINE
    _ENGINE = None
    _STUDIES.clear()

"""Figure 4: per-benchmark STP curves for tonto and libquantum.

The two benchmarks typify the two behaviour classes the paper observes:

* **tonto** (compute-bound): beyond ~8 threads the many-core designs pull
  ahead of 4B thanks to their larger aggregate execution resources;
* **libquantum** (bandwidth-bound): shared-resource contention (memory bus)
  dominates at high thread counts — its memory access time inflates ~4x
  from 1 to 24 threads — flattening all designs onto the same curve.
"""

from typing import Iterable

from repro.core.designs import DESIGN_ORDER
from repro.experiments.base import ExperimentTable
from repro.experiments.context import get_study


def run(
    benchmark: str = "tonto", thread_counts: Iterable[int] = range(1, 25)
) -> ExperimentTable:
    """One panel of Figure 4: homogeneous mixes of one benchmark."""
    study = get_study()
    thread_counts = list(thread_counts)
    table = ExperimentTable(
        experiment_id="Figure 4" + ("a" if benchmark == "tonto" else "b"),
        title=f"STP vs thread count, homogeneous {benchmark} workloads",
        columns=["threads"] + list(DESIGN_ORDER),
    )
    for n in thread_counts:
        table.add_row(
            threads=n,
            **{
                name: study.evaluate_mix(name, [benchmark] * n).stp
                for name in DESIGN_ORDER
            },
        )
    if 24 in thread_counts:
        r = study.evaluate_mix("4B", [benchmark] * 24)
        table.notes.append(
            f"{benchmark} on 4B at 24 threads: memory latency inflation "
            f"{r.mem_latency_inflation:.2f}x, bus utilization "
            f"{r.bus_utilization:.2f} (paper: ~4x inflation for libquantum)"
        )
    return table

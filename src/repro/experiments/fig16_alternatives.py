"""Figure 16: larger-cache and higher-frequency medium/small variants.

Keeping private cache sizes equal to the big core's (``_lc``) or raising
the clock to 3.33 GHz (``_hf``) costs power, shrinking the affordable core
count to 6 medium / 16 small.  Paper anchors (multi-threaded ROI): the
small-core configuration gains from both variants (most benchmarks do not
scale to 20 threads, so trading cores for per-core speed pays off); the
medium-core configuration loses (core count matters more there); 4B stays
on top — Finding #10.
"""

from typing import Dict, Sequence

from repro.core.designs import ALTERNATIVE_DESIGNS, get_design
from repro.core.metrics import harmonic_mean
from repro.core.multithreaded import MultithreadedModel, speedup
from repro.experiments.base import ExperimentTable
from repro.experiments.fig11_fig12_parsec import _model, _reference
from repro.workloads.parsec import PARSEC_ORDER, get_workload

#: Designs compared in Figure 16 (all with SMT, ROI-only).
FIG16_DESIGNS = ("4B", "8m", "20s", "6m_lc", "16s_lc", "6m_hf", "16s_hf")


def run(scope: str = "roi", smt: bool = True) -> ExperimentTable:
    """Reproduce Figure 16 (PARSEC speedups on the alternative designs)."""
    table = ExperimentTable(
        experiment_id="Figure 16",
        title="PARSEC speedup with larger-cache / higher-frequency variants",
        columns=["design", "mean speedup"],
    )
    values: Dict[str, float] = {}
    for name in FIG16_DESIGNS:
        model = MultithreadedModel(get_design(name))
        speedups = []
        for w in PARSEC_ORDER:
            best = model.best_run(get_workload(w), smt=smt, scope=scope)
            speedups.append(speedup(best, _reference(w), scope))
        values[name] = harmonic_mean(speedups)
        table.add_row(design=name, **{"mean speedup": values[name]})
    best = max(values, key=values.get)
    table.notes.append(f"best design: {best} (paper: 4B)")
    if values["16s_hf"] > values["20s"]:
        table.notes.append(
            "16s_hf > 20s: trading small cores for frequency pays off (paper agrees)"
        )
    if values["16s_lc"] > values["20s"]:
        table.notes.append(
            "16s_lc > 20s: trading small cores for cache pays off (paper agrees)"
        )
    return table

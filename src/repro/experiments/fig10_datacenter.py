"""Figure 10: datacenter and mirrored-datacenter thread-count distributions.

Panel (a) is the distribution itself (Barroso-Holzle utilization adapted to
24 threads); panel (b) the per-design averages with and without SMT.  Paper
anchors: without SMT the optimum is 1B6m (datacenter) and 1B15s (mirrored);
with SMT the fewer-but-bigger designs win, 4B optimal for the datacenter
distribution and within ~0.6 % of 3B2m for the mirrored one.
"""

from typing import Optional

from repro.core.designs import DESIGN_ORDER
from repro.core.distributions import datacenter, mirrored_datacenter
from repro.experiments.base import ExperimentTable
from repro.experiments.context import get_study
from repro.microarch.uncore import UncoreConfig


def run_distribution() -> ExperimentTable:
    """Figure 10(a): the datacenter thread-count distribution."""
    dist = datacenter(24)
    table = ExperimentTable(
        experiment_id="Figure 10a",
        title="Datacenter active-thread-count distribution",
        columns=["threads", "probability"],
    )
    for n in range(1, 25):
        table.add_row(threads=n, probability=dist.probability(n))
    peak1 = max(range(1, 25), key=dist.probability)
    mid = max(range(5, 13), key=dist.probability)
    table.notes.append(
        f"modes at {peak1} thread(s) and around {mid} threads "
        "(paper: peaks at 1 and 7-9 threads)"
    )
    return table


def run(
    kind: str = "heterogeneous", uncore: Optional[UncoreConfig] = None
) -> ExperimentTable:
    """Figure 10(b): average STP under both datacenter distributions."""
    study = get_study(uncore)
    table = ExperimentTable(
        experiment_id="Figure 10b",
        title="Average STP under datacenter distributions",
        columns=[
            "design",
            "datacenter noSMT",
            "datacenter SMT",
            "mirrored noSMT",
            "mirrored SMT",
        ],
    )
    dists = {"datacenter": datacenter(24), "mirrored": mirrored_datacenter(24)}
    values = {}
    for dist_name, dist in dists.items():
        for smt in (False, True):
            key = f"{dist_name} {'SMT' if smt else 'noSMT'}"
            values[key] = {
                name: study.aggregate_stp(name, kind, dist, smt)
                for name in DESIGN_ORDER
            }
    for name in DESIGN_ORDER:
        table.add_row(design=name, **{key: values[key][name] for key in values})
    for key, vals in values.items():
        best = max(vals, key=vals.get)
        table.notes.append(
            f"{key}: best={best} ({vals[best]:.3f}); "
            f"4B {(vals['4B'] / vals[best] - 1):+.1%} vs best"
        )
    return table

"""Energy and energy-delay-product accounting (Section 7 of the paper).

Figure 15 plots, per design and under a thread-count distribution:

* average **power** vs average throughput, and
* normalized **energy** vs throughput, where energy-per-unit-of-work is
  average power divided by average throughput;
* the **EDP** (energy-delay product) per unit of work is ``P / STP**2``.

These helpers also compute the Pareto frontier over (throughput, cost)
points, which the paper reads off Figure 15.
"""

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.util import check_positive


@dataclass(frozen=True)
class EnergyPoint:
    """Average behaviour of one design under a thread-count distribution."""

    design_name: str
    throughput: float  # expected STP
    power_w: float  # expected power (idle cores gated)

    def __post_init__(self) -> None:
        check_positive("throughput", self.throughput)
        check_positive("power_w", self.power_w)

    @property
    def energy_per_work(self) -> float:
        """Joules per unit of normalized work (P / STP)."""
        return self.power_w / self.throughput

    @property
    def edp(self) -> float:
        """Energy-delay product per unit of work (P / STP^2); lower is better."""
        return self.power_w / self.throughput**2


def pareto_front(
    points: Sequence[EnergyPoint], cost: str = "power"
) -> List[EnergyPoint]:
    """Designs not dominated in (higher throughput, lower cost).

    ``cost`` selects the y-axis: ``"power"`` (Figure 15 top) or ``"energy"``
    (Figure 15 bottom).  A point is dominated if another point has >= its
    throughput and <= its cost, with at least one strict inequality.
    """
    if cost not in ("power", "energy"):
        raise ValueError(f"cost must be 'power' or 'energy', got {cost!r}")

    def cost_of(p: EnergyPoint) -> float:
        return p.power_w if cost == "power" else p.energy_per_work

    front = []
    for p in points:
        dominated = any(
            (q.throughput >= p.throughput and cost_of(q) < cost_of(p))
            or (q.throughput > p.throughput and cost_of(q) <= cost_of(p))
            for q in points
        )
        if not dominated:
            front.append(p)
    return sorted(front, key=lambda p: p.throughput)


def best_edp(points: Sequence[EnergyPoint]) -> EnergyPoint:
    """The design with the minimum energy-delay product."""
    if not points:
        raise ValueError("best_edp of an empty sequence")
    return min(points, key=lambda p: p.edp)

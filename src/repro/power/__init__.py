"""McPAT-style power model and energy/EDP accounting (Section 7)."""

"""McPAT-like chip power model.

The paper estimates power with McPAT [20] at 45 nm with aggressive clock
gating.  What the evaluation actually consumes from McPAT is:

* per-core-type **static** power and **activity-dependent dynamic** power
  (SMT raises utilization and therefore dynamic power, but much less than
  activating another core — Figure 14);
* a constant **uncore** term (shared LLC + DRAM interface, ~7 W, always on);
* **power gating** of idle cores (Section 7).

We model exactly that: ``P_core = static + dyn_slope * utilization`` while a
core is active, zero when gated, plus the uncore constant.  The coefficients
are calibrated to the paper's published wattages:

* one big core is ~1.8x a medium and ~4.4x a small core on average, and the
  chip designs are power-equivalent (1B ~ 2m ~ 5s);
* the 4B / 8m / 20s chips draw ~46 / 50 / 45 W running 24 threads;
* 4B grows from ~42 W at 4 threads to ~46 W at 24 threads (SMT's dynamic
  power uplift);
* a single active big / medium / small core draws ~17.3 / 13.5 / 9.8 W
  including the ~7 W uncore.
"""

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.designs import ChipDesign
from repro.interval.contention import ChipResult
from repro.util import check_fraction, check_positive

#: Shared LLC + DRAM interface power, active regardless of thread count.
UNCORE_POWER_W = 7.0


@dataclass(frozen=True)
class CorePowerParams:
    """Static and utilization-proportional dynamic power of one core type."""

    static_w: float
    dynamic_slope_w: float  # added watts at 100 % issue-bandwidth utilization

    def __post_init__(self) -> None:
        check_positive("static_w", self.static_w)
        check_positive("dynamic_slope_w", self.dynamic_slope_w)

    def active_power(self, utilization: float) -> float:
        """Power of an active (non-gated) core at a given utilization."""
        check_fraction("utilization", utilization)
        return self.static_w + self.dynamic_slope_w * utilization

    @property
    def peak_power(self) -> float:
        return self.active_power(1.0)


#: Calibrated per-core-type power parameters (see module docstring).  The
#: ``_lc``/``_hf`` variants burn more power per core (larger caches / higher
#: frequency), reflected in the paper's shifted power equivalence (1 big ~
#: 1.5 medium_lc ~ 4 small_lc); their coefficients scale accordingly.
CORE_POWER: Dict[str, CorePowerParams] = {
    "big": CorePowerParams(static_w=6.40, dynamic_slope_w=6.30),
    "medium": CorePowerParams(static_w=4.60, dynamic_slope_w=1.70),
    "small": CorePowerParams(static_w=1.50, dynamic_slope_w=0.80),
    # 2/1.5 = 1.33x a plain medium core; 5/4 = 1.25x a plain small core.
    "medium_lc": CorePowerParams(static_w=4.60 * 4 / 3, dynamic_slope_w=1.70 * 4 / 3),
    "small_lc": CorePowerParams(static_w=1.50 * 1.25, dynamic_slope_w=0.80 * 1.25),
    "medium_hf": CorePowerParams(static_w=4.60 * 4 / 3, dynamic_slope_w=1.70 * 4 / 3),
    "small_hf": CorePowerParams(static_w=1.50 * 1.25, dynamic_slope_w=0.80 * 1.25),
}


class ChipPowerModel:
    """Computes total chip power for a solved :class:`ChipResult`."""

    def __init__(self, design: ChipDesign, uncore_power_w: float = UNCORE_POWER_W):
        check_positive("uncore_power_w", uncore_power_w)
        self.design = design
        self.uncore_power_w = uncore_power_w
        try:
            self._params = [CORE_POWER[core.name] for core in design.cores]
        except KeyError as exc:
            raise KeyError(
                f"no power calibration for core type {exc}; known: "
                f"{sorted(CORE_POWER)}"
            ) from None

    def power(self, result: ChipResult, power_gate_idle: bool = True) -> float:
        """Total chip power in watts.

        Parameters
        ----------
        result:
            A chip evaluation from :class:`repro.interval.contention.ChipModel`.
        power_gate_idle:
            If True (Section 7), cores with no resident threads draw zero
            power; otherwise idle cores burn their static power (the
            equal-power-envelope comparison of Sections 4-6).
        """
        if len(result.core_utilizations) != self.design.num_cores:
            raise ValueError(
                f"result has {len(result.core_utilizations)} cores, design "
                f"{self.design.name} has {self.design.num_cores}"
            )
        total = self.uncore_power_w
        for params, core_result, util in zip(
            self._params, result.core_results, result.core_utilizations
        ):
            active = len(core_result.threads) > 0
            if active:
                total += params.active_power(util)
            elif not power_gate_idle:
                total += params.static_w
        return total

    def peak_power(self) -> float:
        """Chip power with every core active at full utilization."""
        return self.uncore_power_w + sum(p.peak_power for p in self._params)

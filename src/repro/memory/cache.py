"""Set-associative write-back caches with true LRU state.

Used by the cycle-level simulator (:mod:`repro.sim`).  A :class:`Cache` is a
timing-free *contents* model: ``access`` returns whether the line was
present and updates LRU/dirty state; the caller (the hierarchy) composes
latencies.  This separation keeps the cache reusable for both the
single-core and shared-LLC roles.

``access`` is the hottest function in the cycle-level tier, so it trades a
little clarity for speed: set/tag extraction uses precomputed shift/mask
values when the geometry is a power of two (several cache sizes in the
study are "just in between", e.g. 6 KB, and fall back to divmod), the
presence check is a single dict lookup, and metric counters are **not**
touched per access — they accumulate in :class:`CacheStats` and are
flushed to :data:`repro.obs.METRICS` in one batch by
:meth:`Cache.publish_metrics` (totals are identical; only the flush point
moves off the hot path).
"""

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.microarch.config import CacheConfig
from repro.obs import METRICS


@dataclass
class CacheStats:
    """Access counters for one cache instance."""

    accesses: int = 0
    hits: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """A set-associative, write-back, write-allocate cache with LRU replacement.

    Parameters
    ----------
    config:
        Geometry (size, associativity, line size).
    name:
        Label used in error messages and result tables.
    """

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.config = config
        self.name = name
        # Metric level label: "core0.l1d" -> "l1d" so per-level counters
        # aggregate across cores.
        self._level = name.rsplit(".", 1)[-1]
        self.stats = CacheStats()
        # Hot-path geometry, resolved once: line number = address >> shift
        # (or // line_bytes), set = line & mask (or % num_sets),
        # tag = line >> set_bits (or // num_sets).
        self._line_bytes = config.line_bytes
        self._num_sets = config.num_sets
        self._assoc = config.associativity
        line_bytes = config.line_bytes
        self._line_shift: Optional[int] = (
            line_bytes.bit_length() - 1
            if line_bytes & (line_bytes - 1) == 0
            else None
        )
        num_sets = self._num_sets
        if num_sets & (num_sets - 1) == 0:
            self._set_mask: Optional[int] = num_sets - 1
            self._set_bits = num_sets.bit_length() - 1
        else:
            self._set_mask = None
            self._set_bits = 0
        # One OrderedDict per set: tag -> dirty flag; order is LRU -> MRU.
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(num_sets)
        ]
        #: Address of the line written back by the most recent access, or
        #: None if that access evicted nothing dirty.  Lets the hierarchy
        #: forward LLC writebacks to DRAM without widening the access API.
        self.last_writeback_address: Optional[int] = None
        # Counter values already flushed to METRICS (see publish_metrics).
        self._published_hits = 0
        self._published_misses = 0
        self._published_writebacks = 0

    def _locate(self, address: int) -> Tuple[int, int]:
        shift = self._line_shift
        line = address >> shift if shift is not None else address // self._line_bytes
        mask = self._set_mask
        if mask is not None:
            return line & mask, line >> self._set_bits
        return line % self._num_sets, line // self._num_sets

    def access(self, address: int, is_write: bool = False) -> bool:
        """Access one address; returns True on hit.

        On a miss the line is allocated (write-allocate); a dirty eviction
        increments ``stats.writebacks``.
        """
        if address < 0:
            raise ValueError(f"address must be >= 0, got {address}")
        shift = self._line_shift
        line = address >> shift if shift is not None else address // self._line_bytes
        mask = self._set_mask
        if mask is not None:
            set_idx = line & mask
            tag = line >> self._set_bits
        else:
            set_idx = line % self._num_sets
            tag = line // self._num_sets
        ways = self._sets[set_idx]
        stats = self.stats
        stats.accesses += 1
        self.last_writeback_address = None
        dirty = ways.get(tag)
        if dirty is not None:
            stats.hits += 1
            if is_write and not dirty:
                ways[tag] = True
            ways.move_to_end(tag)
            return True
        # Miss: allocate, evicting LRU if the set is full.
        if len(ways) >= self._assoc:
            victim_tag, victim_dirty = ways.popitem(last=False)
            stats.evictions += 1
            if victim_dirty:
                stats.writebacks += 1
                self.last_writeback_address = (
                    victim_tag * self._num_sets + set_idx
                ) * self._line_bytes
        ways[tag] = is_write
        return False

    def warm(self, address: int) -> None:
        """Insert a line without touching statistics (checkpoint warming)."""
        shift = self._line_shift
        line = address >> shift if shift is not None else address // self._line_bytes
        mask = self._set_mask
        if mask is not None:
            set_idx = line & mask
            tag = line >> self._set_bits
        else:
            set_idx = line % self._num_sets
            tag = line // self._num_sets
        ways = self._sets[set_idx]
        if ways.get(tag) is not None:
            ways.move_to_end(tag)
            return
        if len(ways) >= self._assoc:
            ways.popitem(last=False)
        ways[tag] = False

    def probe(self, address: int) -> bool:
        """Check residency without updating LRU or stats."""
        set_idx, tag = self._locate(address)
        return tag in self._sets[set_idx]

    def invalidate(self, address: int) -> bool:
        """Drop a line if present (no writeback accounting); returns presence."""
        set_idx, tag = self._locate(address)
        return self._sets[set_idx].pop(tag, None) is not None

    def publish_metrics(self) -> None:
        """Flush counter deltas accumulated since the last flush to METRICS.

        The cycle tier calls this once per run (not per access); counter
        totals match what per-access increments would have produced.
        """
        if not METRICS.enabled:
            return
        stats = self.stats
        level = self._level
        delta = stats.hits - self._published_hits
        if delta:
            METRICS.inc(f"sim.cache.{level}.hits", delta)
            self._published_hits = stats.hits
        delta = stats.misses - self._published_misses
        if delta:
            METRICS.inc(f"sim.cache.{level}.misses", delta)
            self._published_misses = stats.misses
        delta = stats.writebacks - self._published_writebacks
        if delta:
            METRICS.inc(f"sim.cache.{level}.writebacks", delta)
            self._published_writebacks = stats.writebacks

    def reset_stats(self) -> None:
        self.stats = CacheStats()
        self._published_hits = 0
        self._published_misses = 0
        self._published_writebacks = 0

    @property
    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)

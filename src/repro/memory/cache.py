"""Set-associative write-back caches with true LRU state.

Used by the cycle-level simulator (:mod:`repro.sim`).  A :class:`Cache` is a
timing-free *contents* model: ``access`` returns whether the line was
present and updates LRU/dirty state; the caller (the hierarchy) composes
latencies.  This separation keeps the cache reusable for both the
single-core and shared-LLC roles.
"""

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.microarch.config import CacheConfig
from repro.obs import METRICS


@dataclass
class CacheStats:
    """Access counters for one cache instance."""

    accesses: int = 0
    hits: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """A set-associative, write-back, write-allocate cache with LRU replacement.

    Parameters
    ----------
    config:
        Geometry (size, associativity, line size).
    name:
        Label used in error messages and result tables.
    """

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.config = config
        self.name = name
        # Metric level label: "core0.l1d" -> "l1d" so per-level counters
        # aggregate across cores.
        self._level = name.rsplit(".", 1)[-1]
        self.stats = CacheStats()
        # One OrderedDict per set: tag -> dirty flag; order is LRU -> MRU.
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        #: Address of the line written back by the most recent access, or
        #: None if that access evicted nothing dirty.  Lets the hierarchy
        #: forward LLC writebacks to DRAM without widening the access API.
        self.last_writeback_address: Optional[int] = None

    def _locate(self, address: int) -> Tuple[int, int]:
        line = address // self.config.line_bytes
        return line % self.config.num_sets, line // self.config.num_sets

    def access(self, address: int, is_write: bool = False) -> bool:
        """Access one address; returns True on hit.

        On a miss the line is allocated (write-allocate); a dirty eviction
        increments ``stats.writebacks``.
        """
        if address < 0:
            raise ValueError(f"address must be >= 0, got {address}")
        set_idx, tag = self._locate(address)
        ways = self._sets[set_idx]
        self.stats.accesses += 1
        self.last_writeback_address = None
        if tag in ways:
            self.stats.hits += 1
            if METRICS.enabled:
                METRICS.inc(f"sim.cache.{self._level}.hits")
            ways[tag] = ways[tag] or is_write
            ways.move_to_end(tag)
            return True
        # Miss: allocate, evicting LRU if the set is full.
        if METRICS.enabled:
            METRICS.inc(f"sim.cache.{self._level}.misses")
        if len(ways) >= self.config.associativity:
            victim_tag, victim_dirty = ways.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
                if METRICS.enabled:
                    METRICS.inc(f"sim.cache.{self._level}.writebacks")
                self.last_writeback_address = (
                    victim_tag * self.config.num_sets + set_idx
                ) * self.config.line_bytes
        ways[tag] = is_write
        return False

    def warm(self, address: int) -> None:
        """Insert a line without touching statistics (checkpoint warming)."""
        set_idx, tag = self._locate(address)
        ways = self._sets[set_idx]
        if tag in ways:
            ways.move_to_end(tag)
            return
        if len(ways) >= self.config.associativity:
            ways.popitem(last=False)
        ways[tag] = False

    def probe(self, address: int) -> bool:
        """Check residency without updating LRU or stats."""
        set_idx, tag = self._locate(address)
        return tag in self._sets[set_idx]

    def invalidate(self, address: int) -> bool:
        """Drop a line if present (no writeback accounting); returns presence."""
        set_idx, tag = self._locate(address)
        return self._sets[set_idx].pop(tag, None) is not None

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    @property
    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)

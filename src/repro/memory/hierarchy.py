"""Per-core cache hierarchy plus the chip-shared LLC and DRAM.

:class:`MemoryHierarchy` composes the stateful pieces of
:mod:`repro.memory.cache` and :mod:`repro.memory.dram` into the paper's
memory system: private L1I/L1D/L2 per core, one shared LLC, a full crossbar
(fixed hop latency, contention-free by design — Section 3.1), and banked
DRAM behind the off-chip bus.

The hierarchy returns *latencies in nanoseconds* for each access so cores
running at different frequencies (the ``_hf`` variants) convert correctly.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.memory.cache import Cache
from repro.memory.dram import DramModel
from repro.microarch.config import CoreConfig
from repro.microarch.uncore import UncoreConfig
from repro.obs import METRICS


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one memory access."""

    latency_ns: float
    level: str  # "l1", "l2", "llc", "dram"


class CoreCaches:
    """The private cache levels of one core."""

    def __init__(self, core: CoreConfig, core_index: int):
        self.core = core
        self.l1i = Cache(core.l1i, name=f"core{core_index}.l1i")
        self.l1d = Cache(core.l1d, name=f"core{core_index}.l1d")
        self.l2 = Cache(core.l2, name=f"core{core_index}.l2")


class MemoryHierarchy:
    """Shared memory system for a multi-core chip."""

    def __init__(
        self,
        cores: Tuple[CoreConfig, ...],
        uncore: UncoreConfig,
        prefetcher: Optional[str] = None,
    ):
        """``prefetcher`` installs a per-core data prefetcher: ``None``
        (the paper's configuration), ``"nextline"`` or ``"stride"``.
        Prefetch fills land in L2 and the LLC off the demand path, but
        occupy DRAM banks and the off-chip bus like real traffic."""
        if prefetcher not in (None, "nextline", "stride"):
            raise ValueError(
                f"prefetcher must be None, 'nextline' or 'stride', "
                f"got {prefetcher!r}"
            )
        self.uncore = uncore
        self.core_caches: List[CoreCaches] = [
            CoreCaches(core, i) for i, core in enumerate(cores)
        ]
        from repro.memory.prefetch import NextLinePrefetcher, StridePrefetcher

        self.prefetchers = [
            NextLinePrefetcher()
            if prefetcher == "nextline"
            else StridePrefetcher()
            if prefetcher == "stride"
            else None
            for _ in cores
        ]
        self.llc = Cache(uncore.llc, name="llc")
        self.dram = DramModel(uncore.dram, line_bytes=uncore.llc.line_bytes)
        self._cores = cores
        # A shared-bus interconnect (ablation; the paper's baseline is a
        # contention-free crossbar) serializes core<->LLC transactions: each
        # occupies the bus for one hop time.
        self._llc_bus_free_ns = 0.0

    # ------------------------------------------------------------------ #
    # latency building blocks (nanoseconds)                               #
    # ------------------------------------------------------------------ #

    def _cycles_to_ns(self, cycles: float, frequency_ghz: float) -> float:
        return cycles / frequency_ghz

    def _hop_ns(self) -> float:
        ic = self.uncore.interconnect
        return ic.hop_latency_cycles / ic.frequency_ghz

    def _llc_hit_ns(self) -> float:
        ic = self.uncore.interconnect
        return (
            2 * self._hop_ns() + self.uncore.llc.latency_cycles / ic.frequency_ghz
        )

    def _interconnect_delay_ns(self, now_ns: float) -> float:
        """Extra queueing before reaching the LLC (zero on the crossbar)."""
        if self.uncore.interconnect.kind != "bus":
            return 0.0
        start = max(now_ns, self._llc_bus_free_ns)
        self._llc_bus_free_ns = start + self._hop_ns()
        return start - now_ns

    def warm(self, core_index: int, addresses: List[int]) -> None:
        """Pre-load caches with a working set (LRU-to-MRU order), statless.

        Every level is warmed; set-associativity naturally keeps only the
        most recently warmed lines at each level.
        """
        caches = self.core_caches[core_index]
        for address in addresses:
            caches.l1d.warm(address)
            caches.l1i.warm(address)
            caches.l2.warm(address)
            self.llc.warm(address)

    # ------------------------------------------------------------------ #
    # accesses                                                            #
    # ------------------------------------------------------------------ #

    def data_access(
        self,
        core_index: int,
        address: int,
        now_ns: float,
        is_write: bool = False,
        pc: int = 0,
    ) -> AccessResult:
        """A load/store from core ``core_index``; returns total latency."""
        result = self._demand_data_access(core_index, address, now_ns, is_write)
        if METRICS.enabled:
            METRICS.inc(f"sim.mem.data.{result.level}")
        prefetcher = self.prefetchers[core_index]
        if prefetcher is not None:
            for target in prefetcher.observe(pc, address, result.level != "l1"):
                self._prefetch_fill(core_index, target, now_ns)
        return result

    def _prefetch_fill(self, core_index: int, address: int, now_ns: float) -> None:
        """Bring a predicted line into L2/LLC without charging a consumer."""
        caches = self.core_caches[core_index]
        if caches.l2.probe(address):
            return
        if METRICS.enabled:
            METRICS.inc("sim.mem.prefetch_fills")
        if not self.llc.probe(address):
            self.dram.access(address, now_ns)  # occupies bank + bus
            self.llc.warm(address)
        caches.l2.warm(address)

    def _demand_data_access(
        self, core_index: int, address: int, now_ns: float, is_write: bool
    ) -> AccessResult:
        caches = self.core_caches[core_index]
        core = self._cores[core_index]
        l1_ns = self._cycles_to_ns(core.l1d.latency_cycles, core.frequency_ghz)
        if caches.l1d.access(address, is_write):
            return AccessResult(l1_ns, "l1")
        l2_ns = l1_ns + self._cycles_to_ns(core.l2.latency_cycles, core.frequency_ghz)
        if caches.l2.access(address, is_write):
            return AccessResult(l2_ns, "l2")
        l2_ns += self._interconnect_delay_ns(now_ns + l2_ns)
        llc_ns = l2_ns + self._llc_hit_ns()
        if self.llc.access(address, is_write):
            return AccessResult(llc_ns, "llc")
        self._drain_llc_writeback(now_ns + llc_ns)
        done = self.dram.access(address, now_ns + llc_ns)
        return AccessResult(done - now_ns, "dram")

    def _drain_llc_writeback(self, now_ns: float) -> None:
        """Send a dirty LLC victim to DRAM (occupies a bank and the bus).

        Writebacks are off the load's critical path, but they do consume
        memory bandwidth — the cycle-level analogue of the interval tier's
        writeback traffic factor.
        """
        victim = self.llc.last_writeback_address
        if victim is not None:
            self.dram.access(victim, now_ns)

    def instruction_access(
        self, core_index: int, address: int, now_ns: float
    ) -> AccessResult:
        """An instruction fetch from core ``core_index``."""
        result = self._demand_instruction_access(core_index, address, now_ns)
        if METRICS.enabled:
            METRICS.inc(f"sim.mem.inst.{result.level}")
        return result

    def _demand_instruction_access(
        self, core_index: int, address: int, now_ns: float
    ) -> AccessResult:
        caches = self.core_caches[core_index]
        core = self._cores[core_index]
        l1_ns = self._cycles_to_ns(core.l1i.latency_cycles, core.frequency_ghz)
        if caches.l1i.access(address):
            return AccessResult(l1_ns, "l1")
        l2_ns = l1_ns + self._cycles_to_ns(core.l2.latency_cycles, core.frequency_ghz)
        if caches.l2.access(address):
            return AccessResult(l2_ns, "l2")
        l2_ns += self._interconnect_delay_ns(now_ns + l2_ns)
        llc_ns = l2_ns + self._llc_hit_ns()
        if self.llc.access(address):
            return AccessResult(llc_ns, "llc")
        self._drain_llc_writeback(now_ns + llc_ns)
        done = self.dram.access(address, now_ns + llc_ns)
        return AccessResult(done - now_ns, "dram")

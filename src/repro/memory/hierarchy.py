"""Per-core cache hierarchy plus the chip-shared LLC and DRAM.

:class:`MemoryHierarchy` composes the stateful pieces of
:mod:`repro.memory.cache` and :mod:`repro.memory.dram` into the paper's
memory system: private L1I/L1D/L2 per core, one shared LLC, a full crossbar
(fixed hop latency, contention-free by design — Section 3.1), and banked
DRAM behind the off-chip bus.

The hierarchy returns *latencies in nanoseconds* for each access so cores
running at different frequencies (the ``_hf`` variants) convert correctly.

This module sits on the cycle-level simulator's hot path, so the demand
access chain is flattened (no per-level helper calls on hits), hit
latencies for the fixed-latency levels (L1, L2, and — on the contention-free
crossbar — the LLC) are served from per-core *interned*
:class:`AccessResult` instances instead of allocating one per access, and
per-level demand counters accumulate in plain attributes that
:meth:`MemoryHierarchy.publish_metrics` flushes to
:data:`repro.obs.METRICS` in one batch after a run.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.memory.cache import Cache
from repro.memory.dram import DramModel
from repro.microarch.config import CoreConfig
from repro.microarch.uncore import UncoreConfig
from repro.obs import METRICS


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one memory access."""

    latency_ns: float
    level: str  # "l1", "l2", "llc", "dram"


class CoreCaches:
    """The private cache levels of one core."""

    def __init__(self, core: CoreConfig, core_index: int):
        self.core = core
        self.l1i = Cache(core.l1i, name=f"core{core_index}.l1i")
        self.l1d = Cache(core.l1d, name=f"core{core_index}.l1d")
        self.l2 = Cache(core.l2, name=f"core{core_index}.l2")


class MemoryHierarchy:
    """Shared memory system for a multi-core chip."""

    def __init__(
        self,
        cores: Tuple[CoreConfig, ...],
        uncore: UncoreConfig,
        prefetcher: Optional[str] = None,
    ):
        """``prefetcher`` installs a per-core data prefetcher: ``None``
        (the paper's configuration), ``"nextline"`` or ``"stride"``.
        Prefetch fills land in L2 and the LLC off the demand path, but
        occupy DRAM banks and the off-chip bus like real traffic."""
        if prefetcher not in (None, "nextline", "stride"):
            raise ValueError(
                f"prefetcher must be None, 'nextline' or 'stride', "
                f"got {prefetcher!r}"
            )
        self.uncore = uncore
        self.core_caches: List[CoreCaches] = [
            CoreCaches(core, i) for i, core in enumerate(cores)
        ]
        from repro.memory.prefetch import NextLinePrefetcher, StridePrefetcher

        self.prefetchers = [
            NextLinePrefetcher()
            if prefetcher == "nextline"
            else StridePrefetcher()
            if prefetcher == "stride"
            else None
            for _ in cores
        ]
        self._has_prefetchers = prefetcher is not None
        self.llc = Cache(uncore.llc, name="llc")
        self.dram = DramModel(uncore.dram, line_bytes=uncore.llc.line_bytes)
        self._cores = cores
        # A shared-bus interconnect (ablation; the paper's baseline is a
        # contention-free crossbar) serializes core<->LLC transactions: each
        # occupies the bus for one hop time.
        self._llc_bus_free_ns = 0.0
        self._is_bus = uncore.interconnect.kind == "bus"
        # Interned fixed-latency results and precomputed level latencies,
        # one entry per core (L1/L2 always; LLC only on the crossbar, where
        # no queueing term varies per access).
        self._d_l1: List[AccessResult] = []
        self._d_l2: List[AccessResult] = []
        self._d_llc: List[Optional[AccessResult]] = []
        self._i_l1: List[AccessResult] = []
        self._i_l2: List[AccessResult] = []
        self._i_llc: List[Optional[AccessResult]] = []
        llc_hit_ns = self._llc_hit_ns()
        for core in cores:
            ghz = core.frequency_ghz
            d_l1 = core.l1d.latency_cycles / ghz
            i_l1 = core.l1i.latency_cycles / ghz
            l2 = core.l2.latency_cycles / ghz
            self._d_l1.append(AccessResult(d_l1, "l1"))
            self._d_l2.append(AccessResult(d_l1 + l2, "l2"))
            self._i_l1.append(AccessResult(i_l1, "l1"))
            self._i_l2.append(AccessResult(i_l1 + l2, "l2"))
            if self._is_bus:
                self._d_llc.append(None)
                self._i_llc.append(None)
            else:
                self._d_llc.append(AccessResult(d_l1 + l2 + llc_hit_ns, "llc"))
                self._i_llc.append(AccessResult(i_l1 + l2 + llc_hit_ns, "llc"))
        # Demand counters per (stream, level), flushed by publish_metrics.
        self.demand_counts = {
            "data.l1": 0,
            "data.l2": 0,
            "data.llc": 0,
            "data.dram": 0,
            "inst.l1": 0,
            "inst.l2": 0,
            "inst.llc": 0,
            "inst.dram": 0,
            "prefetch_fills": 0,
        }
        self._published_counts = dict(self.demand_counts)

    # ------------------------------------------------------------------ #
    # latency building blocks (nanoseconds)                               #
    # ------------------------------------------------------------------ #

    def _cycles_to_ns(self, cycles: float, frequency_ghz: float) -> float:
        return cycles / frequency_ghz

    def _hop_ns(self) -> float:
        ic = self.uncore.interconnect
        return ic.hop_latency_cycles / ic.frequency_ghz

    def _llc_hit_ns(self) -> float:
        ic = self.uncore.interconnect
        return (
            2 * self._hop_ns() + self.uncore.llc.latency_cycles / ic.frequency_ghz
        )

    def _interconnect_delay_ns(self, now_ns: float) -> float:
        """Extra queueing before reaching the LLC (zero on the crossbar)."""
        if not self._is_bus:
            return 0.0
        start = max(now_ns, self._llc_bus_free_ns)
        self._llc_bus_free_ns = start + self._hop_ns()
        return start - now_ns

    def warm(self, core_index: int, addresses: List[int]) -> None:
        """Pre-load caches with a working set (LRU-to-MRU order), statless.

        Every level is warmed; set-associativity naturally keeps only the
        most recently warmed lines at each level.
        """
        caches = self.core_caches[core_index]
        l1d_warm = caches.l1d.warm
        l1i_warm = caches.l1i.warm
        l2_warm = caches.l2.warm
        llc_warm = self.llc.warm
        for address in addresses:
            l1d_warm(address)
            l1i_warm(address)
            l2_warm(address)
            llc_warm(address)

    # ------------------------------------------------------------------ #
    # accesses                                                            #
    # ------------------------------------------------------------------ #

    def data_access(
        self,
        core_index: int,
        address: int,
        now_ns: float,
        is_write: bool = False,
        pc: int = 0,
    ) -> AccessResult:
        """A load/store from core ``core_index``; returns total latency."""
        caches = self.core_caches[core_index]
        if caches.l1d.access(address, is_write):
            self.demand_counts["data.l1"] += 1
            result = self._d_l1[core_index]
        else:
            result = self.data_l1_miss(core_index, address, now_ns, is_write)
        if self._has_prefetchers:
            prefetcher = self.prefetchers[core_index]
            if prefetcher is not None:
                for target in prefetcher.observe(
                    pc, address, result.level != "l1"
                ):
                    self._prefetch_fill(core_index, target, now_ns)
        return result

    def data_l1_miss(
        self, core_index: int, address: int, now_ns: float, is_write: bool
    ) -> AccessResult:
        """The L2-and-beyond data path, after the caller has already probed
        (and allocated the line into) the core's L1D.

        Split out of :meth:`data_access` so the batched stepping kernel
        (:mod:`repro.sim.kernel`) can inline the L1D lookup against
        precomputed set/tag arrays and fall through here only on a miss.
        """
        caches = self.core_caches[core_index]
        if caches.l2.access(address, is_write):
            self.demand_counts["data.l2"] += 1
            return self._d_l2[core_index]
        return self._shared_data_access(core_index, address, now_ns, is_write)

    def _shared_data_access(
        self, core_index: int, address: int, now_ns: float, is_write: bool
    ) -> AccessResult:
        """The L2-miss path: LLC, then DRAM (shared, stateful timing)."""
        counts = self.demand_counts
        interned = self._d_llc[core_index]
        if interned is not None:  # crossbar: fixed LLC hit latency
            if self.llc.access(address, is_write):
                counts["data.llc"] += 1
                return interned
            llc_ns = interned.latency_ns
        else:
            core = self._cores[core_index]
            ghz = core.frequency_ghz
            l2_ns = (
                core.l1d.latency_cycles / ghz + core.l2.latency_cycles / ghz
            )
            l2_ns += self._interconnect_delay_ns(now_ns + l2_ns)
            llc_ns = l2_ns + self._llc_hit_ns()
            if self.llc.access(address, is_write):
                counts["data.llc"] += 1
                return AccessResult(llc_ns, "llc")
        counts["data.dram"] += 1
        self._drain_llc_writeback(now_ns + llc_ns)
        done = self.dram.access(address, now_ns + llc_ns)
        return AccessResult(done - now_ns, "dram")

    def _prefetch_fill(self, core_index: int, address: int, now_ns: float) -> None:
        """Bring a predicted line into L2/LLC without charging a consumer."""
        caches = self.core_caches[core_index]
        if caches.l2.probe(address):
            return
        self.demand_counts["prefetch_fills"] += 1
        if not self.llc.probe(address):
            self.dram.access(address, now_ns)  # occupies bank + bus
            self.llc.warm(address)
        caches.l2.warm(address)

    def _drain_llc_writeback(self, now_ns: float) -> None:
        """Send a dirty LLC victim to DRAM (occupies a bank and the bus).

        Writebacks are off the load's critical path, but they do consume
        memory bandwidth — the cycle-level analogue of the interval tier's
        writeback traffic factor.
        """
        victim = self.llc.last_writeback_address
        if victim is not None:
            self.dram.access(victim, now_ns)

    def instruction_access(
        self, core_index: int, address: int, now_ns: float
    ) -> AccessResult:
        """An instruction fetch from core ``core_index``."""
        caches = self.core_caches[core_index]
        counts = self.demand_counts
        if caches.l1i.access(address):
            counts["inst.l1"] += 1
            return self._i_l1[core_index]
        if caches.l2.access(address):
            counts["inst.l2"] += 1
            return self._i_l2[core_index]
        interned = self._i_llc[core_index]
        if interned is not None:
            if self.llc.access(address):
                counts["inst.llc"] += 1
                return interned
            llc_ns = interned.latency_ns
        else:
            core = self._cores[core_index]
            ghz = core.frequency_ghz
            l2_ns = (
                core.l1i.latency_cycles / ghz + core.l2.latency_cycles / ghz
            )
            l2_ns += self._interconnect_delay_ns(now_ns + l2_ns)
            llc_ns = l2_ns + self._llc_hit_ns()
            if self.llc.access(address):
                counts["inst.llc"] += 1
                return AccessResult(llc_ns, "llc")
        counts["inst.dram"] += 1
        self._drain_llc_writeback(now_ns + llc_ns)
        done = self.dram.access(address, now_ns + llc_ns)
        return AccessResult(done - now_ns, "dram")

    # ------------------------------------------------------------------ #
    # observability                                                       #
    # ------------------------------------------------------------------ #

    def publish_metrics(self) -> None:
        """Flush batched demand/cache counters to METRICS.

        Called by the simulator once per run; totals equal what per-access
        increments would have produced (``sim.mem.*`` and
        ``sim.cache.<level>.*``), without any hot-path METRICS traffic.
        """
        if not METRICS.enabled:
            return
        for key, value in self.demand_counts.items():
            delta = value - self._published_counts[key]
            if delta:
                name = (
                    "sim.mem.prefetch_fills"
                    if key == "prefetch_fills"
                    else f"sim.mem.{key}"
                )
                METRICS.inc(name, delta)
                self._published_counts[key] = value
        for caches in self.core_caches:
            caches.l1i.publish_metrics()
            caches.l1d.publish_metrics()
            caches.l2.publish_metrics()
        self.llc.publish_metrics()

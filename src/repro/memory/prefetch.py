"""Hardware prefetcher models for the cycle-level tier.

Two classic designs, both deterministic and table-based:

* :class:`NextLinePrefetcher` — on a demand miss, prefetch the next
  ``degree`` sequential lines; catches streaming.
* :class:`StridePrefetcher` — a per-PC reference-prediction table (Chen &
  Baer): detects a constant stride per static load and, once confident,
  prefetches ``degree`` strides ahead; catches array walks with any step.

Prefetchers only *predict*; the memory hierarchy decides what a prediction
costs (a prefetch fill occupies DRAM banks and the bus like any other
access, but its latency is off the demand path).  Disabled by default so
the baseline study matches the paper's configuration, which specifies no
prefetcher.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.util import check_positive

_LINE = 64


@dataclass
class PrefetchStats:
    """Issue counters for one prefetcher."""

    observations: int = 0
    issued: int = 0


class NextLinePrefetcher:
    """Prefetch the next ``degree`` sequential lines after every miss."""

    def __init__(self, degree: int = 2):
        check_positive("degree", degree)
        self.degree = degree
        self.stats = PrefetchStats()

    def observe(self, pc: int, address: int, was_miss: bool) -> List[int]:
        """Addresses to prefetch following one demand access."""
        self.stats.observations += 1
        if not was_miss:
            return []
        line = address // _LINE
        targets = [(line + i) * _LINE for i in range(1, self.degree + 1)]
        self.stats.issued += len(targets)
        return targets


class StridePrefetcher:
    """Per-PC stride detection (reference prediction table).

    Each static load's last address and stride are tracked; after
    ``confidence_threshold`` consecutive confirmations, the next ``degree``
    strided addresses are prefetched.
    """

    def __init__(
        self,
        table_entries: int = 256,
        degree: int = 2,
        confidence_threshold: int = 2,
    ):
        check_positive("table_entries", table_entries)
        check_positive("degree", degree)
        check_positive("confidence_threshold", confidence_threshold)
        self.table_entries = table_entries
        self.degree = degree
        self.confidence_threshold = confidence_threshold
        self.stats = PrefetchStats()
        #: pc-tag -> (last_address, stride, confidence)
        self._table: Dict[int, Tuple[int, int, int]] = {}

    def observe(self, pc: int, address: int, was_miss: bool) -> List[int]:
        """Train on one demand access; return addresses to prefetch."""
        self.stats.observations += 1
        # Folded-XOR index for better spread of word-aligned PCs.
        tag = ((pc >> 2) ^ (pc >> 10)) % self.table_entries
        entry = self._table.get(tag)
        targets: List[int] = []
        if entry is None:
            self._table[tag] = (address, 0, 0)
            if len(self._table) > self.table_entries:
                # Evict an arbitrary (oldest-inserted) entry.
                self._table.pop(next(iter(self._table)))
            return targets
        last, stride, confidence = entry
        new_stride = address - last
        if new_stride == stride and stride != 0:
            confidence += 1
        else:
            confidence = 0
        if confidence >= self.confidence_threshold:
            targets = [
                address + stride * i for i in range(1, self.degree + 1)
            ]
            targets = [t for t in targets if t >= 0]
            self.stats.issued += len(targets)
        self._table[tag] = (address, new_stride, confidence)
        return targets

"""Banked DRAM and off-chip bus timing model.

Eight banks with a 45 ns access time behind a shared bus (8 GB/s baseline,
16 GB/s in Section 8.2).  Timing is modelled with *resource-ready times*:
each bank and the bus remember when they next become free; a request at time
``t`` waits for its bank and for the bus, giving realistic queueing and bank
conflicts without a full DRAM controller model.

All times are in nanoseconds; the caller converts to core cycles.
"""

from dataclasses import dataclass
from typing import List

from repro.microarch.uncore import DramConfig
from repro.obs import METRICS


@dataclass
class DramStats:
    """Aggregate request counters and latency accounting."""

    requests: int = 0
    total_latency_ns: float = 0.0
    total_queue_ns: float = 0.0

    @property
    def mean_latency_ns(self) -> float:
        return self.total_latency_ns / self.requests if self.requests else 0.0

    @property
    def mean_queue_ns(self) -> float:
        return self.total_queue_ns / self.requests if self.requests else 0.0


class DramModel:
    """Timing model of banked DRAM behind a bandwidth-limited bus."""

    def __init__(self, config: DramConfig, line_bytes: int = 64):
        if line_bytes <= 0:
            raise ValueError(f"line_bytes must be > 0, got {line_bytes}")
        self.config = config
        self.line_bytes = line_bytes
        self.stats = DramStats()
        self._bank_free_ns: List[float] = [0.0] * config.num_banks
        self._bus_free_ns: float = 0.0

    @property
    def transfer_ns(self) -> float:
        """Time to move one cache line across the off-chip bus."""
        return self.line_bytes / self.config.bus_bandwidth_bytes_per_s * 1e9

    def bank_of(self, address: int) -> int:
        """Line-interleaved bank mapping."""
        return (address // self.line_bytes) % self.config.num_banks

    def access(self, address: int, now_ns: float) -> float:
        """Issue a line fill at absolute time ``now_ns``; returns completion time.

        The request first occupies its bank for the access latency (waiting
        if the bank is busy), then the bus for one line-transfer time.
        """
        if now_ns < 0:
            raise ValueError(f"now_ns must be >= 0, got {now_ns}")
        bank = self.bank_of(address)
        bank_start = max(now_ns, self._bank_free_ns[bank])
        bank_done = bank_start + self.config.access_latency_ns
        self._bank_free_ns[bank] = bank_done

        bus_start = max(bank_done, self._bus_free_ns)
        done = bus_start + self.transfer_ns
        self._bus_free_ns = done

        latency = done - now_ns
        self.stats.requests += 1
        self.stats.total_latency_ns += latency
        self.stats.total_queue_ns += (bank_start - now_ns) + (bus_start - bank_done)
        if METRICS.enabled:
            METRICS.inc("sim.dram.requests")
            if bank_start > now_ns:
                METRICS.inc("sim.dram.bank_conflicts")
            if bus_start > bank_done:
                METRICS.inc("sim.dram.bus_queued")
            METRICS.observe("sim.dram.latency_ns", latency)
        return done

    def unloaded_latency_ns(self) -> float:
        """Latency of a request hitting idle banks and an idle bus."""
        return self.config.access_latency_ns + self.transfer_ns

    def reset(self) -> None:
        self.stats = DramStats()
        self._bank_free_ns = [0.0] * self.config.num_banks
        self._bus_free_ns = 0.0

"""Cycle-level memory-hierarchy components.

True set-associative LRU caches, a banked DRAM timing model, an off-chip
bus, and the on-chip interconnect used by the cycle-level simulator in
:mod:`repro.sim`.  (The interval fast path in :mod:`repro.interval` models
these analytically; this package holds the stateful versions.)
"""

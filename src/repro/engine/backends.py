"""Record-I/O backends behind :class:`~repro.engine.store.ResultStore`.

The store facade owns policy — record schema/validation, corruption
handling, degradation to in-memory caching, stats, run summaries — while a
backend owns the physical record I/O.  Two implementations:

* :class:`DirectoryBackend` — the original layout: one JSON file per
  record under ``<cache-dir>/v<schema>/<shard>/<key>.json`` with atomic
  temp-file writes.  Zero setup, human-greppable, but concurrent writers
  contend on directory metadata and every record costs an inode.
* :class:`SqliteBackend` — records in :data:`SQLITE_SHARDS` sqlite
  databases under ``<cache-dir>/v<schema>-sqlite/``, sharded by key
  prefix.  WAL journaling gives single-writer-per-shard concurrency
  without directory-entry contention, which is what the serve daemon's
  concurrent clients need; sharding keeps writer contention from
  serializing across the whole keyspace.

Backends translate their native failures into :class:`StoreIOError`
(an ``OSError``), so the store's degradation logic stays backend-agnostic.
"""

import os
import sqlite3
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Number of sqlite shard databases (first hex character of the key).
SQLITE_SHARDS = 16

#: Milliseconds a shard connection waits on a locked database before
#: failing the operation (and degrading the store) instead of hanging.
SQLITE_BUSY_TIMEOUT_MS = 5000

#: Known backend names, as accepted by ``--store-backend``.
BACKEND_NAMES = ("dir", "sqlite")


class StoreIOError(OSError):
    """A backend failed to read or write a record (store degrades)."""


class DirectoryBackend:
    """One JSON file per record, sharded by key prefix, atomic writes."""

    name = "dir"

    def __init__(self, cache_dir: Path, schema_version: int):
        self.cache_dir = cache_dir
        self.root = cache_dir / f"v{schema_version}"

    # -- record I/O ---------------------------------------------------- #

    def record_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def read_record(self, key: str) -> Optional[str]:
        """Raw record text, or None when there is no record to read."""
        try:
            return self.record_path(key).read_text()
        except OSError:
            return None

    def write_record(self, key: str, text: str) -> None:
        """Atomic write: temp file in the shard directory, then replace."""
        path = self.record_path(key)
        tmp_name = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=f".{key[:8]}-", suffix=".tmp", dir=path.parent
            )
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
            tmp_name = None
        finally:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass

    def read_records(self, keys: List[str]) -> Dict[str, Optional[str]]:
        """Batched :meth:`read_record`: one ``{key: text-or-None}`` map.

        Per-file reads cannot be truly batched on a directory layout, but
        funnelling the loop through one call keeps the store's batch path
        backend-agnostic (the sqlite backend turns it into per-shard
        ``SELECT ... IN`` queries).
        """
        return {key: self.read_record(key) for key in keys}

    def write_records(self, items: List[Tuple[str, str]]) -> None:
        """Batched :meth:`write_record` with grouped directory setup.

        The shard directories for the whole batch are created up front so
        each record write is just mkstemp + write + replace; every write
        stays individually atomic (readers never see a torn record).
        """
        for parent in {self.record_path(key).parent for key, _ in items}:
            parent.mkdir(parents=True, exist_ok=True)
        for key, text in items:
            path = self.record_path(key)
            tmp_name = None
            try:
                fd, tmp_name = tempfile.mkstemp(
                    prefix=f".{key[:8]}-", suffix=".tmp", dir=path.parent
                )
                with os.fdopen(fd, "w") as handle:
                    handle.write(text)
                os.replace(tmp_name, path)
                tmp_name = None
            finally:
                if tmp_name is not None:
                    try:
                        os.unlink(tmp_name)
                    except OSError:
                        pass

    def delete_record(self, key: str) -> bool:
        try:
            self.record_path(key).unlink()
            return True
        except OSError:
            return False

    # -- maintenance --------------------------------------------------- #

    def record_paths(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def orphan_tmp_paths(self) -> List[Path]:
        """Leftover ``.tmp`` files from writers that died mid-write."""
        orphans: List[Path] = []
        if self.root.is_dir():
            orphans.extend(self.root.glob("*/.*.tmp"))
        if self.cache_dir.is_dir():
            orphans.extend(self.cache_dir.glob(".last_run*.tmp"))
        return sorted(orphans)

    def empty_shard_dirs(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return sorted(
            child
            for child in self.root.iterdir()
            if child.is_dir() and not any(child.iterdir())
        )

    def sweep_debris(self) -> Dict[str, int]:
        removed_tmp = 0
        for path in self.orphan_tmp_paths():
            try:
                path.unlink()
                removed_tmp += 1
            except OSError:
                pass
        removed_dirs = 0
        for shard in self.empty_shard_dirs():
            try:
                shard.rmdir()
                removed_dirs += 1
            except OSError:
                pass
        return {"tmp_files": removed_tmp, "empty_shards": removed_dirs}

    def clear(self) -> int:
        removed = 0
        for path in self.record_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def prune(self, max_records: int) -> int:
        paths = self.record_paths()
        if len(paths) <= max_records:
            return 0

        def mtime(path: Path) -> float:
            try:
                return path.stat().st_mtime
            except OSError:
                return 0.0

        paths.sort(key=mtime)
        removed = 0
        for path in paths[: len(paths) - max_records]:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def content_counts(self) -> Tuple[int, int]:
        """(record count, total bytes) currently persisted."""
        paths = self.record_paths()
        total_bytes = 0
        for path in paths:
            try:
                total_bytes += path.stat().st_size
            except OSError:
                pass
        return len(paths), total_bytes

    def describe(self) -> Dict[str, int]:
        return {
            "orphan_tmp_files": len(self.orphan_tmp_paths()),
            "empty_shards": len(self.empty_shard_dirs()),
        }

    def close(self) -> None:
        pass


class SqliteBackend:
    """Records in sharded sqlite databases (WAL) under the cache dir.

    Each shard holds one table::

        CREATE TABLE records (
            key    TEXT PRIMARY KEY,
            record TEXT NOT NULL,
            mtime  REAL NOT NULL
        )

    The shard of a key is its first hex character, so concurrent writers
    touching different key ranges land on different database files and a
    writer lock never spans the whole keyspace.
    """

    name = "sqlite"

    def __init__(self, cache_dir: Path, schema_version: int):
        self.cache_dir = cache_dir
        self.root = cache_dir / f"v{schema_version}-sqlite"
        self._connections: Dict[int, sqlite3.Connection] = {}

    # -- connections ---------------------------------------------------- #

    @staticmethod
    def shard_of(key: str) -> int:
        try:
            return int(key[0], 16) % SQLITE_SHARDS
        except (ValueError, IndexError):
            return 0

    def shard_path(self, shard: int) -> Path:
        return self.root / f"shard-{shard:x}.db"

    def _connect(self, shard: int, create: bool = True) -> Optional[sqlite3.Connection]:
        conn = self._connections.get(shard)
        if conn is not None:
            return conn
        path = self.shard_path(shard)
        if not create and not path.exists():
            return None
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            # check_same_thread=False: the serve daemon reads summaries on
            # its event-loop thread while the dispatcher thread writes;
            # sqlite serializes access internally at this isolation level.
            conn = sqlite3.connect(str(path), check_same_thread=False)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute(f"PRAGMA busy_timeout={SQLITE_BUSY_TIMEOUT_MS}")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS records ("
                "key TEXT PRIMARY KEY, record TEXT NOT NULL, mtime REAL NOT NULL)"
            )
            conn.commit()
        except sqlite3.Error as exc:
            raise StoreIOError(f"sqlite shard {path}: {exc}") from exc
        self._connections[shard] = conn
        return conn

    def _shards_present(self) -> List[int]:
        return [s for s in range(SQLITE_SHARDS) if self.shard_path(s).exists()]

    # -- record I/O ----------------------------------------------------- #

    def read_record(self, key: str) -> Optional[str]:
        try:
            conn = self._connect(self.shard_of(key), create=False)
            if conn is None:
                return None
            row = conn.execute(
                "SELECT record FROM records WHERE key = ?", (key,)
            ).fetchone()
        except (sqlite3.Error, StoreIOError):
            return None
        return row[0] if row else None

    def write_record(self, key: str, text: str) -> None:
        try:
            conn = self._connect(self.shard_of(key))
            with conn:
                conn.execute(
                    "INSERT INTO records(key, record, mtime) VALUES(?, ?, ?) "
                    "ON CONFLICT(key) DO UPDATE SET record=excluded.record, "
                    "mtime=excluded.mtime",
                    (key, text, time.time()),
                )
        except sqlite3.Error as exc:
            raise StoreIOError(f"sqlite write failed: {exc}") from exc

    def read_records(self, keys: List[str]) -> Dict[str, Optional[str]]:
        """Batched read: one ``SELECT ... WHERE key IN (...)`` per shard."""
        out: Dict[str, Optional[str]] = {key: None for key in keys}
        by_shard: Dict[int, List[str]] = {}
        for key in keys:
            by_shard.setdefault(self.shard_of(key), []).append(key)
        for shard, shard_keys in by_shard.items():
            try:
                conn = self._connect(shard, create=False)
                if conn is None:
                    continue
                placeholders = ",".join("?" * len(shard_keys))
                rows = conn.execute(
                    f"SELECT key, record FROM records WHERE key IN ({placeholders})",
                    shard_keys,
                ).fetchall()
            except (sqlite3.Error, StoreIOError):
                continue
            for key, record in rows:
                out[key] = record
        return out

    def write_records(self, items: List[Tuple[str, str]]) -> None:
        """Batched write: one transaction (``executemany``) per shard.

        This is where sqlite batching pays: a write-back of N records costs
        one fsync per touched shard instead of one per record.
        """
        by_shard: Dict[int, List[Tuple[str, str, float]]] = {}
        now = time.time()
        for key, text in items:
            by_shard.setdefault(self.shard_of(key), []).append((key, text, now))
        try:
            for shard, rows in by_shard.items():
                conn = self._connect(shard)
                with conn:
                    conn.executemany(
                        "INSERT INTO records(key, record, mtime) VALUES(?, ?, ?) "
                        "ON CONFLICT(key) DO UPDATE SET record=excluded.record, "
                        "mtime=excluded.mtime",
                        rows,
                    )
        except sqlite3.Error as exc:
            raise StoreIOError(f"sqlite batch write failed: {exc}") from exc

    def delete_record(self, key: str) -> bool:
        try:
            conn = self._connect(self.shard_of(key), create=False)
            if conn is None:
                return False
            with conn:
                cursor = conn.execute(
                    "DELETE FROM records WHERE key = ?", (key,)
                )
            return cursor.rowcount > 0
        except (sqlite3.Error, StoreIOError):
            return False

    # -- maintenance ---------------------------------------------------- #

    def sweep_debris(self) -> Dict[str, int]:
        return {"tmp_files": 0, "empty_shards": 0}

    def clear(self) -> int:
        removed = 0
        for shard in self._shards_present():
            try:
                conn = self._connect(shard, create=False)
                if conn is None:
                    continue
                with conn:
                    cursor = conn.execute("DELETE FROM records")
                removed += cursor.rowcount
            except (sqlite3.Error, StoreIOError):
                pass
        return removed

    def prune(self, max_records: int) -> int:
        stamped: List[Tuple[float, int, str]] = []
        for shard in self._shards_present():
            try:
                conn = self._connect(shard, create=False)
                if conn is None:
                    continue
                stamped.extend(
                    (mtime, shard, key)
                    for key, mtime in conn.execute(
                        "SELECT key, mtime FROM records"
                    )
                )
            except (sqlite3.Error, StoreIOError):
                pass
        if len(stamped) <= max_records:
            return 0
        stamped.sort()
        removed = 0
        for _mtime, shard, key in stamped[: len(stamped) - max_records]:
            if self.delete_record(key):
                removed += 1
        return removed

    def content_counts(self) -> Tuple[int, int]:
        records = 0
        total_bytes = 0
        for shard in self._shards_present():
            try:
                conn = self._connect(shard, create=False)
                if conn is None:
                    continue
                row = conn.execute(
                    "SELECT COUNT(*), COALESCE(SUM(LENGTH(record)), 0) "
                    "FROM records"
                ).fetchone()
            except (sqlite3.Error, StoreIOError):
                continue
            records += row[0]
            total_bytes += row[1]
        return records, total_bytes

    def describe(self) -> Dict[str, int]:
        return {
            "orphan_tmp_files": 0,
            "empty_shards": 0,
            "sqlite_shards": len(self._shards_present()),
        }

    def close(self) -> None:
        for conn in self._connections.values():
            try:
                conn.close()
            except sqlite3.Error:
                pass
        self._connections.clear()


def make_backend(name: str, cache_dir: Path, schema_version: int):
    """Instantiate the backend called ``name`` ("dir" or "sqlite")."""
    if name == "dir":
        return DirectoryBackend(cache_dir, schema_version)
    if name == "sqlite":
        return SqliteBackend(cache_dir, schema_version)
    raise ValueError(
        f"unknown store backend {name!r}; choose from {', '.join(BACKEND_NAMES)}"
    )

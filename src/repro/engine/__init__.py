"""Parallel evaluation engine with a persistent, content-addressed store.

The design-space grid — 9 chip designs x {homogeneous, heterogeneous} mixes
x 1-24 thread counts x SMT on/off — is embarrassingly parallel, and most of
its points recur across figures and across runs.  This package turns grid
evaluation into explicit work units and makes both kinds of reuse cheap:

* :mod:`repro.engine.tasks` — :class:`WorkUnit`, the unit of evaluation:
  one (design, mix, SMT) point, picklable for worker dispatch;
* :mod:`repro.engine.keys` — deterministic, version-stamped content keys
  derived from the *full* configuration (design, uncore, workload profiles,
  model version), so any config or model change invalidates cleanly;
* :mod:`repro.engine.store` — :class:`ResultStore`, an on-disk
  content-addressed JSON store with atomic writes, schema versioning and
  corruption tolerance, plus :class:`KeyedCache` for in-process memoization
  under the same key scheme;
* :mod:`repro.engine.backends` — the physical record layouts behind the
  store: one-file-per-record directories (default) or sharded sqlite
  databases (``--store-backend sqlite``, better under concurrent writers
  such as the serve daemon);
* :mod:`repro.engine.executor` — :class:`ParallelExecutor` (a persistent
  :class:`WorkerPool` by default, with a per-call process pool mode and a
  bit-identical serial fallback) and :class:`Engine`, the facade that
  checks the store in one batched lookup, computes misses in parallel and
  streams results back in deterministic order as workers finish;
* :mod:`repro.engine.stats` — :class:`EngineStats`: per-phase wall time,
  worker utilization, cache hit rates and fault accounting;
* :mod:`repro.engine.faults` — deterministic fault injection
  (``$REPRO_FAULT_SPEC``): unit exceptions, worker kills, slow units and
  store I/O errors, so every failure path above is testable.

The engine is also the observability boundary (:mod:`repro.obs`): when
tracing/metrics are enabled, engine phases and per-unit evaluations become
spans on one Perfetto-loadable timeline — including spans recorded inside
pool workers, which travel back in each :class:`UnitOutcome` — and the
run summary gains a metrics snapshot.  All of it is off by default and
free when off.

Failures are isolated per unit: a crashing unit yields a structured
:class:`UnitFailure` (with configurable retries, exponential backoff and a
per-unit timeout) instead of poisoning its chunk, a dead worker's chunk is
re-executed serially, and an unwritable cache directory degrades the store
to in-memory caching with a warning instead of aborting the run.

Typical use::

    from repro.engine import Engine, ResultStore
    from repro.core.study import DesignSpaceStudy

    engine = Engine(jobs=4, store=ResultStore("~/.cache/repro"))
    study = DesignSpaceStudy(engine=engine)
    study.throughput_curve("4B", "heterogeneous")   # parallel + cached
    print(engine.stats.formatted())
"""

from repro.engine.backends import (
    BACKEND_NAMES,
    DirectoryBackend,
    SqliteBackend,
    StoreIOError,
    make_backend,
)
from repro.engine.executor import (
    POOL_MODES,
    Engine,
    EngineFailureError,
    ParallelExecutor,
    UnitOutcome,
    UnitTimeoutError,
    WorkerPool,
)
from repro.engine.faults import FAULT_SPEC_ENV, InjectedFault, InjectedStoreError
from repro.engine.keys import MODEL_VERSION, canonicalize, content_key
from repro.engine.stats import EngineStats
from repro.engine.store import KeyedCache, ResultStore, StoreStats
from repro.engine.tasks import (
    SlabUnit,
    UnitFailure,
    WorkUnit,
    evaluate_work_unit,
    payload_from_result,
    result_from_payload,
)

__all__ = [
    "Engine",
    "EngineFailureError",
    "ParallelExecutor",
    "WorkerPool",
    "POOL_MODES",
    "UnitOutcome",
    "UnitTimeoutError",
    "UnitFailure",
    "EngineStats",
    "ResultStore",
    "StoreStats",
    "KeyedCache",
    "BACKEND_NAMES",
    "DirectoryBackend",
    "SqliteBackend",
    "StoreIOError",
    "make_backend",
    "WorkUnit",
    "SlabUnit",
    "evaluate_work_unit",
    "payload_from_result",
    "result_from_payload",
    "content_key",
    "canonicalize",
    "MODEL_VERSION",
    "FAULT_SPEC_ENV",
    "InjectedFault",
    "InjectedStoreError",
]

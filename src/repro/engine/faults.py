"""Deterministic fault injection for the evaluation engine.

The engine's failure paths — a raising work unit, a killed worker, a unit
that hangs, a store that cannot read or write — are impossible to exercise
reliably with real hardware faults, so this module injects them on demand.
A *fault spec* is a semicolon-separated list of faults::

    raise:benchmark=mcf:times=1; kill:design=8m; slow:benchmark=tonto:seconds=5

activated through the :data:`FAULT_SPEC_ENV` environment variable (which
worker processes inherit) or programmatically via :func:`install` in tests.

Fault kinds:

``raise``
    the matching unit's evaluation raises :class:`InjectedFault`;
``kill``
    the worker process evaluating the matching unit dies with
    ``os._exit`` — but **only inside a pool worker** (see
    :func:`mark_worker_process`), so the executor's serial re-execution of
    a lost chunk in the parent is not itself killed;
``slow``
    evaluation of the matching unit is delayed by ``seconds`` (for
    per-unit timeout tests);
``store-read`` / ``store-write``
    the next store lookup / write raises :class:`InjectedStoreError`
    (an ``OSError``), driving the store's degraded in-memory mode.

Matching fields (all optional; a fault with none matches every unit):
``benchmark=<name>`` (name appears in the unit's mix), ``design=<name>``,
``smt=<true|false>``.  ``times=N`` caps how often a fault fires *per
process* (omitted = every time), which is what makes retry-then-succeed
scenarios deterministic: the first attempt consumes the budget, the retry
runs clean.
"""

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

#: Environment variable carrying the active fault spec (inherited by
#: pool worker processes, so injection works across the process boundary).
FAULT_SPEC_ENV = "REPRO_FAULT_SPEC"

#: Recognized fault kinds.
FAULT_KINDS = ("raise", "kill", "slow", "store-read", "store-write")


class InjectedFault(RuntimeError):
    """Raised by a ``raise`` fault during unit evaluation."""


class InjectedStoreError(OSError):
    """Raised by a ``store-read``/``store-write`` fault during store I/O."""


@dataclass(frozen=True)
class Fault:
    """One parsed fault clause of a spec."""

    kind: str
    benchmark: Optional[str] = None
    design: Optional[str] = None
    smt: Optional[bool] = None
    times: Optional[int] = None  # None = fire every time
    seconds: float = 5.0  # slow faults only
    exit_code: int = 17  # kill faults only

    def matches_unit(self, unit) -> bool:
        if self.benchmark is not None and self.benchmark not in unit.mix:
            return False
        if self.design is not None and unit.design.name != self.design:
            return False
        if self.smt is not None and unit.smt != self.smt:
            return False
        return True


def parse_spec(spec: str) -> List[Fault]:
    """Parse a fault spec string into :class:`Fault` clauses.

    Raises ``ValueError`` with a precise message on unknown kinds/fields,
    so a typo in ``$REPRO_FAULT_SPEC`` fails loudly, not silently.
    """
    faults: List[Fault] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, _, rest = clause.partition(":")
        kind = kind.strip()
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r} in {clause!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        fields: Dict[str, object] = {}
        for part in filter(None, (p.strip() for p in rest.split(":"))):
            name, sep, value = part.partition("=")
            if not sep:
                raise ValueError(f"malformed fault field {part!r} in {clause!r}")
            name = name.strip()
            value = value.strip()
            if name in ("benchmark", "design"):
                fields[name] = value
            elif name == "smt":
                fields[name] = value.lower() in ("1", "true", "yes", "on")
            elif name == "times":
                fields[name] = int(value)
            elif name == "seconds":
                fields[name] = float(value)
            elif name == "exit_code":
                fields[name] = int(value)
            else:
                raise ValueError(f"unknown fault field {name!r} in {clause!r}")
        faults.append(Fault(kind=kind, **fields))
    return faults


# --------------------------------------------------------------------- #
# module state: active spec, per-process fire counters, worker marker    #
# --------------------------------------------------------------------- #

_spec_cache: Optional[str] = None
_faults: List[Fault] = []
_fire_counts: Dict[int, int] = {}
_IN_WORKER = False


def _active() -> List[Fault]:
    """The faults for the current ``$REPRO_FAULT_SPEC`` (re-parsed, and
    counters reset, whenever the env value changes)."""
    global _spec_cache, _faults
    spec = os.environ.get(FAULT_SPEC_ENV, "")
    if spec != _spec_cache:
        _faults = parse_spec(spec)
        _spec_cache = spec
        _fire_counts.clear()
    return _faults


def _should_fire(index: int, fault: Fault) -> bool:
    if fault.times is not None:
        fired = _fire_counts.get(index, 0)
        if fired >= fault.times:
            return False
        _fire_counts[index] = fired + 1
    return True


def mark_worker_process() -> None:
    """Pool-worker initializer: arm worker-only faults (``kill``) here."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker_process() -> bool:
    return _IN_WORKER


def install(spec: str) -> List[Fault]:
    """Activate ``spec`` (validating it first) for this and child processes."""
    faults = parse_spec(spec)  # fail before touching the environment
    os.environ[FAULT_SPEC_ENV] = spec
    _active()
    return faults


def reset() -> None:
    """Deactivate injection and forget all per-process fire counters."""
    global _spec_cache, _faults, _IN_WORKER
    os.environ.pop(FAULT_SPEC_ENV, None)
    _spec_cache = None
    _faults = []
    _fire_counts.clear()
    _IN_WORKER = False


def current_spec() -> str:
    """The active spec string ("" when injection is off), for shipping to
    persistent pool workers alongside each task."""
    return os.environ.get(FAULT_SPEC_ENV, "")


def sync_spec(spec: str) -> None:
    """Adopt the parent's fault spec inside a persistent pool worker.

    Per-call pools inherit ``$REPRO_FAULT_SPEC`` at fork time, but a
    persistent worker may have forked *before* a test or CLI run installed
    its spec — so the executor ships the parent's current spec with every
    task and the worker applies it here.  :func:`_active` re-parses (and
    re-arms ``times=`` budgets) only when the spec string actually
    changed, so an unchanged spec keeps its per-process fire counters and
    retry-then-succeed scenarios stay deterministic.
    """
    if spec:
        os.environ[FAULT_SPEC_ENV] = spec
    else:
        os.environ.pop(FAULT_SPEC_ENV, None)
    _active()


# --------------------------------------------------------------------- #
# injection points                                                       #
# --------------------------------------------------------------------- #


def inject_unit_faults(unit) -> None:
    """Called once per evaluation *attempt*, before the unit runs."""
    for index, fault in enumerate(_active()):
        if fault.kind not in ("raise", "kill", "slow"):
            continue
        if not fault.matches_unit(unit):
            continue
        if fault.kind == "kill" and not _IN_WORKER:
            # Never kill the parent: the executor's serial re-execution of
            # a lost chunk must survive the very unit that killed a worker.
            continue
        if not _should_fire(index, fault):
            continue
        if fault.kind == "slow":
            time.sleep(fault.seconds)
        elif fault.kind == "kill":
            os._exit(fault.exit_code)
        else:
            raise InjectedFault(
                f"injected fault for unit {unit.design.name}/{'+'.join(unit.mix)}"
            )


def inject_store_fault(op: str) -> None:
    """Called by the store at the top of ``get`` (op='read') / ``put`` (op='write')."""
    kind = f"store-{op}"
    for index, fault in enumerate(_active()):
        if fault.kind != kind:
            continue
        if not _should_fire(index, fault):
            continue
        raise InjectedStoreError(f"injected store {op} error")

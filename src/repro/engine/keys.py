"""Deterministic, version-stamped content keys for evaluation results.

A result is addressed by a SHA-256 digest of the *full* configuration that
produced it: the chip design (cores, caches, uncore), the workload profiles
behind every benchmark name in the mix, the SMT flag, and the model version.
Two consequences:

* **stability** — the same configuration hashes to the same key in any
  process on any machine (canonicalization sorts dict keys, spells out
  dataclass types, and renders floats via ``repr``, Python's shortest
  round-trip form);
* **clean invalidation** — editing a core config, a miss-rate curve or the
  model itself changes the key, so stale records are simply never looked
  up; there is no invalidation protocol to get wrong.

Bump :data:`MODEL_VERSION` whenever the evaluation *math* changes in a way
that alters results without changing any configuration dataclass.
"""

import dataclasses
import hashlib
import json
from enum import Enum
from typing import Any

try:  # NumPy is a core dependency of the interval tier, but keying must
    import numpy as _np  # degrade to pure-Python payloads without it.
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

#: Version of the evaluation model.  Part of every content key: bump it when
#: the interval model, scheduler policy or power model changes numerically.
MODEL_VERSION = "1"

#: Version of the key derivation itself (canonicalization rules).
KEY_SCHEMA_VERSION = 1


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-serializable canonical form.

    Dataclasses become dicts tagged with their type name (so two distinct
    config types with identical fields cannot collide), enums collapse to
    their values, sequences to lists, and floats to their ``repr`` (the
    shortest string that round-trips exactly, identical across processes).
    """
    if _np is not None:
        # NumPy scalars leak out of the vectorized solver paths (a slab
        # result carries np.float64 where the scalar path carries float).
        # np.float64 *subclasses* float, so without this branch it would
        # fall through to the float branch below and canonicalize to
        # ``repr(np.float64(x))`` — "np.float64(1.5)" under NumPy >= 2 —
        # splitting store/coalescing keys between the vector and scalar
        # paths.  ``item()`` demotes every scalar kind (float, int, bool)
        # to its exact Python equivalent; 0-d and small arrays demote via
        # ``tolist()`` for the same reason.
        if isinstance(obj, _np.generic):
            return canonicalize(obj.item())
        if isinstance(obj, _np.ndarray):
            return canonicalize(obj.tolist())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {"__type__": type(obj).__name__}
        for field in dataclasses.fields(obj):
            out[field.name] = canonicalize(getattr(obj, field.name))
        return out
    if isinstance(obj, Enum):
        return canonicalize(obj.value)
    if isinstance(obj, dict):
        # Stringify keys *before* sorting: mixed-type keys (int + str) are
        # not mutually orderable, and an int key must land in the same slot
        # as its str() form so equivalent dicts hash identically.
        return {
            str(k): canonicalize(v)
            for k, v in sorted(obj.items(), key=lambda item: str(item[0]))
        }
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, float):
        return repr(obj)
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__!r} for keying")


def content_key(payload: Any) -> str:
    """SHA-256 hex digest of the canonical form of ``payload``.

    The digest covers :data:`KEY_SCHEMA_VERSION` and :data:`MODEL_VERSION`,
    so bumping either retires every previously stored key at once.
    """
    document = {
        "key_schema": KEY_SCHEMA_VERSION,
        "model": MODEL_VERSION,
        "payload": canonicalize(payload),
    }
    text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()

"""Persistent, content-addressed result store (plus in-process keyed cache).

Layout (one JSON record per result, sharded by key prefix to keep
directories small)::

    <cache-dir>/
        last_run.json              # summary of the most recent engine run
        v<schema>/
            ab/
                ab12...ef.json     # {"schema": .., "key": .., "payload": ..}

Properties:

* **atomic writes** — records are written to a temp file in the same
  directory and ``os.replace``d into place, so readers never observe a
  half-written record, even across concurrent processes;
* **schema versioning** — the record format version is baked into both the
  directory name and each record; a reader that finds a mismatched or
  foreign record treats it as a miss;
* **corruption tolerance** — truncated/garbage/mismatched records are
  counted, deleted and recomputed, never raised;
* **accounting** — hits, misses, writes, corrupt records and evictions are
  tallied in :class:`StoreStats`.
"""

import json
import os
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.engine.keys import content_key

#: Record format version.  Bump on layout changes; old records become
#: invisible (they live under the previous ``v<N>`` directory).
STORE_SCHEMA_VERSION = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Fallback cache location (per the XDG convention).
DEFAULT_CACHE_DIR = "~/.cache/repro"


def default_cache_dir() -> Path:
    """The store location: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR).expanduser()


@dataclass
class StoreStats:
    """Session counters for one :class:`ResultStore`."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    evicted: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        out["hit_rate"] = self.hit_rate
        return out


class ResultStore:
    """On-disk content-addressed store of JSON result records."""

    def __init__(self, cache_dir: Optional[os.PathLike] = None):
        self.cache_dir = (
            Path(cache_dir).expanduser() if cache_dir is not None else default_cache_dir()
        )
        self.root = self.cache_dir / f"v{STORE_SCHEMA_VERSION}"
        self.stats = StoreStats()

    # ------------------------------------------------------------------ #
    # record I/O                                                          #
    # ------------------------------------------------------------------ #

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload stored under ``key``, or None (miss or bad record)."""
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            record = json.loads(text)
            if (
                not isinstance(record, dict)
                or record.get("schema") != STORE_SCHEMA_VERSION
                or record.get("key") != key
                or not isinstance(record.get("payload"), dict)
            ):
                raise ValueError("malformed record")
            payload = record["payload"]
        except (ValueError, KeyError, TypeError):
            # Corrupt/truncated/foreign record: drop it and recompute.
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically write ``payload`` under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {"schema": STORE_SCHEMA_VERSION, "key": key, "payload": payload}
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1

    # ------------------------------------------------------------------ #
    # maintenance                                                         #
    # ------------------------------------------------------------------ #

    def _record_paths(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every record; returns how many were evicted."""
        removed = 0
        for path in self._record_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self.stats.evicted += removed
        return removed

    def prune(self, max_records: int) -> int:
        """Evict oldest records (by mtime) down to ``max_records``."""
        if max_records < 0:
            raise ValueError("max_records must be >= 0")
        paths = self._record_paths()
        if len(paths) <= max_records:
            return 0
        def mtime(path: Path) -> float:
            try:
                return path.stat().st_mtime
            except OSError:
                return 0.0
        paths.sort(key=mtime)
        removed = 0
        for path in paths[: len(paths) - max_records]:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self.stats.evicted += removed
        return removed

    def content_summary(self) -> Dict[str, Any]:
        """What is on disk right now (for ``repro cache stats``)."""
        paths = self._record_paths()
        total_bytes = 0
        for path in paths:
            try:
                total_bytes += path.stat().st_size
            except OSError:
                pass
        return {
            "cache_dir": str(self.cache_dir),
            "schema_version": STORE_SCHEMA_VERSION,
            "records": len(paths),
            "total_bytes": total_bytes,
        }

    # ------------------------------------------------------------------ #
    # run summaries                                                       #
    # ------------------------------------------------------------------ #

    @property
    def summary_path(self) -> Path:
        return self.cache_dir / "last_run.json"

    def write_run_summary(self, summary: Dict[str, Any]) -> None:
        """Persist the last engine run's stats (read by ``cache stats``)."""
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=".last_run-", suffix=".tmp", dir=self.cache_dir
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(summary, handle, indent=2)
            os.replace(tmp_name, self.summary_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def read_run_summary(self) -> Optional[Dict[str, Any]]:
        try:
            summary = json.loads(self.summary_path.read_text())
        except (OSError, ValueError):
            return None
        return summary if isinstance(summary, dict) else None


class KeyedCache:
    """In-process memo keyed by the engine's content-key scheme.

    This replaces ad-hoc module-level ``lru_cache``s: values are addressed
    by the same deterministic keys the persistent store uses (namespaced so
    different value kinds cannot collide), the cache is observable
    (hit/miss counters, ``len``) and explicitly clearable by tests.  A
    side table memoizes key derivation for hashable argument tuples so the
    hot path stays close to ``lru_cache`` speed.
    """

    def __init__(self, namespace: str):
        self.namespace = namespace
        self._values: Dict[str, Any] = {}
        self._key_memo: Dict[Tuple, str] = {}
        self.hits = 0
        self.misses = 0

    def key_for(self, parts: Tuple) -> str:
        try:
            return self._key_memo[parts]
        except KeyError:
            key = content_key({"namespace": self.namespace, "parts": list(parts)})
            self._key_memo[parts] = key
            return key
        except TypeError:  # unhashable parts: derive without memoizing
            return content_key({"namespace": self.namespace, "parts": list(parts)})

    def get_or_compute(self, parts: Tuple, compute: Callable[[], Any]) -> Any:
        key = self.key_for(parts)
        try:
            value = self._values[key]
        except KeyError:
            self.misses += 1
            value = compute()
            self._values[key] = value
            return value
        self.hits += 1
        return value

    def clear(self) -> None:
        self._values.clear()
        self._key_memo.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._values)

"""Persistent, content-addressed result store (plus in-process keyed cache).

Record I/O goes through a pluggable backend (:mod:`repro.engine.backends`):
the default ``dir`` backend keeps one JSON record per file, sharded by key
prefix to keep directories small, and the ``sqlite`` backend keeps records
in sharded WAL-mode sqlite databases so concurrent clients (the serve
daemon's workload) stop contending on directory metadata::

    <cache-dir>/
        last_run.json              # summary of the most recent engine run
        v<schema>/                 # dir backend
            ab/
                ab12...ef.json     # {"schema": .., "key": .., "payload": ..}
        v<schema>-sqlite/          # sqlite backend
            shard-0.db ... shard-f.db

Properties:

* **atomic writes** — records are written to a temp file in the same
  directory and ``os.replace``d into place, so readers never observe a
  half-written record, even across concurrent processes;
* **schema versioning** — the record format version is baked into both the
  directory name and each record; a reader that finds a mismatched or
  foreign record treats it as a miss;
* **corruption tolerance** — truncated/garbage/mismatched records are
  counted, deleted and recomputed, never raised;
* **graceful degradation** — a read-only or otherwise unwritable cache
  directory demotes the store to **in-memory caching** with a one-time
  warning instead of aborting the run; disk records that are still
  readable keep serving hits;
* **accounting** — hits, misses, writes, corrupt records, evictions and
  degraded-mode writes are tallied in :class:`StoreStats`.
"""

import json
import os
import warnings
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.engine import faults
from repro.engine.backends import make_backend
from repro.engine.keys import content_key
from repro.obs import METRICS, TRACER
from repro.util.io import atomic_write_json

#: Record format version.  Bump on layout changes; old records become
#: invisible (they live under the previous ``v<N>`` directory).
STORE_SCHEMA_VERSION = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Fallback cache location (per the XDG convention).
DEFAULT_CACHE_DIR = "~/.cache/repro"


def default_cache_dir() -> Path:
    """The store location: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR).expanduser()


@dataclass
class StoreStats:
    """Session counters for one :class:`ResultStore`."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    evicted: int = 0
    #: Writes absorbed by the in-memory fallback after degradation.
    memory_writes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        out["hit_rate"] = self.hit_rate
        return out


class ResultStore:
    """On-disk content-addressed store of JSON result records.

    If the cache directory turns out to be unwritable or corrupt (a
    read-only mount, a path that is actually a file, an I/O error), the
    store *degrades* rather than raises: subsequent writes land in an
    in-process dictionary, reads fall back to it, and a single
    ``RuntimeWarning`` explains what happened.  The run completes; only
    cross-run persistence is lost.
    """

    def __init__(
        self,
        cache_dir: Optional[os.PathLike] = None,
        backend: str = "dir",
    ):
        self.cache_dir = (
            Path(cache_dir).expanduser() if cache_dir is not None else default_cache_dir()
        )
        #: Record-I/O backend ("dir" or "sqlite"); the store keeps policy
        #: (validation, degradation, stats) backend-agnostic.
        self.backend = make_backend(backend, self.cache_dir, STORE_SCHEMA_VERSION)
        self.root = self.backend.root
        self.stats = StoreStats()
        self.degraded = False
        self.degraded_reason: Optional[str] = None
        self._memory: Dict[str, Dict[str, Any]] = {}
        self._memory_summary: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------ #
    # degradation                                                         #
    # ------------------------------------------------------------------ #

    def _degrade(self, reason: str) -> None:
        if self.degraded:
            return
        self.degraded = True
        self.degraded_reason = reason
        TRACER.instant("store.degraded", cat="store", reason=reason)
        METRICS.inc("store.degradations")
        warnings.warn(
            f"result store degraded to in-memory caching ({reason}); "
            f"results from this run will not persist under {self.cache_dir}",
            RuntimeWarning,
            stacklevel=3,
        )

    # ------------------------------------------------------------------ #
    # record I/O                                                          #
    # ------------------------------------------------------------------ #

    def _path(self, key: str) -> Path:
        """Disk path of a record (directory backend only)."""
        return self.backend.record_path(key)

    def _decode_record(self, key: str, text: str) -> Optional[Dict[str, Any]]:
        """Validate raw record text; counts a hit, or a corrupt miss."""
        try:
            record = json.loads(text)
            if (
                not isinstance(record, dict)
                or record.get("schema") != STORE_SCHEMA_VERSION
                or record.get("key") != key
                or not isinstance(record.get("payload"), dict)
            ):
                raise ValueError("malformed record")
            payload = record["payload"]
        except (ValueError, KeyError, TypeError):
            # Corrupt/truncated/foreign record: drop it and recompute.
            self.stats.corrupt += 1
            self.stats.misses += 1
            METRICS.inc("store.corrupt")
            METRICS.inc("store.misses")
            TRACER.instant("store.corrupt-record", cat="store", key=key[:12])
            self.backend.delete_record(key)
            return None
        self.stats.hits += 1
        METRICS.inc("store.hits")
        return payload

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload stored under ``key``, or None (miss or bad record)."""
        if key in self._memory:
            self.stats.hits += 1
            METRICS.inc("store.hits")
            return self._memory[key]
        try:
            faults.inject_store_fault("read")
            text = self.backend.read_record(key)
        except OSError:
            text = None
        if text is None:
            self.stats.misses += 1
            METRICS.inc("store.misses")
            return None
        return self._decode_record(key, text)

    def get_many(self, keys: List[str]) -> List[Optional[Dict[str, Any]]]:
        """Batched :meth:`get`: payloads (or None) aligned with ``keys``.

        One backend round trip for every key not already in the in-memory
        layer — on the sqlite backend that is one ``SELECT ... IN`` per
        shard instead of a query per key.  Injected/real read faults
        degrade a key to a miss exactly like :meth:`get`.
        """
        out: List[Optional[Dict[str, Any]]] = [None] * len(keys)
        pending: List[Tuple[int, str]] = []
        for i, key in enumerate(keys):
            if key in self._memory:
                self.stats.hits += 1
                METRICS.inc("store.hits")
                out[i] = self._memory[key]
            else:
                pending.append((i, key))
        if not pending:
            return out
        readable: List[Tuple[int, str]] = []
        for i, key in pending:
            try:
                faults.inject_store_fault("read")
            except OSError:
                self.stats.misses += 1
                METRICS.inc("store.misses")
                continue
            readable.append((i, key))
        if readable:
            try:
                texts = self.backend.read_records([key for _, key in readable])
            except OSError:
                texts = {}
            for i, key in readable:
                text = texts.get(key)
                if text is None:
                    self.stats.misses += 1
                    METRICS.inc("store.misses")
                else:
                    out[i] = self._decode_record(key, text)
        return out

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Write ``payload`` under ``key``: atomically on disk, or to the
        in-memory fallback once the store has degraded."""
        if self.degraded:
            self._memory[key] = payload
            self.stats.memory_writes += 1
            METRICS.inc("store.memory_writes")
            return
        record = {"schema": STORE_SCHEMA_VERSION, "key": key, "payload": payload}
        try:
            faults.inject_store_fault("write")
            self.backend.write_record(key, json.dumps(record))
        except OSError as exc:
            self._degrade(f"write failed: {exc}")
            self._memory[key] = payload
            self.stats.memory_writes += 1
            METRICS.inc("store.memory_writes")
            return
        self.stats.writes += 1
        METRICS.inc("store.writes")

    def write_many(self, items: List[Tuple[str, Dict[str, Any]]]) -> None:
        """Batched :meth:`put`: one backend transaction for the whole batch.

        On the sqlite backend this is one transaction per touched shard;
        on the directory backend the shard directories are pre-created once
        and each record still lands via its own atomic replace.  A write
        fault (injected or real) degrades the store and routes the affected
        and remaining records to the in-memory fallback, same as ``put``.
        """
        staged: List[Tuple[str, Dict[str, Any], str]] = []
        for key, payload in items:
            if self.degraded:
                self._memory[key] = payload
                self.stats.memory_writes += 1
                METRICS.inc("store.memory_writes")
                continue
            try:
                faults.inject_store_fault("write")
            except OSError as exc:
                self._degrade(f"write failed: {exc}")
                self._memory[key] = payload
                self.stats.memory_writes += 1
                METRICS.inc("store.memory_writes")
                continue
            record = {"schema": STORE_SCHEMA_VERSION, "key": key, "payload": payload}
            staged.append((key, payload, json.dumps(record)))
        if not staged:
            return
        try:
            self.backend.write_records([(key, text) for key, _, text in staged])
        except OSError as exc:
            self._degrade(f"write failed: {exc}")
            for key, payload, _ in staged:
                self._memory[key] = payload
                self.stats.memory_writes += 1
                METRICS.inc("store.memory_writes")
            return
        self.stats.writes += len(staged)
        METRICS.inc("store.writes", len(staged))

    def delete(self, key: str) -> bool:
        """Remove the record under ``key`` (memory and disk); True if a
        persisted record was actually removed."""
        self._memory.pop(key, None)
        return self.backend.delete_record(key)

    # ------------------------------------------------------------------ #
    # maintenance                                                         #
    # ------------------------------------------------------------------ #

    def _record_paths(self) -> List[Path]:
        return self.backend.record_paths() if hasattr(
            self.backend, "record_paths"
        ) else []

    def _orphan_tmp_paths(self) -> List[Path]:
        """Leftover ``.tmp`` files from writers that died mid-write."""
        return self.backend.orphan_tmp_paths() if hasattr(
            self.backend, "orphan_tmp_paths"
        ) else []

    def _empty_shard_dirs(self) -> List[Path]:
        return self.backend.empty_shard_dirs() if hasattr(
            self.backend, "empty_shard_dirs"
        ) else []

    def sweep_debris(self) -> Dict[str, int]:
        """Remove orphaned temp files and empty shard directories.

        Runs automatically after :meth:`clear` and :meth:`prune`; safe to
        call any time.  Returns what was removed.
        """
        return self.backend.sweep_debris()

    def clear(self) -> int:
        """Delete every record; returns how many were evicted."""
        removed = len(self._memory)
        self._memory.clear()
        removed += self.backend.clear()
        self.stats.evicted += removed
        self.sweep_debris()
        return removed

    def prune(self, max_records: int) -> int:
        """Evict oldest records (by mtime) down to ``max_records``."""
        if max_records < 0:
            raise ValueError("max_records must be >= 0")
        removed = self.backend.prune(max_records)
        self.stats.evicted += removed
        self.sweep_debris()
        return removed

    def content_summary(self) -> Dict[str, Any]:
        """What is persisted right now (for ``repro cache stats``)."""
        records, total_bytes = self.backend.content_counts()
        summary = {
            "cache_dir": str(self.cache_dir),
            "backend": self.backend.name,
            "schema_version": STORE_SCHEMA_VERSION,
            "records": records,
            "total_bytes": total_bytes,
            "memory_records": len(self._memory),
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
        }
        summary.update(self.backend.describe())
        return summary

    def status_dict(self) -> Dict[str, Any]:
        """Session stats plus degradation state (for run summaries)."""
        out = self.stats.as_dict()
        out["backend"] = self.backend.name
        out["degraded"] = self.degraded
        out["degraded_reason"] = self.degraded_reason
        out["memory_records"] = len(self._memory)
        return out

    def close(self) -> None:
        """Release backend resources (sqlite connections); safe to re-open."""
        self.backend.close()

    # ------------------------------------------------------------------ #
    # run summaries                                                       #
    # ------------------------------------------------------------------ #

    @property
    def summary_path(self) -> Path:
        return self.cache_dir / "last_run.json"

    def write_run_summary(self, summary: Dict[str, Any]) -> None:
        """Persist the last engine run's stats (read by ``cache stats``).

        Never raises for an unwritable cache directory: the summary is kept
        in memory instead (and the store degrades, with its warning).  The
        in-memory copy is retained even after a successful write, so a
        later read that finds the on-disk file corrupted can still serve
        this process's last summary.
        """
        self._memory_summary = summary
        if self.degraded:
            return
        try:
            atomic_write_json(self.summary_path, summary)
        except OSError as exc:
            self._degrade(f"run summary write failed: {exc}")

    def read_run_summary(self) -> Optional[Dict[str, Any]]:
        """The last run's summary, or None.

        A missing file is normal (no run yet) and stays silent; a file that
        exists but does not parse to a summary dict — a truncated
        ``last_run.json``, say — degrades with a warning like every other
        store read path instead of crashing ``repro cache stats``.
        """
        try:
            text = self.summary_path.read_text()
        except OSError:
            return self._memory_summary
        try:
            summary = json.loads(text)
            if not isinstance(summary, dict):
                raise ValueError("run summary is not a JSON object")
        except ValueError:
            METRICS.inc("store.corrupt_summaries")
            TRACER.instant("store.corrupt-summary", cat="store")
            warnings.warn(
                f"ignoring corrupt run summary at {self.summary_path}; "
                "it will be overwritten by the next engine run",
                RuntimeWarning,
                stacklevel=3,
            )
            return self._memory_summary
        return summary


class KeyedCache:
    """In-process memo keyed by the engine's content-key scheme.

    This replaces ad-hoc module-level ``lru_cache``s: values are addressed
    by the same deterministic keys the persistent store uses (namespaced so
    different value kinds cannot collide), the cache is observable
    (hit/miss counters, ``len``) and explicitly clearable by tests.  A
    side table memoizes key derivation for hashable argument tuples so the
    hot path stays close to ``lru_cache`` speed.

    Key derivation for frozen-dataclass parts still costs a structural
    hash, which shows up when the same objects are looked up thousands of
    times per sweep (scheduler affinity, study references, solver hints).
    A second side table keyed by the argument *identities* short-circuits
    that: it holds a strong reference to the parts tuple, so the ids stay
    valid for as long as the entry lives, and an identity check on every
    element guards against id reuse after garbage collection.
    """

    _ID_MEMO_LIMIT = 8192

    def __init__(self, namespace: str):
        self.namespace = namespace
        self._values: Dict[str, Any] = {}
        self._key_memo: Dict[Tuple, str] = {}
        self._id_memo: Dict[Tuple[int, ...], Tuple[Tuple, str]] = {}
        self.hits = 0
        self.misses = 0

    def key_for(self, parts: Tuple) -> str:
        ids = tuple(map(id, parts))
        memoized = self._id_memo.get(ids)
        if memoized is not None and all(
            a is b for a, b in zip(memoized[0], parts)
        ):
            return memoized[1]
        try:
            key = self._key_memo[parts]
        except KeyError:
            key = content_key({"namespace": self.namespace, "parts": list(parts)})
            self._key_memo[parts] = key
        except TypeError:  # unhashable parts: derive without memoizing
            return content_key({"namespace": self.namespace, "parts": list(parts)})
        if len(self._id_memo) >= self._ID_MEMO_LIMIT:
            self._id_memo.clear()
        self._id_memo[ids] = (parts, key)
        return key

    def get(self, parts: Tuple, default: Any = None) -> Any:
        """Look up without computing; counts as a hit/miss like the memo."""
        key = self.key_for(parts)
        try:
            value = self._values[key]
        except KeyError:
            self.misses += 1
            if METRICS.enabled:
                METRICS.inc(f"keyed_cache.{self.namespace}.misses")
            return default
        self.hits += 1
        if METRICS.enabled:
            METRICS.inc(f"keyed_cache.{self.namespace}.hits")
        return value

    def put(self, parts: Tuple, value: Any) -> None:
        self._values[self.key_for(parts)] = value

    def get_or_compute(self, parts: Tuple, compute: Callable[[], Any]) -> Any:
        key = self.key_for(parts)
        try:
            value = self._values[key]
        except KeyError:
            self.misses += 1
            if METRICS.enabled:
                METRICS.inc(f"keyed_cache.{self.namespace}.misses")
            value = compute()
            self._values[key] = value
            return value
        self.hits += 1
        if METRICS.enabled:
            METRICS.inc(f"keyed_cache.{self.namespace}.hits")
        return value

    def clear(self) -> None:
        self._values.clear()
        self._key_memo.clear()
        self._id_memo.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._values)

"""Parallel execution of work units and the engine facade.

:class:`ParallelExecutor` maps work units over a worker pool; ``jobs=1``
short-circuits to a plain loop in the calling process — no pickling, no
pool — which is bit-identical to the pre-engine serial path.  Two pool
lifetimes (``pool=``):

* ``persistent`` (default) — a lazily started :class:`WorkerPool` that
  outlives ``map`` calls: workers keep imports, per-process study caches
  and solver warm-start state across calls and across serve-daemon jobs.
  Units dispatch one-at-a-time per worker and results stream back in
  completion order; a dying worker is respawned alone and its unit healed
  in the parent.
* ``per-call`` — the original ``ProcessPoolExecutor`` per map with chunked
  dispatch; a worker death (``BrokenProcessPool``) re-executes the lost
  chunk serially in the parent and resumes the rest on a fresh pool.

Failures are isolated per unit: every evaluation runs inside a guard that
retries with exponential backoff (``retries``/``backoff``), enforces an
optional per-unit wall-clock ``unit_timeout``, and on exhaustion returns a
structured :class:`~repro.engine.tasks.UnitFailure` in the unit's result
slot instead of poisoning its batch.

:class:`Engine` composes the executor with the persistent
:class:`~repro.engine.store.ResultStore`: look every unit up by content
key in one batched ``get_many``, compute only the misses (in parallel),
stream the results back to the store in deterministic submission order as
they complete (batched ``write_many`` flushes), and account for
everything — including failures, retries, broken pools and pool
lifecycle — in :class:`~repro.engine.stats.EngineStats`.
"""

import dataclasses
import datetime
import functools
import multiprocessing
import multiprocessing.connection
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Callable, Iterator, List, NamedTuple, Optional, Sequence

from repro.engine import faults
from repro.engine.stats import EngineStats
from repro.engine.store import ResultStore
from repro.obs import METRICS, TRACER, get_logger, observation_flags
from repro.engine.tasks import (
    SlabUnit,
    UnitFailure,
    WorkUnit,
    evaluate_work_unit,
    payload_from_result,
    result_from_payload,
)

#: Chunks per worker when auto-sizing dispatch: small enough to balance
#: load across heterogeneous unit costs, large enough to amortize IPC.
_CHUNKS_PER_WORKER = 4

#: Worker-pool lifetime modes: ``persistent`` keeps one warm pool for the
#: executor's lifetime (reused across ``execute`` calls and serve jobs);
#: ``per-call`` rebuilds a ``ProcessPoolExecutor`` for every map, the
#: pre-warm-pool behaviour.
POOL_MODES = ("persistent", "per-call")

#: Ceiling on a single backoff sleep, whatever the retry count.
_MAX_BACKOFF_SECONDS = 2.0


class UnitTimeoutError(Exception):
    """A unit exceeded the per-unit wall-clock budget."""


_LOG = get_logger("engine")

#: Process-wide once-flag: the timeout-fallback warning fires at most once
#: per process, however many units evaluate without an armable timeout.
_TIMEOUT_FALLBACK_WARNED = False


def _warn_timeout_fallback(seconds: float, reason: str) -> None:
    """Record (once) that a requested per-unit timeout cannot be enforced.

    ``SIGALRM`` only arms in the main thread of a process that has it; the
    serve daemon runs the engine inside a dispatcher thread, where
    ``signal.signal`` would raise ``ValueError``.  Rather than crash (or
    silently drop the budget), the unit runs without a timeout and the
    degradation is surfaced as a structured warning plus an
    ``engine.timeout_fallbacks`` counter and trace marker.
    """
    global _TIMEOUT_FALLBACK_WARNED
    METRICS.inc("engine.timeout_fallbacks")
    if _TIMEOUT_FALLBACK_WARNED:
        return
    _TIMEOUT_FALLBACK_WARNED = True
    TRACER.instant("unit.timeout-fallback", cat="unit", reason=reason)
    _LOG.warning(
        f"per-unit timeout ({seconds}s) cannot be enforced here ({reason}); "
        f"units will run without a wall-clock budget",
        reason=reason,
        timeout_seconds=seconds,
    )


class EngineFailureError(RuntimeError):
    """One or more units failed after every retry; carries the details."""

    def __init__(self, failures: Sequence[UnitFailure]):
        self.failures = list(failures)
        lines = "\n".join(f"  {f.describe()}" for f in self.failures[:10])
        if len(self.failures) > 10:
            lines += f"\n  ... and {len(self.failures) - 10} more"
        super().__init__(
            f"{len(self.failures)} work unit(s) failed after retries:\n{lines}"
        )


class UnitOutcome(NamedTuple):
    """One unit's guarded evaluation: result (or failure), cost, attempts.

    When observability is live, ``spans`` carries the trace events and
    ``metrics`` the drained metrics recorded while evaluating this unit —
    collected in the worker process and marshalled back to the parent.
    """

    value: object  # MixResult on success, UnitFailure on exhaustion
    seconds: float
    attempts: int
    spans: tuple = ()
    metrics: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return not isinstance(self.value, UnitFailure)


@contextmanager
def _deadline(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`UnitTimeoutError` if the block outlives ``seconds``.

    SIGALRM-based, so it only arms on platforms that have it and in the
    main thread (always true in pool workers).  Elsewhere — notably the
    serve daemon's dispatcher thread — a requested timeout degrades to
    no-timeout with a one-time structured warning rather than a crash.
    """
    if not seconds:
        yield
        return
    if not hasattr(signal, "SIGALRM"):
        _warn_timeout_fallback(seconds, "platform has no SIGALRM")
        yield
        return
    if threading.current_thread() is not threading.main_thread():
        _warn_timeout_fallback(seconds, "not in the main thread")
        yield
        return

    def _on_alarm(signum, frame):
        raise UnitTimeoutError(f"unit exceeded the {seconds}s per-unit timeout")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _guarded_evaluate(
    unit: WorkUnit,
    retries: int = 0,
    backoff: float = 0.05,
    timeout: Optional[float] = None,
    observe: tuple = (),
) -> UnitOutcome:
    """Worker entry point: evaluate one unit inside the failure guard.

    Never raises (short of ``KeyboardInterrupt``/``SystemExit``): after
    ``retries`` extra attempts with exponential backoff the exception is
    folded into a :class:`UnitFailure` carried in the outcome's value slot.

    ``observe`` names the collectors to run ("trace"/"metrics"); it is what
    makes observability work across processes — the parent pickles the
    flags into the guard, the worker enables its own (fresh) collectors,
    and everything recorded while evaluating the unit is drained into the
    outcome and marshalled back.  In the serial path the parent's own
    collectors are drained and re-absorbed, which is net-zero.
    """
    if timeout is not None:
        # A slab carries many points; its wall-clock budget scales with them.
        timeout = timeout * getattr(unit, "timeout_scale", 1)
    collect_trace = "trace" in observe
    collect_metrics = "metrics" in observe
    if collect_trace and not TRACER.enabled:
        TRACER.enable()
    if collect_metrics and not METRICS.enabled:
        METRICS.enable()
    mark = TRACER.mark() if collect_trace else 0

    def _finish(value, attempts_used) -> UnitOutcome:
        return UnitOutcome(
            value,
            time.perf_counter() - start,
            attempts_used,
            TRACER.drain(mark) if collect_trace else (),
            METRICS.drain_raw() if collect_metrics else None,
        )

    start = time.perf_counter()
    attempts = retries + 1
    error: Optional[BaseException] = None
    for attempt in range(1, attempts + 1):
        try:
            with _deadline(timeout):
                with TRACER.span(
                    "unit.evaluate",
                    cat="unit",
                    design=unit.design.name,
                    mix=list(unit.mix),
                    smt=unit.smt,
                    attempt=attempt,
                ):
                    faults.inject_unit_faults(unit)
                    result = evaluate_work_unit(unit)
            return _finish(result, attempt)
        except Exception as exc:  # per-unit isolation boundary
            error = exc
            if attempt < attempts:
                TRACER.instant(
                    "unit.retry",
                    cat="unit",
                    design=unit.design.name,
                    error=type(exc).__name__,
                    attempt=attempt,
                )
                METRICS.inc("engine.unit_retries")
                if backoff > 0:
                    time.sleep(
                        min(backoff * 2 ** (attempt - 1), _MAX_BACKOFF_SECONDS)
                    )
    failure = UnitFailure(
        content_key=unit.content_key,
        design_name=unit.design.name,
        mix=unit.mix,
        smt=unit.smt,
        error_type=type(error).__name__,
        message=str(error),
        attempts=attempts,
    )
    return _finish(failure, attempts)


def _pool_worker_main(conn) -> None:
    """Persistent pool worker: evaluate shipped units until told to stop.

    Each message is ``(task_id, unit, options, fault_spec)``; the reply is
    ``(task_id, outcome)``.  The fault spec rides along with every task
    because a persistent worker may have forked *before* the parent
    installed ``$REPRO_FAULT_SPEC`` (see :func:`faults.sync_spec`).  The
    loop runs in the worker's main thread, so SIGALRM unit timeouts arm
    exactly as they do in per-call pool workers.  A ``None`` message (or a
    closed pipe) is the shutdown signal.
    """
    faults.mark_worker_process()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        task_id, unit, options, fault_spec = message
        faults.sync_spec(fault_spec)
        outcome = _guarded_evaluate(unit, **options)
        try:
            conn.send((task_id, outcome))
        except OSError:
            break
    try:
        conn.close()
    except OSError:
        pass


class _PoolWorker:
    """One persistent worker process, its pipe, and its in-flight task."""

    __slots__ = ("process", "conn", "task")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        #: Index of the unit this worker is evaluating, or None when idle.
        self.task: Optional[int] = None


class WorkerPool:
    """Persistent worker processes with completion-order dispatch.

    Unlike the per-call ``ProcessPoolExecutor`` path, the pool outlives
    ``run`` calls: workers keep their imports, their per-process study
    cache (:mod:`repro.engine.tasks`) and the solver warm-start hints
    inside each study, so the second sweep — or the next serve-daemon
    job — skips interpreter startup and model construction entirely.

    Dispatch is one in-flight unit per worker over a dedicated duplex
    pipe; results surface in **completion order** through the caller's
    ``on_outcome`` callback, which is what lets store write-back, progress
    reporting and serve-side preemption overlap computation.  The ordered
    outcome list is still returned at the end.

    Health is checked per wait: a worker that dies mid-unit (a ``kill``
    fault, an OOM kill) is **respawned alone** — sibling workers and their
    in-flight units are untouched — and the lost unit re-runs in the
    parent via ``parent_guard``, mirroring the lost-chunk semantics of the
    per-call path (kill-type faults are worker-only, so the parent
    survives the very unit that killed the worker).
    """

    def __init__(self, jobs: int):
        self.jobs = jobs
        self._workers: List[_PoolWorker] = []
        #: Cold pool starts, runs served by a warm pool, single-worker
        #: respawns (mirrored into :class:`EngineStats` by the engine).
        self.starts = 0
        self.reuses = 0
        self.respawns = 0

    # -- lifecycle ------------------------------------------------------ #

    def _spawn(self) -> _PoolWorker:
        parent_conn, child_conn = multiprocessing.Pipe()
        process = multiprocessing.Process(
            target=_pool_worker_main, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        return _PoolWorker(process, parent_conn)

    def _ensure(self, wanted: int) -> None:
        wanted = min(wanted, self.jobs)
        if not self._workers:
            self.starts += 1
            TRACER.instant("pool.start", cat="engine", workers=wanted)
            METRICS.inc("engine.pool_starts")
        while len(self._workers) < wanted:
            self._workers.append(self._spawn())

    def _respawn(self, worker: _PoolWorker) -> None:
        self.respawns += 1
        TRACER.instant("pool.worker-respawn", cat="engine", pid=worker.process.pid)
        METRICS.inc("engine.worker_respawns")
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=1.0)
        if worker.process.is_alive():
            worker.process.terminate()
        self._workers[self._workers.index(worker)] = self._spawn()

    def pids(self) -> List[int]:
        """Live worker pids (stable across runs unless a worker died)."""
        return [w.process.pid for w in self._workers]

    def shutdown(self) -> None:
        """Stop every worker; the pool restarts lazily on the next run."""
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except OSError:
                pass
        for worker in self._workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers = []

    # -- dispatch -------------------------------------------------------- #

    def run(
        self,
        units: Sequence,
        options: dict,
        parent_guard: Callable,
        on_outcome: Optional[Callable] = None,
    ) -> List["UnitOutcome"]:
        """Evaluate ``units``; outcomes align with input, callbacks stream.

        ``options`` are the keyword arguments shipped into the worker-side
        :func:`_guarded_evaluate`; ``parent_guard`` evaluates one unit in
        this process (used to heal the unit a dying worker dropped);
        ``on_outcome(index, outcome)`` fires once per unit in completion
        order.
        """
        n = len(units)
        outcomes: List[Optional[UnitOutcome]] = [None] * n
        if self._workers:
            self.reuses += 1
            METRICS.inc("engine.pool_reuses")
        self._ensure(n)
        spec = faults.current_spec()
        state = {"done": 0, "next": 0}

        def finish(index: int, outcome: UnitOutcome) -> None:
            outcomes[index] = outcome
            state["done"] += 1
            if on_outcome is not None:
                on_outcome(index, outcome)

        def handle_death(worker: _PoolWorker) -> None:
            index = worker.task
            worker.task = None
            self._respawn(worker)
            if index is not None:
                finish(index, parent_guard(units[index]))

        while state["done"] < n:
            for worker in list(self._workers):
                if worker.task is None and state["next"] < n:
                    index = state["next"]
                    state["next"] += 1
                    worker.task = index
                    try:
                        worker.conn.send((index, units[index], options, spec))
                    except OSError:
                        handle_death(worker)
            busy = [w for w in self._workers if w.task is not None]
            if not busy:
                continue
            ready = set(
                multiprocessing.connection.wait(
                    [w.conn for w in busy] + [w.process.sentinel for w in busy]
                )
            )
            for worker in busy:
                died = worker.process.sentinel in ready
                # A worker may die *after* sending its result: drain the
                # pipe first, and only treat an unreadable pipe as a death.
                if worker.conn in ready or (died and worker.conn.poll()):
                    try:
                        task_id, outcome = worker.conn.recv()
                    except (EOFError, OSError):
                        handle_death(worker)
                        continue
                    worker.task = None
                    finish(task_id, outcome)
                elif died:
                    handle_death(worker)
        return outcomes


class ParallelExecutor:
    """Maps work units to outcomes, preserving submission order."""

    def __init__(
        self,
        jobs: int = 1,
        chunksize: Optional[int] = None,
        retries: int = 0,
        backoff: float = 0.05,
        unit_timeout: Optional[float] = None,
        pool: str = "persistent",
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        if unit_timeout is not None and unit_timeout <= 0:
            raise ValueError(f"unit_timeout must be > 0, got {unit_timeout}")
        if pool not in POOL_MODES:
            raise ValueError(f"pool must be one of {POOL_MODES}, got {pool!r}")
        self.jobs = jobs
        self.chunksize = chunksize
        self.retries = retries
        self.backoff = backoff
        self.unit_timeout = unit_timeout
        #: Pool lifetime mode ("persistent" or "per-call").
        self.pool = pool
        self._pool: Optional[WorkerPool] = None
        #: Worker crashes survived so far (``BrokenProcessPool`` recoveries).
        self.broken_pools = 0

    # -- persistent-pool surface ---------------------------------------- #

    @property
    def pool_starts(self) -> int:
        return self._pool.starts if self._pool is not None else 0

    @property
    def pool_reuses(self) -> int:
        return self._pool.reuses if self._pool is not None else 0

    @property
    def worker_respawns(self) -> int:
        return self._pool.respawns if self._pool is not None else 0

    def pool_pids(self) -> List[int]:
        """Live persistent-worker pids ([] when no pool is warm)."""
        return self._pool.pids() if self._pool is not None else []

    def shutdown(self) -> None:
        """Tear down the persistent pool; the executor stays usable (a
        later map lazily starts a fresh pool)."""
        if self._pool is not None:
            self._pool.shutdown()

    def _guard(self, observe: tuple = ()):
        return functools.partial(
            _guarded_evaluate,
            retries=self.retries,
            backoff=self.backoff,
            timeout=self.unit_timeout,
            observe=observe,
        )

    def map(
        self,
        units: Sequence[WorkUnit],
        observe: tuple = (),
        progress=None,
        on_result=None,
    ) -> List[UnitOutcome]:
        """One :class:`UnitOutcome` per unit, in submission order.

        Never raises for a unit-level failure (the outcome carries a
        :class:`UnitFailure` instead), and survives worker deaths: the
        persistent pool respawns the dead worker alone and heals its unit
        in the parent; the per-call pool re-executes the lost chunk
        serially and resumes the rest on a fresh ``ProcessPoolExecutor``.

        ``observe`` is forwarded into the worker guard (see
        :func:`_guarded_evaluate`).  ``on_result(index, outcome)``, when
        given, fires once per unit as its outcome arrives — in submission
        order on the serial and per-call paths, in **completion order** on
        the persistent pool — always before ``progress(done_count)`` for
        the same unit.  The returned list is in submission order either
        way.
        """
        units = list(units)
        guard = self._guard(observe)
        if self.jobs == 1 or len(units) <= 1:
            # Serial fallback: same process, same code path as before the
            # engine existed — bit-identical by construction.
            outcomes = []
            for index, unit in enumerate(units):
                outcome = guard(unit)
                outcomes.append(outcome)
                if on_result is not None:
                    on_result(index, outcome)
                if progress is not None:
                    progress(len(outcomes))
            return outcomes
        if self.pool == "persistent":
            if self._pool is None:
                self._pool = WorkerPool(self.jobs)
            options = dict(
                retries=self.retries,
                backoff=self.backoff,
                timeout=self.unit_timeout,
                observe=observe,
            )
            done = [0]

            def deliver(index: int, outcome: UnitOutcome) -> None:
                if on_result is not None:
                    on_result(index, outcome)
                done[0] += 1
                if progress is not None:
                    progress(done[0])

            return self._pool.run(units, options, guard, deliver)
        outcomes: List[UnitOutcome] = []
        remaining = units
        while remaining:
            workers = min(self.jobs, len(remaining))
            chunksize = self.chunksize or max(
                1, -(-len(remaining) // (workers * _CHUNKS_PER_WORKER))
            )
            collected = 0
            try:
                with ProcessPoolExecutor(
                    max_workers=workers, initializer=faults.mark_worker_process
                ) as pool:
                    for outcome in pool.map(guard, remaining, chunksize=chunksize):
                        index = len(outcomes)
                        outcomes.append(outcome)
                        collected += 1
                        if on_result is not None:
                            on_result(index, outcome)
                        if progress is not None:
                            progress(len(outcomes))
                remaining = []
            except BrokenProcessPool:
                # A worker died mid-batch.  Results are yielded in chunk
                # order, so everything past `collected` is unaccounted for:
                # run the first lost chunk serially here (kill-type faults
                # are worker-only, so the parent survives) and push the
                # rest back through a fresh pool.
                self.broken_pools += 1
                TRACER.instant(
                    "pool.broken", cat="engine", lost_units=len(remaining) - collected
                )
                METRICS.inc("engine.broken_pools")
                remaining = remaining[collected:]
                lost, remaining = remaining[:chunksize], remaining[chunksize:]
                for unit in lost:
                    index = len(outcomes)
                    outcome = guard(unit)
                    outcomes.append(outcome)
                    if on_result is not None:
                        on_result(index, outcome)
                    if progress is not None:
                        progress(len(outcomes))
        return outcomes


class _WritebackStream:
    """Reorders completion-order outcomes into deterministic store writes.

    Outcomes stream in as workers finish — possibly out of submission
    order — but stored bytes must stay bit-identical to the serial path,
    so writes are buffered per miss position and flushed as contiguous
    runs (one :meth:`ResultStore.write_many` batch each) whenever the
    submission-order cursor advances.  Failures advance the cursor without
    writing; healed units are written by the engine's final write-back
    pass.  Flush time spent inside the compute phase is tracked so the
    engine can re-attribute it to the write-back phase.
    """

    #: Records accumulated before a streamed flush; leftovers below the
    #: threshold when compute ends are written by the engine's tail pass.
    FLUSH_RECORDS = 16

    def __init__(self, store: Optional[ResultStore], stats: EngineStats):
        self.store = store
        self.stats = stats
        self._pending: dict = {}
        self._cursor = 0
        self._batch: list = []
        self._batch_positions: list = []
        #: Miss positions whose results have already been persisted.
        self.written = set()
        #: Seconds spent flushing while the compute phase was open.
        self.inline_seconds = 0.0

    def offer(self, pos: int, key: str, outcome: UnitOutcome) -> None:
        if self.store is None:
            return
        start = time.perf_counter()
        if outcome.ok:
            self._pending[pos] = (key, payload_from_result(outcome.value))
        else:
            self._pending[pos] = None
        while self._cursor in self._pending:
            item = self._pending.pop(self._cursor)
            if item is not None:
                self._batch.append(item)
                self._batch_positions.append(self._cursor)
            self._cursor += 1
        if len(self._batch) >= self.FLUSH_RECORDS:
            self.store.write_many(self._batch)
            self.stats.writeback_batches.observe(len(self._batch))
            self.written.update(self._batch_positions)
            self._batch = []
            self._batch_positions = []
        self.inline_seconds += time.perf_counter() - start


class Engine:
    """Store-backed, parallel, fault-tolerant evaluator of work units."""

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        chunksize: Optional[int] = None,
        retries: int = 0,
        backoff: float = 0.05,
        unit_timeout: Optional[float] = None,
        slab_size: Optional[int] = None,
        pool: str = "persistent",
    ):
        if slab_size is not None and slab_size < 1:
            raise ValueError(f"slab_size must be >= 1, got {slab_size}")
        #: Points per :class:`~repro.engine.tasks.SlabUnit` when dispatching
        #: store misses to workers; ``None`` keeps per-point dispatch.
        self.slab_size = slab_size
        self.executor = ParallelExecutor(
            jobs=jobs,
            chunksize=chunksize,
            retries=retries,
            backoff=backoff,
            unit_timeout=unit_timeout,
            pool=pool,
        )
        self.store = store
        self.stats = EngineStats(jobs=jobs)
        #: Optional :class:`repro.obs.ProgressLine` driven during compute.
        self.progress = None
        self._broken_pools_seen = 0
        self._last_recovered = 0

    @property
    def jobs(self) -> int:
        return self.executor.jobs

    @property
    def pool(self) -> str:
        return self.executor.pool

    def shutdown(self) -> None:
        """Stop the persistent worker pool (if warm); the engine stays
        usable and restarts the pool lazily on the next evaluate."""
        self.executor.shutdown()

    def evaluate(
        self, units: Sequence[WorkUnit], on_failure: str = "raise"
    ) -> List[object]:
        """Evaluate ``units``; results align index-for-index with input.

        Store hits skip computation entirely; misses are computed through
        the executor and written back.  A corrupt or malformed record is
        deleted on detection and recomputed.

        A unit that keeps failing after the executor's retries gets one
        last serial attempt in this process (workers can die or be
        environmentally broken in ways the parent is not); if that fails
        too, behaviour follows ``on_failure``:

        * ``"raise"`` (default) — raise :class:`EngineFailureError` *after*
          writing every successful result back to the store, so completed
          work is never lost;
        * ``"return"`` — put the :class:`UnitFailure` in the unit's result
          slot and let the caller decide.
        """
        if on_failure not in ("raise", "return"):
            raise ValueError(
                f"on_failure must be 'raise' or 'return', got {on_failure!r}"
            )
        units = list(units)
        results: List[Optional[object]] = [None] * len(units)
        misses: List[int] = []

        with self.stats.phase("lookup"):
            if self.store is not None and units:
                payloads = self.store.get_many([u.content_key for u in units])
            else:
                payloads = [None] * len(units)
            for i, (unit, payload) in enumerate(zip(units, payloads)):
                if payload is not None:
                    try:
                        results[i] = result_from_payload(payload)
                        continue
                    except (KeyError, TypeError, ValueError):
                        # Bad payload inside a well-formed record: delete it
                        # now so the "deleted and recomputed" contract holds
                        # even if the recompute below fails.
                        self.store.stats.corrupt += 1
                        self.store.delete(unit.content_key)
                misses.append(i)

        busy = 0.0
        retried = 0
        retry_attempts = 0
        failures: List[UnitFailure] = []
        observe = observation_flags()
        if misses:
            reporter = self.progress
            if reporter is not None:
                reporter.begin(len(misses))
            miss_units = [units[i] for i in misses]
            # Write-back streams alongside computation: each outcome is
            # offered as it completes and flushed in submission order, so
            # store I/O overlaps compute without perturbing stored bytes.
            stream = _WritebackStream(self.store, self.stats)

            def absorb(pos: int, outcome: UnitOutcome) -> None:
                stream.offer(pos, miss_units[pos].content_key, outcome)

            try:
                with self.stats.phase("compute"):
                    progress = None if reporter is None else reporter.update
                    if self.slab_size and len(miss_units) > 1:
                        outcomes = self._map_slabs(
                            miss_units,
                            observe=observe,
                            progress=progress,
                            on_result=absorb,
                        )
                    else:
                        outcomes = self.executor.map(
                            miss_units,
                            observe=observe,
                            progress=progress,
                            on_result=absorb,
                        )
            finally:
                if reporter is not None:
                    reporter.finish()
            if stream.inline_seconds:
                # Store flushes ran inside the compute wall clock; bill
                # them to write-back so utilization stays honest.
                self.stats.phase_seconds["compute"] = (
                    self.stats.phase_seconds.get("compute", 0.0)
                    - stream.inline_seconds
                )
                self.stats.phase_seconds["write-back"] = (
                    self.stats.phase_seconds.get("write-back", 0.0)
                    + stream.inline_seconds
                )
            if self.executor.jobs > 1 and not all(o.ok for o in outcomes):
                outcomes = self._recover_serially(miss_units, outcomes, observe)
            with self.stats.phase("write-back"):
                tail = []
                for pos, (i, outcome) in enumerate(zip(misses, outcomes)):
                    if outcome.spans:
                        TRACER.absorb(outcome.spans)
                    if outcome.metrics:
                        METRICS.merge_raw(outcome.metrics)
                    self.stats.unit_seconds.observe(outcome.seconds)
                    results[i] = outcome.value
                    busy += outcome.seconds
                    if not outcome.ok:
                        failures.append(outcome.value)
                        continue
                    if outcome.attempts > 1:
                        retried += 1
                        retry_attempts += outcome.attempts - 1
                    if self.store is not None and pos not in stream.written:
                        # Healed (or never-streamed) results land here.
                        tail.append(
                            (units[i].content_key, payload_from_result(outcome.value))
                        )
                if tail:
                    self.store.write_many(tail)
                    self.stats.writeback_batches.observe(len(tail))

        recovered = self._last_recovered
        self._last_recovered = 0
        broken = self.executor.broken_pools - self._broken_pools_seen
        self._broken_pools_seen = self.executor.broken_pools
        self.stats.record_batch(
            total=len(units),
            hits=len(units) - len(misses),
            computed=len(misses) - len(failures),
            busy=busy,
            failed=len(failures),
            retried=retried,
            retry_attempts=retry_attempts,
            recovered=recovered,
            broken_pools=broken,
        )
        self.stats.record_failures(failures)
        # Pool lifecycle counters are lifetime totals on the executor;
        # mirror them rather than accumulate deltas.
        self.stats.pool_starts = self.executor.pool_starts
        self.stats.pool_reuses = self.executor.pool_reuses
        self.stats.worker_respawns = self.executor.worker_respawns
        if METRICS.enabled:
            METRICS.inc("engine.units_total", len(units))
            METRICS.inc("engine.store_hits", len(units) - len(misses))
            METRICS.inc("engine.units_computed", len(misses) - len(failures))
            if failures:
                METRICS.inc("engine.units_failed", len(failures))
            if recovered:
                METRICS.inc("engine.units_recovered", recovered)
        if failures and on_failure == "raise":
            raise EngineFailureError(failures)
        return results

    def _map_slabs(
        self,
        units: Sequence[WorkUnit],
        observe: tuple = (),
        progress=None,
        on_result=None,
    ) -> List[UnitOutcome]:
        """Dispatch units as slabs, flattened back to per-unit outcomes.

        Units are grouped by (design, SMT, reference uncore) — a slab must
        share a chip model — and cut into :attr:`slab_size` pieces.  Each
        slab evaluates through the vectorized batch solver in one worker
        call, so the ~5 ms grid points stop being dominated by pickling and
        IPC.  A slab that fails after retries fans out into one
        :class:`UnitFailure` per member point, which keeps the engine's
        serial recovery and ``on_failure`` semantics exactly as in
        per-point dispatch.

        For batches smaller than ``slab_size x jobs`` the configured size
        would leave workers idle (an adaptive explorer's low-fidelity rung
        is a few dozen points; at ``slab_size=32`` they all land in one
        slab on one worker), so the effective size shrinks to spread the
        batch across the pool.  Slab partitioning never affects values —
        the batch solver is bit-identical piecewise — so this is purely a
        latency choice.
        """
        slab_size = self.slab_size
        jobs = self.executor.jobs
        if jobs > 1:
            spread = -(-len(units) // jobs)  # ceil division
            slab_size = max(1, min(slab_size, spread))
        groups: dict = {}
        for idx, unit in enumerate(units):
            key = (unit.design, unit.smt, unit.reference_uncore)
            groups.setdefault(key, []).append(idx)
        slabs: List[SlabUnit] = []
        members: List[List[int]] = []
        for idxs in groups.values():
            for start in range(0, len(idxs), slab_size):
                piece = idxs[start : start + slab_size]
                first = units[piece[0]]
                slabs.append(
                    SlabUnit(
                        design=first.design,
                        mixes=tuple(units[i].mix for i in piece),
                        smt=first.smt,
                        reference_uncore=first.reference_uncore,
                    )
                )
                members.append(piece)
        TRACER.instant(
            "engine.slab-dispatch", cat="engine", slabs=len(slabs), units=len(units)
        )
        if METRICS.enabled:
            METRICS.inc("engine.slabs_dispatched", len(slabs))

        outcomes: List[Optional[UnitOutcome]] = [None] * len(units)
        done_units = [0]

        def flatten(slab_index: int, outcome: UnitOutcome) -> None:
            """Fan one slab outcome out into its members' result slots.

            Runs as each slab completes (possibly out of submission order
            on the persistent pool), so per-unit streaming write-back and
            progress see units the moment their slab lands.
            """
            piece = members[slab_index]
            per_point = outcome.seconds / len(piece)
            for j, i in enumerate(piece):
                spans = outcome.spans if j == 0 else ()
                metrics = outcome.metrics if j == 0 else None
                if outcome.ok:
                    value = outcome.value[j]
                else:
                    unit = units[i]
                    value = UnitFailure(
                        content_key=unit.content_key,
                        design_name=unit.design.name,
                        mix=unit.mix,
                        smt=unit.smt,
                        error_type=outcome.value.error_type,
                        message=outcome.value.message,
                        attempts=outcome.value.attempts,
                    )
                unit_outcome = UnitOutcome(
                    value, per_point, outcome.attempts, spans, metrics
                )
                outcomes[i] = unit_outcome
                if on_result is not None:
                    on_result(i, unit_outcome)
            done_units[0] += len(piece)

        def slab_progress(_completed_slabs: int) -> None:
            # flatten has already run for this slab (on_result fires
            # before progress), so the unit tally is correct even when
            # slabs complete out of submission order.
            if progress is not None:
                progress(done_units[0])

        self.executor.map(
            slabs, observe=observe, progress=slab_progress, on_result=flatten
        )
        return outcomes

    def _recover_serially(
        self,
        units: Sequence[WorkUnit],
        outcomes: List[UnitOutcome],
        observe: tuple = (),
    ) -> List[UnitOutcome]:
        """One last in-parent attempt for units that failed in the pool.

        Worker-environment failures (a dead process, an injected
        worker-only fault, a transient resource error) often do not
        reproduce in the parent; a genuinely broken unit fails again and
        keeps its :class:`UnitFailure` with the attempt count accumulated.
        """
        recovered = 0
        with self.stats.phase("recover"):  # in-parent healing pass
            healed: List[UnitOutcome] = []
            for unit, outcome in zip(units, outcomes):
                if outcome.ok:
                    healed.append(outcome)
                    continue
                # Keep what the failed worker attempt recorded, then retry
                # here; the healed outcome carries only the retry's events.
                if outcome.spans:
                    TRACER.absorb(outcome.spans)
                if outcome.metrics:
                    METRICS.merge_raw(outcome.metrics)
                TRACER.instant(
                    "unit.recovery", cat="engine", design=unit.design.name
                )
                retry = _guarded_evaluate(
                    unit, timeout=self.executor.unit_timeout, observe=observe
                )
                attempts = outcome.attempts + retry.attempts
                seconds = outcome.seconds + retry.seconds
                if retry.ok:
                    recovered += 1
                    healed.append(
                        UnitOutcome(
                            retry.value, seconds, attempts, retry.spans, retry.metrics
                        )
                    )
                else:
                    failure = dataclasses.replace(retry.value, attempts=attempts)
                    healed.append(
                        UnitOutcome(
                            failure, seconds, attempts, retry.spans, retry.metrics
                        )
                    )
        self._last_recovered += recovered
        return healed

    def run_summary(self) -> dict:
        """This engine's lifetime stats plus store accounting."""
        summary = {
            "finished_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
            **self.stats.as_dict(),
        }
        if self.store is not None:
            summary["store"] = self.store.status_dict()
        if METRICS.enabled:
            summary["metrics"] = METRICS.snapshot()
        return summary

    def write_summary(self) -> None:
        """Persist the run summary next to the store (``cache stats`` reads it)."""
        if self.store is not None:
            self.store.write_run_summary(self.run_summary())

"""Parallel execution of work units and the engine facade.

:class:`ParallelExecutor` maps work units over a process pool with chunked
dispatch and *ordered* result collection; ``jobs=1`` short-circuits to a
plain loop in the calling process — no pickling, no pool — which is
bit-identical to the pre-engine serial path.

:class:`Engine` composes the executor with the persistent
:class:`~repro.engine.store.ResultStore`: look every unit up by content
key, compute only the misses (in parallel), write the new results back
atomically, and account for everything in
:class:`~repro.engine.stats.EngineStats`.
"""

import datetime
import time
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.engine.stats import EngineStats
from repro.engine.store import ResultStore
from repro.engine.tasks import (
    WorkUnit,
    evaluate_work_unit,
    payload_from_result,
    result_from_payload,
)

#: Chunks per worker when auto-sizing dispatch: small enough to balance
#: load across heterogeneous unit costs, large enough to amortize IPC.
_CHUNKS_PER_WORKER = 4


def _timed_evaluate(unit: WorkUnit):
    """Worker entry point: evaluate one unit and report its busy time."""
    start = time.perf_counter()
    result = evaluate_work_unit(unit)
    return result, time.perf_counter() - start


class ParallelExecutor:
    """Maps work units to results, preserving submission order."""

    def __init__(self, jobs: int = 1, chunksize: Optional[int] = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.jobs = jobs
        self.chunksize = chunksize

    def map(self, units: Sequence[WorkUnit]) -> List[Tuple[object, float]]:
        """(result, busy-seconds) per unit, in submission order."""
        if self.jobs == 1 or len(units) <= 1:
            # Serial fallback: same process, same code path as before the
            # engine existed — bit-identical by construction.
            return [_timed_evaluate(unit) for unit in units]
        workers = min(self.jobs, len(units))
        chunksize = self.chunksize or max(
            1, -(-len(units) // (workers * _CHUNKS_PER_WORKER))
        )
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_timed_evaluate, units, chunksize=chunksize))


class Engine:
    """Store-backed, parallel evaluator of work units."""

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        chunksize: Optional[int] = None,
    ):
        self.executor = ParallelExecutor(jobs=jobs, chunksize=chunksize)
        self.store = store
        self.stats = EngineStats(jobs=jobs)

    @property
    def jobs(self) -> int:
        return self.executor.jobs

    def evaluate(self, units: Sequence[WorkUnit]) -> List[object]:
        """Evaluate ``units``; results align index-for-index with input.

        Store hits skip computation entirely; misses are computed through
        the executor and written back.  A corrupt or malformed record is
        treated as a miss and overwritten with a fresh result.
        """
        units = list(units)
        results: List[Optional[object]] = [None] * len(units)
        misses: List[int] = []

        with self.stats.phase("lookup"):
            for i, unit in enumerate(units):
                payload = self.store.get(unit.content_key) if self.store else None
                if payload is not None:
                    try:
                        results[i] = result_from_payload(payload)
                        continue
                    except (KeyError, TypeError, ValueError):
                        self.store.stats.corrupt += 1
                misses.append(i)

        busy = 0.0
        if misses:
            with self.stats.phase("compute"):
                computed = self.executor.map([units[i] for i in misses])
            with self.stats.phase("write-back"):
                for i, (result, seconds) in zip(misses, computed):
                    results[i] = result
                    busy += seconds
                    if self.store is not None:
                        self.store.put(
                            units[i].content_key, payload_from_result(result)
                        )

        self.stats.record_batch(
            total=len(units),
            hits=len(units) - len(misses),
            computed=len(misses),
            busy=busy,
        )
        return results

    def run_summary(self) -> dict:
        """This engine's lifetime stats plus store accounting."""
        summary = {
            "finished_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
            **self.stats.as_dict(),
        }
        if self.store is not None:
            summary["store"] = self.store.stats.as_dict()
        return summary

    def write_summary(self) -> None:
        """Persist the run summary next to the store (``cache stats`` reads it)."""
        if self.store is not None:
            self.store.write_run_summary(self.run_summary())

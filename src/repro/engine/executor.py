"""Parallel execution of work units and the engine facade.

:class:`ParallelExecutor` maps work units over a process pool with chunked
dispatch and *ordered* result collection; ``jobs=1`` short-circuits to a
plain loop in the calling process — no pickling, no pool — which is
bit-identical to the pre-engine serial path.

Failures are isolated per unit: every evaluation runs inside a guard that
retries with exponential backoff (``retries``/``backoff``), enforces an
optional per-unit wall-clock ``unit_timeout``, and on exhaustion returns a
structured :class:`~repro.engine.tasks.UnitFailure` in the unit's result
slot instead of poisoning its whole chunk.  A worker process dying
(``BrokenProcessPool``) re-executes the lost chunk serially in the parent
and resumes the rest on a fresh pool.

:class:`Engine` composes the executor with the persistent
:class:`~repro.engine.store.ResultStore`: look every unit up by content
key, compute only the misses (in parallel), write the new results back
atomically, and account for everything — including failures, retries and
broken pools — in :class:`~repro.engine.stats.EngineStats`.
"""

import dataclasses
import datetime
import functools
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Iterator, List, NamedTuple, Optional, Sequence

from repro.engine import faults
from repro.engine.stats import EngineStats
from repro.engine.store import ResultStore
from repro.obs import METRICS, TRACER, get_logger, observation_flags
from repro.engine.tasks import (
    SlabUnit,
    UnitFailure,
    WorkUnit,
    evaluate_work_unit,
    payload_from_result,
    result_from_payload,
)

#: Chunks per worker when auto-sizing dispatch: small enough to balance
#: load across heterogeneous unit costs, large enough to amortize IPC.
_CHUNKS_PER_WORKER = 4

#: Ceiling on a single backoff sleep, whatever the retry count.
_MAX_BACKOFF_SECONDS = 2.0


class UnitTimeoutError(Exception):
    """A unit exceeded the per-unit wall-clock budget."""


_LOG = get_logger("engine")

#: Process-wide once-flag: the timeout-fallback warning fires at most once
#: per process, however many units evaluate without an armable timeout.
_TIMEOUT_FALLBACK_WARNED = False


def _warn_timeout_fallback(seconds: float, reason: str) -> None:
    """Record (once) that a requested per-unit timeout cannot be enforced.

    ``SIGALRM`` only arms in the main thread of a process that has it; the
    serve daemon runs the engine inside a dispatcher thread, where
    ``signal.signal`` would raise ``ValueError``.  Rather than crash (or
    silently drop the budget), the unit runs without a timeout and the
    degradation is surfaced as a structured warning plus an
    ``engine.timeout_fallbacks`` counter and trace marker.
    """
    global _TIMEOUT_FALLBACK_WARNED
    METRICS.inc("engine.timeout_fallbacks")
    if _TIMEOUT_FALLBACK_WARNED:
        return
    _TIMEOUT_FALLBACK_WARNED = True
    TRACER.instant("unit.timeout-fallback", cat="unit", reason=reason)
    _LOG.warning(
        f"per-unit timeout ({seconds}s) cannot be enforced here ({reason}); "
        f"units will run without a wall-clock budget",
        reason=reason,
        timeout_seconds=seconds,
    )


class EngineFailureError(RuntimeError):
    """One or more units failed after every retry; carries the details."""

    def __init__(self, failures: Sequence[UnitFailure]):
        self.failures = list(failures)
        lines = "\n".join(f"  {f.describe()}" for f in self.failures[:10])
        if len(self.failures) > 10:
            lines += f"\n  ... and {len(self.failures) - 10} more"
        super().__init__(
            f"{len(self.failures)} work unit(s) failed after retries:\n{lines}"
        )


class UnitOutcome(NamedTuple):
    """One unit's guarded evaluation: result (or failure), cost, attempts.

    When observability is live, ``spans`` carries the trace events and
    ``metrics`` the drained metrics recorded while evaluating this unit —
    collected in the worker process and marshalled back to the parent.
    """

    value: object  # MixResult on success, UnitFailure on exhaustion
    seconds: float
    attempts: int
    spans: tuple = ()
    metrics: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return not isinstance(self.value, UnitFailure)


@contextmanager
def _deadline(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`UnitTimeoutError` if the block outlives ``seconds``.

    SIGALRM-based, so it only arms on platforms that have it and in the
    main thread (always true in pool workers).  Elsewhere — notably the
    serve daemon's dispatcher thread — a requested timeout degrades to
    no-timeout with a one-time structured warning rather than a crash.
    """
    if not seconds:
        yield
        return
    if not hasattr(signal, "SIGALRM"):
        _warn_timeout_fallback(seconds, "platform has no SIGALRM")
        yield
        return
    if threading.current_thread() is not threading.main_thread():
        _warn_timeout_fallback(seconds, "not in the main thread")
        yield
        return

    def _on_alarm(signum, frame):
        raise UnitTimeoutError(f"unit exceeded the {seconds}s per-unit timeout")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _guarded_evaluate(
    unit: WorkUnit,
    retries: int = 0,
    backoff: float = 0.05,
    timeout: Optional[float] = None,
    observe: tuple = (),
) -> UnitOutcome:
    """Worker entry point: evaluate one unit inside the failure guard.

    Never raises (short of ``KeyboardInterrupt``/``SystemExit``): after
    ``retries`` extra attempts with exponential backoff the exception is
    folded into a :class:`UnitFailure` carried in the outcome's value slot.

    ``observe`` names the collectors to run ("trace"/"metrics"); it is what
    makes observability work across processes — the parent pickles the
    flags into the guard, the worker enables its own (fresh) collectors,
    and everything recorded while evaluating the unit is drained into the
    outcome and marshalled back.  In the serial path the parent's own
    collectors are drained and re-absorbed, which is net-zero.
    """
    if timeout is not None:
        # A slab carries many points; its wall-clock budget scales with them.
        timeout = timeout * getattr(unit, "timeout_scale", 1)
    collect_trace = "trace" in observe
    collect_metrics = "metrics" in observe
    if collect_trace and not TRACER.enabled:
        TRACER.enable()
    if collect_metrics and not METRICS.enabled:
        METRICS.enable()
    mark = TRACER.mark() if collect_trace else 0

    def _finish(value, attempts_used) -> UnitOutcome:
        return UnitOutcome(
            value,
            time.perf_counter() - start,
            attempts_used,
            TRACER.drain(mark) if collect_trace else (),
            METRICS.drain_raw() if collect_metrics else None,
        )

    start = time.perf_counter()
    attempts = retries + 1
    error: Optional[BaseException] = None
    for attempt in range(1, attempts + 1):
        try:
            with _deadline(timeout):
                with TRACER.span(
                    "unit.evaluate",
                    cat="unit",
                    design=unit.design.name,
                    mix=list(unit.mix),
                    smt=unit.smt,
                    attempt=attempt,
                ):
                    faults.inject_unit_faults(unit)
                    result = evaluate_work_unit(unit)
            return _finish(result, attempt)
        except Exception as exc:  # per-unit isolation boundary
            error = exc
            if attempt < attempts:
                TRACER.instant(
                    "unit.retry",
                    cat="unit",
                    design=unit.design.name,
                    error=type(exc).__name__,
                    attempt=attempt,
                )
                METRICS.inc("engine.unit_retries")
                if backoff > 0:
                    time.sleep(
                        min(backoff * 2 ** (attempt - 1), _MAX_BACKOFF_SECONDS)
                    )
    failure = UnitFailure(
        content_key=unit.content_key,
        design_name=unit.design.name,
        mix=unit.mix,
        smt=unit.smt,
        error_type=type(error).__name__,
        message=str(error),
        attempts=attempts,
    )
    return _finish(failure, attempts)


class ParallelExecutor:
    """Maps work units to outcomes, preserving submission order."""

    def __init__(
        self,
        jobs: int = 1,
        chunksize: Optional[int] = None,
        retries: int = 0,
        backoff: float = 0.05,
        unit_timeout: Optional[float] = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        if unit_timeout is not None and unit_timeout <= 0:
            raise ValueError(f"unit_timeout must be > 0, got {unit_timeout}")
        self.jobs = jobs
        self.chunksize = chunksize
        self.retries = retries
        self.backoff = backoff
        self.unit_timeout = unit_timeout
        #: Worker crashes survived so far (``BrokenProcessPool`` recoveries).
        self.broken_pools = 0

    def _guard(self, observe: tuple = ()):
        return functools.partial(
            _guarded_evaluate,
            retries=self.retries,
            backoff=self.backoff,
            timeout=self.unit_timeout,
            observe=observe,
        )

    def map(
        self,
        units: Sequence[WorkUnit],
        observe: tuple = (),
        progress=None,
    ) -> List[UnitOutcome]:
        """One :class:`UnitOutcome` per unit, in submission order.

        Never raises for a unit-level failure (the outcome carries a
        :class:`UnitFailure` instead), and survives worker deaths: when the
        pool breaks, the lost chunk is re-executed serially in the parent
        process and the remaining units resume on a fresh pool.

        ``observe`` is forwarded into the worker guard (see
        :func:`_guarded_evaluate`); ``progress``, when given, is called
        with the number of completed units after each outcome arrives.
        """
        units = list(units)
        guard = self._guard(observe)
        if self.jobs == 1 or len(units) <= 1:
            # Serial fallback: same process, same code path as before the
            # engine existed — bit-identical by construction.
            outcomes = []
            for unit in units:
                outcomes.append(guard(unit))
                if progress is not None:
                    progress(len(outcomes))
            return outcomes
        outcomes: List[UnitOutcome] = []
        remaining = units
        while remaining:
            workers = min(self.jobs, len(remaining))
            chunksize = self.chunksize or max(
                1, -(-len(remaining) // (workers * _CHUNKS_PER_WORKER))
            )
            collected = 0
            try:
                with ProcessPoolExecutor(
                    max_workers=workers, initializer=faults.mark_worker_process
                ) as pool:
                    for outcome in pool.map(guard, remaining, chunksize=chunksize):
                        outcomes.append(outcome)
                        collected += 1
                        if progress is not None:
                            progress(len(outcomes))
                remaining = []
            except BrokenProcessPool:
                # A worker died mid-batch.  Results are yielded in chunk
                # order, so everything past `collected` is unaccounted for:
                # run the first lost chunk serially here (kill-type faults
                # are worker-only, so the parent survives) and push the
                # rest back through a fresh pool.
                self.broken_pools += 1
                TRACER.instant(
                    "pool.broken", cat="engine", lost_units=len(remaining) - collected
                )
                METRICS.inc("engine.broken_pools")
                remaining = remaining[collected:]
                lost, remaining = remaining[:chunksize], remaining[chunksize:]
                for unit in lost:
                    outcomes.append(guard(unit))
                    if progress is not None:
                        progress(len(outcomes))
        return outcomes


class Engine:
    """Store-backed, parallel, fault-tolerant evaluator of work units."""

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        chunksize: Optional[int] = None,
        retries: int = 0,
        backoff: float = 0.05,
        unit_timeout: Optional[float] = None,
        slab_size: Optional[int] = None,
    ):
        if slab_size is not None and slab_size < 1:
            raise ValueError(f"slab_size must be >= 1, got {slab_size}")
        #: Points per :class:`~repro.engine.tasks.SlabUnit` when dispatching
        #: store misses to workers; ``None`` keeps per-point dispatch.
        self.slab_size = slab_size
        self.executor = ParallelExecutor(
            jobs=jobs,
            chunksize=chunksize,
            retries=retries,
            backoff=backoff,
            unit_timeout=unit_timeout,
        )
        self.store = store
        self.stats = EngineStats(jobs=jobs)
        #: Optional :class:`repro.obs.ProgressLine` driven during compute.
        self.progress = None
        self._broken_pools_seen = 0
        self._last_recovered = 0

    @property
    def jobs(self) -> int:
        return self.executor.jobs

    def evaluate(
        self, units: Sequence[WorkUnit], on_failure: str = "raise"
    ) -> List[object]:
        """Evaluate ``units``; results align index-for-index with input.

        Store hits skip computation entirely; misses are computed through
        the executor and written back.  A corrupt or malformed record is
        deleted on detection and recomputed.

        A unit that keeps failing after the executor's retries gets one
        last serial attempt in this process (workers can die or be
        environmentally broken in ways the parent is not); if that fails
        too, behaviour follows ``on_failure``:

        * ``"raise"`` (default) — raise :class:`EngineFailureError` *after*
          writing every successful result back to the store, so completed
          work is never lost;
        * ``"return"`` — put the :class:`UnitFailure` in the unit's result
          slot and let the caller decide.
        """
        if on_failure not in ("raise", "return"):
            raise ValueError(
                f"on_failure must be 'raise' or 'return', got {on_failure!r}"
            )
        units = list(units)
        results: List[Optional[object]] = [None] * len(units)
        misses: List[int] = []

        with self.stats.phase("lookup"):
            for i, unit in enumerate(units):
                payload = self.store.get(unit.content_key) if self.store else None
                if payload is not None:
                    try:
                        results[i] = result_from_payload(payload)
                        continue
                    except (KeyError, TypeError, ValueError):
                        # Bad payload inside a well-formed record: delete it
                        # now so the "deleted and recomputed" contract holds
                        # even if the recompute below fails.
                        self.store.stats.corrupt += 1
                        self.store.delete(unit.content_key)
                misses.append(i)

        busy = 0.0
        retried = 0
        retry_attempts = 0
        failures: List[UnitFailure] = []
        observe = observation_flags()
        if misses:
            reporter = self.progress
            if reporter is not None:
                reporter.begin(len(misses))
            try:
                with self.stats.phase("compute"):
                    miss_units = [units[i] for i in misses]
                    progress = None if reporter is None else reporter.update
                    if self.slab_size and len(miss_units) > 1:
                        outcomes = self._map_slabs(
                            miss_units, observe=observe, progress=progress
                        )
                    else:
                        outcomes = self.executor.map(
                            miss_units, observe=observe, progress=progress
                        )
            finally:
                if reporter is not None:
                    reporter.finish()
            if self.executor.jobs > 1 and not all(o.ok for o in outcomes):
                outcomes = self._recover_serially(
                    [units[i] for i in misses], outcomes, observe
                )
            with self.stats.phase("write-back"):
                for i, outcome in zip(misses, outcomes):
                    if outcome.spans:
                        TRACER.absorb(outcome.spans)
                    if outcome.metrics:
                        METRICS.merge_raw(outcome.metrics)
                    self.stats.unit_seconds.observe(outcome.seconds)
                    results[i] = outcome.value
                    busy += outcome.seconds
                    if not outcome.ok:
                        failures.append(outcome.value)
                        continue
                    if outcome.attempts > 1:
                        retried += 1
                        retry_attempts += outcome.attempts - 1
                    if self.store is not None:
                        self.store.put(
                            units[i].content_key,
                            payload_from_result(outcome.value),
                        )

        recovered = self._last_recovered
        self._last_recovered = 0
        broken = self.executor.broken_pools - self._broken_pools_seen
        self._broken_pools_seen = self.executor.broken_pools
        self.stats.record_batch(
            total=len(units),
            hits=len(units) - len(misses),
            computed=len(misses) - len(failures),
            busy=busy,
            failed=len(failures),
            retried=retried,
            retry_attempts=retry_attempts,
            recovered=recovered,
            broken_pools=broken,
        )
        self.stats.record_failures(failures)
        if METRICS.enabled:
            METRICS.inc("engine.units_total", len(units))
            METRICS.inc("engine.store_hits", len(units) - len(misses))
            METRICS.inc("engine.units_computed", len(misses) - len(failures))
            if failures:
                METRICS.inc("engine.units_failed", len(failures))
            if recovered:
                METRICS.inc("engine.units_recovered", recovered)
        if failures and on_failure == "raise":
            raise EngineFailureError(failures)
        return results

    def _map_slabs(
        self,
        units: Sequence[WorkUnit],
        observe: tuple = (),
        progress=None,
    ) -> List[UnitOutcome]:
        """Dispatch units as slabs, flattened back to per-unit outcomes.

        Units are grouped by (design, SMT, reference uncore) — a slab must
        share a chip model — and cut into :attr:`slab_size` pieces.  Each
        slab evaluates through the vectorized batch solver in one worker
        call, so the ~5 ms grid points stop being dominated by pickling and
        IPC.  A slab that fails after retries fans out into one
        :class:`UnitFailure` per member point, which keeps the engine's
        serial recovery and ``on_failure`` semantics exactly as in
        per-point dispatch.

        For batches smaller than ``slab_size x jobs`` the configured size
        would leave workers idle (an adaptive explorer's low-fidelity rung
        is a few dozen points; at ``slab_size=32`` they all land in one
        slab on one worker), so the effective size shrinks to spread the
        batch across the pool.  Slab partitioning never affects values —
        the batch solver is bit-identical piecewise — so this is purely a
        latency choice.
        """
        slab_size = self.slab_size
        jobs = self.executor.jobs
        if jobs > 1:
            spread = -(-len(units) // jobs)  # ceil division
            slab_size = max(1, min(slab_size, spread))
        groups: dict = {}
        for idx, unit in enumerate(units):
            key = (unit.design, unit.smt, unit.reference_uncore)
            groups.setdefault(key, []).append(idx)
        slabs: List[SlabUnit] = []
        members: List[List[int]] = []
        for idxs in groups.values():
            for start in range(0, len(idxs), slab_size):
                piece = idxs[start : start + slab_size]
                first = units[piece[0]]
                slabs.append(
                    SlabUnit(
                        design=first.design,
                        mixes=tuple(units[i].mix for i in piece),
                        smt=first.smt,
                        reference_uncore=first.reference_uncore,
                    )
                )
                members.append(piece)
        TRACER.instant(
            "engine.slab-dispatch", cat="engine", slabs=len(slabs), units=len(units)
        )
        if METRICS.enabled:
            METRICS.inc("engine.slabs_dispatched", len(slabs))

        done_units = [0]

        def slab_progress(completed_slabs: int) -> None:
            done_units[0] = sum(len(m) for m in members[:completed_slabs])
            if progress is not None:
                progress(done_units[0])

        slab_outcomes = self.executor.map(
            slabs, observe=observe, progress=slab_progress
        )
        outcomes: List[Optional[UnitOutcome]] = [None] * len(units)
        for slab, piece, outcome in zip(slabs, members, slab_outcomes):
            per_point = outcome.seconds / len(piece)
            for j, i in enumerate(piece):
                spans = outcome.spans if j == 0 else ()
                metrics = outcome.metrics if j == 0 else None
                if outcome.ok:
                    value = outcome.value[j]
                else:
                    unit = units[i]
                    value = UnitFailure(
                        content_key=unit.content_key,
                        design_name=unit.design.name,
                        mix=unit.mix,
                        smt=unit.smt,
                        error_type=outcome.value.error_type,
                        message=outcome.value.message,
                        attempts=outcome.value.attempts,
                    )
                outcomes[i] = UnitOutcome(
                    value, per_point, outcome.attempts, spans, metrics
                )
        return outcomes

    def _recover_serially(
        self,
        units: Sequence[WorkUnit],
        outcomes: List[UnitOutcome],
        observe: tuple = (),
    ) -> List[UnitOutcome]:
        """One last in-parent attempt for units that failed in the pool.

        Worker-environment failures (a dead process, an injected
        worker-only fault, a transient resource error) often do not
        reproduce in the parent; a genuinely broken unit fails again and
        keeps its :class:`UnitFailure` with the attempt count accumulated.
        """
        recovered = 0
        with self.stats.phase("recover"):  # in-parent healing pass
            healed: List[UnitOutcome] = []
            for unit, outcome in zip(units, outcomes):
                if outcome.ok:
                    healed.append(outcome)
                    continue
                # Keep what the failed worker attempt recorded, then retry
                # here; the healed outcome carries only the retry's events.
                if outcome.spans:
                    TRACER.absorb(outcome.spans)
                if outcome.metrics:
                    METRICS.merge_raw(outcome.metrics)
                TRACER.instant(
                    "unit.recovery", cat="engine", design=unit.design.name
                )
                retry = _guarded_evaluate(
                    unit, timeout=self.executor.unit_timeout, observe=observe
                )
                attempts = outcome.attempts + retry.attempts
                seconds = outcome.seconds + retry.seconds
                if retry.ok:
                    recovered += 1
                    healed.append(
                        UnitOutcome(
                            retry.value, seconds, attempts, retry.spans, retry.metrics
                        )
                    )
                else:
                    failure = dataclasses.replace(retry.value, attempts=attempts)
                    healed.append(
                        UnitOutcome(
                            failure, seconds, attempts, retry.spans, retry.metrics
                        )
                    )
        self._last_recovered += recovered
        return healed

    def run_summary(self) -> dict:
        """This engine's lifetime stats plus store accounting."""
        summary = {
            "finished_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
            **self.stats.as_dict(),
        }
        if self.store is not None:
            summary["store"] = self.store.status_dict()
        if METRICS.enabled:
            summary["metrics"] = METRICS.snapshot()
        return summary

    def write_summary(self) -> None:
        """Persist the run summary next to the store (``cache stats`` reads it)."""
        if self.store is not None:
            self.store.write_run_summary(self.run_summary())

"""Engine run accounting: phase wall times, utilization, hit rates, faults.

One :class:`EngineStats` instance accumulates over an engine's lifetime
(possibly many ``evaluate`` calls), so a figure regeneration or a benchmark
session reports totals, not just the last batch.  Fault tolerance is part
of the ledger: failed units, retries, serial recoveries and survived worker
crashes (broken pools) are all counted, and the most recent failures are
kept verbatim for ``last_run.json`` and the CLI failure summary.
"""

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Sequence

from repro.obs.metrics import Histogram
from repro.obs.trace import TRACER

#: How many structured failure records to keep (newest win); the counters
#: keep counting past this cap.
MAX_RECORDED_FAILURES = 20


class EngineStats:
    """Counters and timers for one :class:`~repro.engine.executor.Engine`."""

    def __init__(self, jobs: int = 1):
        self.jobs = jobs
        self.phase_seconds: Dict[str, float] = {}
        self.units_total = 0
        self.store_hits = 0
        self.units_computed = 0
        #: Sum of per-unit evaluation times, as measured inside the workers.
        self.compute_seconds = 0.0
        #: Units still failing after every retry and the serial recovery pass.
        self.units_failed = 0
        #: Units that eventually succeeded but needed more than one attempt.
        self.units_retried = 0
        #: Extra attempts spent beyond the first, across all units.
        self.retry_attempts = 0
        #: Units healed by the in-parent serial recovery pass.
        self.units_recovered = 0
        #: Worker crashes survived (one per ``BrokenProcessPool`` recovery).
        self.broken_pools = 0
        #: Persistent-pool lifecycle: cold pool starts, runs served by an
        #: already-warm pool, and individual workers respawned after dying.
        self.pool_starts = 0
        self.pool_reuses = 0
        self.worker_respawns = 0
        #: Structured details of the most recent failures (capped).
        self.failures: List[Dict[str, Any]] = []
        #: Per-unit evaluation latency distribution (p50/p95 in summaries).
        self.unit_seconds = Histogram()
        #: Records per store write-back flush (batching effectiveness).
        self.writeback_batches = Histogram()

    # ------------------------------------------------------------------ #
    # recording                                                           #
    # ------------------------------------------------------------------ #

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a named engine phase (lookup / compute / recover / write-back).

        When tracing is live, the phase also lands on the timeline as an
        ``engine.<name>`` span.
        """
        start = time.perf_counter()
        try:
            with TRACER.span(f"engine.{name}", cat="engine"):
                yield
        finally:
            elapsed = time.perf_counter() - start
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + elapsed

    def record_batch(
        self,
        total: int,
        hits: int,
        computed: int,
        busy: float,
        failed: int = 0,
        retried: int = 0,
        retry_attempts: int = 0,
        recovered: int = 0,
        broken_pools: int = 0,
    ) -> None:
        self.units_total += total
        self.store_hits += hits
        self.units_computed += computed
        self.compute_seconds += busy
        self.units_failed += failed
        self.units_retried += retried
        self.retry_attempts += retry_attempts
        self.units_recovered += recovered
        self.broken_pools += broken_pools

    def record_failures(self, failures: Sequence) -> None:
        """Keep the structured details of the newest failures (capped)."""
        for failure in failures:
            self.failures.append(failure.as_dict())
        if len(self.failures) > MAX_RECORDED_FAILURES:
            del self.failures[: len(self.failures) - MAX_RECORDED_FAILURES]

    # ------------------------------------------------------------------ #
    # derived metrics                                                     #
    # ------------------------------------------------------------------ #

    @property
    def wall_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    @property
    def store_hit_rate(self) -> float:
        return self.store_hits / self.units_total if self.units_total else 0.0

    @property
    def worker_utilization(self) -> float:
        """Fraction of worker capacity kept busy during the compute phase.

        ``sum(per-unit busy time) / (jobs * compute wall time)``: 1.0 means
        every worker computed the whole time; low values mean dispatch
        overhead or load imbalance dominated.
        """
        wall = self.phase_seconds.get("compute", 0.0)
        if wall <= 0.0 or self.jobs <= 0:
            return 0.0
        return min(1.0, self.compute_seconds / (self.jobs * wall))

    @property
    def phase_shares(self) -> Dict[str, float]:
        """Each phase's fraction of the total engine wall time."""
        wall = self.wall_seconds
        if wall <= 0.0:
            return {name: 0.0 for name in self.phase_seconds}
        return {
            name: seconds / wall for name, seconds in self.phase_seconds.items()
        }

    @property
    def fault_free(self) -> bool:
        """True when nothing went wrong at all this run."""
        return not (
            self.units_failed
            or self.units_retried
            or self.units_recovered
            or self.broken_pools
            or self.worker_respawns
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "units_total": self.units_total,
            "store_hits": self.store_hits,
            "units_computed": self.units_computed,
            "store_hit_rate": self.store_hit_rate,
            "wall_seconds": self.wall_seconds,
            "phase_seconds": dict(self.phase_seconds),
            "phase_shares": self.phase_shares,
            "unit_seconds": self.unit_seconds.snapshot(),
            "compute_seconds": self.compute_seconds,
            "worker_utilization": self.worker_utilization,
            "units_failed": self.units_failed,
            "units_retried": self.units_retried,
            "retry_attempts": self.retry_attempts,
            "units_recovered": self.units_recovered,
            "broken_pools": self.broken_pools,
            "pool_starts": self.pool_starts,
            "pool_reuses": self.pool_reuses,
            "worker_respawns": self.worker_respawns,
            "writeback_batches": self.writeback_batches.snapshot(),
            "failures": list(self.failures),
        }

    def formatted(self) -> str:
        """Human-readable multi-line report."""
        shares = self.phase_shares
        lines = [
            f"engine: jobs={self.jobs}  units={self.units_total}  "
            f"store hits={self.store_hits} ({self.store_hit_rate:.0%})  "
            f"computed={self.units_computed}",
            f"wall: {self.wall_seconds:.3f}s total"
            + "".join(
                f"  {name}={seconds:.3f}s/{shares[name]:.0%}"
                for name, seconds in sorted(self.phase_seconds.items())
            ),
            f"worker utilization: {self.worker_utilization:.0%} "
            f"(busy {self.compute_seconds:.3f}s across {self.jobs} job(s))",
        ]
        if self.unit_seconds.count:
            lines.append(
                f"unit latency: p50 {self.unit_seconds.percentile(50) * 1e3:.1f}ms  "
                f"p95 {self.unit_seconds.percentile(95) * 1e3:.1f}ms  "
                f"over {self.unit_seconds.count} computed unit(s)"
            )
        if self.pool_starts or self.pool_reuses:
            lines.append(
                f"pool: {self.pool_starts} start(s)  "
                f"{self.pool_reuses} warm reuse(s)  "
                f"{self.worker_respawns} worker respawn(s)"
            )
        if not self.fault_free:
            lines.append(
                f"faults: {self.units_failed} failed  "
                f"{self.units_retried} retried "
                f"(+{self.retry_attempts} attempt(s))  "
                f"{self.units_recovered} recovered serially  "
                f"{self.broken_pools} broken pool(s) survived  "
                f"{self.worker_respawns} worker(s) respawned"
            )
        return "\n".join(lines)

"""Engine run accounting: phase wall times, utilization, hit rates.

One :class:`EngineStats` instance accumulates over an engine's lifetime
(possibly many ``evaluate`` calls), so a figure regeneration or a benchmark
session reports totals, not just the last batch.
"""

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator


class EngineStats:
    """Counters and timers for one :class:`~repro.engine.executor.Engine`."""

    def __init__(self, jobs: int = 1):
        self.jobs = jobs
        self.phase_seconds: Dict[str, float] = {}
        self.units_total = 0
        self.store_hits = 0
        self.units_computed = 0
        #: Sum of per-unit evaluation times, as measured inside the workers.
        self.compute_seconds = 0.0

    # ------------------------------------------------------------------ #
    # recording                                                           #
    # ------------------------------------------------------------------ #

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a named engine phase (lookup / compute / write-back)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + elapsed

    def record_batch(self, total: int, hits: int, computed: int, busy: float) -> None:
        self.units_total += total
        self.store_hits += hits
        self.units_computed += computed
        self.compute_seconds += busy

    # ------------------------------------------------------------------ #
    # derived metrics                                                     #
    # ------------------------------------------------------------------ #

    @property
    def wall_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    @property
    def store_hit_rate(self) -> float:
        return self.store_hits / self.units_total if self.units_total else 0.0

    @property
    def worker_utilization(self) -> float:
        """Fraction of worker capacity kept busy during the compute phase.

        ``sum(per-unit busy time) / (jobs * compute wall time)``: 1.0 means
        every worker computed the whole time; low values mean dispatch
        overhead or load imbalance dominated.
        """
        wall = self.phase_seconds.get("compute", 0.0)
        if wall <= 0.0 or self.jobs <= 0:
            return 0.0
        return min(1.0, self.compute_seconds / (self.jobs * wall))

    def as_dict(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "units_total": self.units_total,
            "store_hits": self.store_hits,
            "units_computed": self.units_computed,
            "store_hit_rate": self.store_hit_rate,
            "wall_seconds": self.wall_seconds,
            "phase_seconds": dict(self.phase_seconds),
            "compute_seconds": self.compute_seconds,
            "worker_utilization": self.worker_utilization,
        }

    def formatted(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"engine: jobs={self.jobs}  units={self.units_total}  "
            f"store hits={self.store_hits} ({self.store_hit_rate:.0%})  "
            f"computed={self.units_computed}",
            f"wall: {self.wall_seconds:.3f}s total"
            + "".join(
                f"  {name}={seconds:.3f}s"
                for name, seconds in sorted(self.phase_seconds.items())
            ),
            f"worker utilization: {self.worker_utilization:.0%} "
            f"(busy {self.compute_seconds:.3f}s across {self.jobs} job(s))",
        ]
        return "\n".join(lines)

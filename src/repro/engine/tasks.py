"""Work units: the engine's unit of evaluation.

A :class:`WorkUnit` is one (design, mix, SMT) grid point, self-contained
enough to evaluate in another process: it carries the full
:class:`~repro.core.designs.ChipDesign` (not just a name, so custom designs
work) and the uncore used for isolated-on-big reference runs.  Benchmark
names resolve to profiles at key-derivation and evaluation time, so a
profile edit changes the key.

:func:`evaluate_work_unit` is the worker entry point.  It funnels into the
exact same :meth:`DesignSpaceStudy.evaluate_mix` code path the serial tier
uses — per-process studies are memoized so a worker pays model construction
once — which is what makes ``jobs=N`` bit-identical to ``jobs=1``.
"""

from dataclasses import dataclass
from functools import cached_property
from typing import Any, Dict, Optional, Tuple

from repro.core.designs import ChipDesign
from repro.engine.keys import content_key
from repro.microarch.uncore import UncoreConfig
from repro.workloads.multiprogram import profiles_for


@dataclass(frozen=True)
class WorkUnit:
    """One (design, mix, thread count, SMT) evaluation point.

    ``reference_uncore`` is the uncore the owning study normalizes against
    (isolated-on-big runs); it defaults to the design's own uncore and is
    part of the content key because it changes STP/ANTT.
    """

    design: ChipDesign
    mix: Tuple[str, ...]
    smt: bool = True
    reference_uncore: Optional[UncoreConfig] = None

    def __post_init__(self) -> None:
        if not self.mix:
            raise ValueError("a work unit needs at least one benchmark")
        object.__setattr__(self, "mix", tuple(self.mix))
        if self.reference_uncore is None:
            object.__setattr__(self, "reference_uncore", self.design.uncore)

    @property
    def n_threads(self) -> int:
        return len(self.mix)

    @cached_property
    def content_key(self) -> str:
        """Deterministic key over the full configuration behind this point."""
        return content_key(
            {
                "kind": "mix-result",
                "design": self.design,
                "reference_uncore": self.reference_uncore,
                "mix": list(self.mix),
                "profiles": list(profiles_for(list(self.mix))),
                "smt": self.smt,
            }
        )


@dataclass(frozen=True)
class SlabUnit:
    """Many mixes of one (design, SMT) shipped to a worker as one unit.

    A single grid point solves in ~5 ms, so per-unit process dispatch is
    dominated by pickling and IPC.  A slab carries a whole batch of mixes
    and evaluates them through
    :meth:`DesignSpaceStudy.evaluate_mixes` — the vectorized lockstep
    solver — inside one worker call.  Results come back as a list aligned
    with ``mixes``; the engine flattens them into the per-point result
    slots, so slab dispatch is invisible (and bit-identical) to callers.
    """

    design: ChipDesign
    mixes: Tuple[Tuple[str, ...], ...]
    smt: bool = True
    reference_uncore: Optional[UncoreConfig] = None

    def __post_init__(self) -> None:
        if not self.mixes or any(not m for m in self.mixes):
            raise ValueError("a slab needs at least one non-empty mix")
        object.__setattr__(self, "mixes", tuple(tuple(m) for m in self.mixes))
        if self.reference_uncore is None:
            object.__setattr__(self, "reference_uncore", self.design.uncore)

    @property
    def mix(self) -> Tuple[str, ...]:
        """Flattened benchmark names (for fault matching and trace labels)."""
        seen = []
        for m in self.mixes:
            for b in m:
                if b not in seen:
                    seen.append(b)
        return tuple(seen)

    @property
    def n_threads(self) -> int:
        return max(len(m) for m in self.mixes)

    @property
    def timeout_scale(self) -> int:
        """Per-unit timeouts scale with the number of points in the slab."""
        return len(self.mixes)

    @cached_property
    def content_key(self) -> str:
        return content_key(
            {
                "kind": "slab-result",
                "design": self.design,
                "reference_uncore": self.reference_uncore,
                "mixes": [list(m) for m in self.mixes],
                "profiles": list(profiles_for(list(self.mix))),
                "smt": self.smt,
            }
        )


@dataclass(frozen=True)
class UnitFailure:
    """Structured outcome of a work unit whose evaluation kept failing.

    The executor returns one of these *in the unit's result slot* instead
    of letting the exception poison the whole chunk: every other unit's
    result survives, aligned index-for-index with the input.
    """

    content_key: str
    design_name: str
    mix: Tuple[str, ...]
    smt: bool
    error_type: str
    message: str
    attempts: int

    def describe(self) -> str:
        smt_note = "" if self.smt else " (no SMT)"
        return (
            f"{self.design_name}/{'+'.join(self.mix)}{smt_note}: "
            f"{self.error_type}: {self.message} "
            f"(after {self.attempts} attempt(s))"
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "content_key": self.content_key,
            "design": self.design_name,
            "mix": list(self.mix),
            "smt": self.smt,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
        }


def payload_from_result(result) -> Dict[str, object]:
    """JSON-serializable record payload for a :class:`MixResult`."""
    return {
        "design_name": result.design_name,
        "mix": list(result.mix),
        "smt": result.smt,
        "stp": result.stp,
        "antt": result.antt,
        "power_gated_w": result.power_gated_w,
        "power_ungated_w": result.power_ungated_w,
        "bus_utilization": result.bus_utilization,
        "mem_latency_inflation": result.mem_latency_inflation,
    }


def result_from_payload(payload: Dict[str, object]):
    """Rebuild a :class:`MixResult` from a store payload.

    Raises ``KeyError``/``TypeError`` on malformed payloads; callers treat
    that as a cache miss, not an error.
    """
    from repro.core.study import MixResult

    return MixResult(
        design_name=str(payload["design_name"]),
        mix=tuple(str(b) for b in payload["mix"]),
        smt=bool(payload["smt"]),
        stp=float(payload["stp"]),
        antt=float(payload["antt"]),
        power_gated_w=float(payload["power_gated_w"]),
        power_ungated_w=float(payload["power_ungated_w"]),
        bus_utilization=float(payload["bus_utilization"]),
        mem_latency_inflation=float(payload["mem_latency_inflation"]),
    )


def _worker_studies():
    """Per-process study cache so pool workers build each chip model once.

    A :class:`~repro.engine.store.KeyedCache` rather than a bare dict: the
    hit/miss counters make warm-state reuse observable (persistent pool
    workers keep this cache — and the solver state inside each study —
    across tasks, slabs and serve-daemon jobs), and the identity memo keeps
    repeat lookups of the same design object at dict speed.  Imported
    lazily to keep the module import-light for worker startup.
    """
    global _WORKER_STUDIES
    if _WORKER_STUDIES is None:
        from repro.engine.store import KeyedCache

        _WORKER_STUDIES = KeyedCache("worker-studies")
    return _WORKER_STUDIES


_WORKER_STUDIES = None


def evaluate_work_unit(unit):
    """Evaluate one work unit (in this or a worker process).

    A :class:`WorkUnit` returns the same :class:`MixResult` the serial
    :meth:`DesignSpaceStudy.evaluate_mix` path produces, bit for bit.  A
    :class:`SlabUnit` returns a list of :class:`MixResult` aligned with its
    ``mixes``, computed through the vectorized batch path — also
    bit-identical to evaluating each point alone.
    """
    from repro.core.study import DesignSpaceStudy

    study = _worker_studies().get_or_compute(
        (unit.design, unit.reference_uncore),
        lambda: DesignSpaceStudy(
            designs=[unit.design], reference_uncore=unit.reference_uncore
        ),
    )
    if isinstance(unit, SlabUnit):
        return study.evaluate_mixes(
            unit.design.name, [list(m) for m in unit.mixes], unit.smt
        )
    return study.evaluate_mix(unit.design.name, list(unit.mix), unit.smt)


def clear_worker_studies() -> None:
    """Drop per-process worker studies (tests and long-lived servers)."""
    if _WORKER_STUDIES is not None:
        _WORKER_STUDIES.clear()

"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list-designs`` / ``list-benchmarks`` / ``list-experiments`` — inventory;
* ``evaluate --design 4B --mix mcf,tonto,...`` — one workload mix on one
  design (STP, ANTT, power, bus state);
* ``curve --design 4B --kind heterogeneous`` — STP vs thread count;
* ``figure <id>`` — regenerate one of the paper's tables/figures
  (``table1``, ``fig01`` ... ``fig17``, ``ablation-*``, ``ext-*``),
  optionally through the evaluation engine (``--jobs``, ``--cache-dir``);
* ``sweep`` — evaluate a design-space grid through the parallel engine
  with the persistent result store (``--jobs N --cache-dir PATH``);
* ``list-scenarios`` / ``explore --scenario <name>`` — adaptive design
  search (successive halving, optional GA refinement) on a named
  thread-count scenario, at a fraction of the full-grid cost;
* ``cache stats`` / ``cache clear`` — inspect or empty the result store;
* ``findings`` — evaluate the paper's eleven findings;
* ``validate`` — cross-validate the interval tier against the cycle tier.

Observability (:mod:`repro.obs`): every command honours ``--log-level`` and
``--log-json`` (status output on stderr; stdout stays machine-stable), and
``sweep``/``figure`` accept ``--trace FILE`` (Chrome trace-event JSON,
including worker-process spans), ``--metrics FILE`` (counter/histogram
snapshot) and ``--progress/--no-progress`` (live ETA line, auto on a TTY).
"""

import argparse
import json
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.designs import ALTERNATIVE_DESIGNS, DESIGN_ORDER, get_design
from repro.core.study import DesignSpaceStudy
from repro.experiments.base import ExperimentTable
from repro.obs import (
    METRICS,
    TRACER,
    ProgressLine,
    configure_logging,
    get_logger,
    reset_observability,
)
from repro.workloads.parsec import PARSEC_ORDER
from repro.workloads.spec import SPEC_ORDER

_LOG = get_logger("cli")


def _figure_registry() -> Dict[str, Callable[[], List[ExperimentTable]]]:
    """Lazy imports so ``--help`` stays fast."""
    from repro.experiments import (
        ablations,
        ext_acs,
        ext_prefetch,
        ext_scaled_budget,
        ext_serial_boost,
        fig01_parsec_threads,
        fig02_design_space,
        fig03_throughput_curves,
        fig04_tonto_libquantum,
        fig05_antt,
        fig06_fig07_fig08_uniform,
        fig09_per_benchmark,
        fig10_datacenter,
        fig11_fig12_parsec,
        fig13_dynamic,
        fig14_power,
        fig15_pareto,
        fig16_alternatives,
        fig17_bandwidth,
        table1_configs,
    )

    return {
        "table1": lambda: [table1_configs.run()],
        "fig01": lambda: [fig01_parsec_threads.run()],
        "fig02": lambda: [fig02_design_space.run()],
        "fig03": lambda: [
            fig03_throughput_curves.run("homogeneous"),
            fig03_throughput_curves.run("heterogeneous"),
        ],
        "fig04": lambda: [
            fig04_tonto_libquantum.run("tonto"),
            fig04_tonto_libquantum.run("libquantum"),
        ],
        "fig05": lambda: [fig05_antt.run()],
        "fig06": lambda: [fig06_fig07_fig08_uniform.run("none")],
        "fig07": lambda: [fig06_fig07_fig08_uniform.run("homogeneous-only")],
        "fig08": lambda: [fig06_fig07_fig08_uniform.run("all")],
        "fig09": lambda: [fig09_per_benchmark.run()],
        "fig10": lambda: [fig10_datacenter.run_distribution(), fig10_datacenter.run()],
        "fig11": lambda: [
            fig11_fig12_parsec.run_average("roi"),
            fig11_fig12_parsec.run_average("whole"),
        ],
        "fig12": lambda: [
            fig11_fig12_parsec.run_per_benchmark("roi"),
            fig11_fig12_parsec.run_per_benchmark("whole"),
        ],
        "fig13": lambda: [
            fig13_dynamic.run("homogeneous"),
            fig13_dynamic.run("heterogeneous"),
        ],
        "fig14": lambda: [fig14_power.run()],
        "fig15": lambda: [fig15_pareto.run()],
        "fig16": lambda: [fig16_alternatives.run()],
        "fig17": lambda: [
            fig17_bandwidth.run("homogeneous"),
            fig17_bandwidth.run("heterogeneous"),
        ],
        "ablation-scheduling": lambda: [ablations.run_scheduling()],
        "ablation-llc": lambda: [ablations.run_llc_sharing()],
        "ablation-rob": lambda: [ablations.run_rob_partitioning()],
        "ablation-fetch": lambda: [ablations.run_fetch_policy()],
        "ext-scaled-budget": lambda: [ext_scaled_budget.run()],
        "ext-acs": lambda: [ext_acs.run()],
        "ext-serial-boost": lambda: [ext_serial_boost.run()],
        "ext-prefetch": lambda: [ext_prefetch.run()],
    }


def _cmd_list_designs(_args: argparse.Namespace) -> int:
    print("baseline designs (Figure 2):")
    for name in DESIGN_ORDER:
        design = get_design(name)
        counts = ", ".join(f"{v}x {k}" for k, v in design.core_counts().items())
        print(f"  {name:6s} {counts}  ({design.max_threads} HW threads)")
    print("alternative designs (Section 8.1):")
    for name in sorted(ALTERNATIVE_DESIGNS):
        print(f"  {name}")
    return 0


def _cmd_list_benchmarks(_args: argparse.Namespace) -> int:
    print("SPEC-like single-thread profiles:")
    for name in SPEC_ORDER:
        print(f"  {name}")
    print("PARSEC-like multi-threaded workloads:")
    for name in PARSEC_ORDER:
        print(f"  {name}")
    return 0


def _cmd_list_experiments(_args: argparse.Namespace) -> int:
    for key in _figure_registry():
        print(f"  {key}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    mix = [b.strip() for b in args.mix.split(",") if b.strip()]
    if not mix:
        _LOG.error("error: --mix needs at least one benchmark")
        return 2
    study = DesignSpaceStudy()
    result = study.evaluate_mix(args.design, mix, smt=not args.no_smt)
    print(f"design          : {result.design_name}")
    print(f"mix ({len(mix):2d} threads): {', '.join(mix)}")
    print(f"SMT             : {'on' if result.smt else 'off'}")
    print(f"STP             : {result.stp:.3f}")
    print(f"ANTT            : {result.antt:.3f}")
    print(f"power (gated)   : {result.power_gated_w:.1f} W")
    print(f"power (ungated) : {result.power_ungated_w:.1f} W")
    print(f"bus utilization : {result.bus_utilization:.0%}")
    print(f"mem latency     : x{result.mem_latency_inflation:.2f} vs unloaded")
    return 0


def _cmd_curve(args: argparse.Namespace) -> int:
    study = DesignSpaceStudy()
    counts = range(1, args.max_threads + 1)
    curve = study.throughput_curve(
        args.design, args.kind, counts, smt=not args.no_smt
    )
    peak = max(curve.values())
    print(f"STP vs thread count: {args.design}, {args.kind}, "
          f"SMT {'off' if args.no_smt else 'on'}")
    for n in counts:
        bar = "#" * int(curve[n] / peak * 50)
        print(f"  {n:2d} {curve[n]:6.2f} {bar}")
    return 0


def _build_engine(
    jobs: int,
    cache_dir: Optional[str],
    no_cache: bool = False,
    retries: int = 1,
    unit_timeout: Optional[float] = None,
    slab_size: Optional[int] = None,
    store_backend: str = "dir",
    pool: str = "persistent",
):
    """An engine with the persistent store (unless ``no_cache``).

    ``slab_size`` controls slab dispatch: ``None`` picks the default for
    multi-worker runs (32 points per slab, enough to amortize IPC), ``0``
    forces per-point dispatch, anything else is the points-per-slab count.
    ``pool`` picks worker lifetime: ``persistent`` (warm workers reused
    across engine calls) or ``per-call`` (a fresh process pool per call).
    """
    from repro.engine import POOL_MODES, Engine, ResultStore

    if jobs < 1:
        _LOG.error(f"error: --jobs must be >= 1, got {jobs}")
        raise SystemExit(2)
    if retries < 0:
        _LOG.error(f"error: --retries must be >= 0, got {retries}")
        raise SystemExit(2)
    if unit_timeout is not None and unit_timeout <= 0:
        _LOG.error(f"error: --unit-timeout must be > 0, got {unit_timeout}")
        raise SystemExit(2)
    if slab_size is not None and slab_size < 0:
        _LOG.error(f"error: --slab-size must be >= 0, got {slab_size}")
        raise SystemExit(2)
    if pool not in POOL_MODES:
        _LOG.error(f"error: --pool must be one of {POOL_MODES}, got {pool!r}")
        raise SystemExit(2)
    if slab_size is None:
        slab_size = 32 if jobs > 1 else 0
    store = None if no_cache else ResultStore(cache_dir, backend=store_backend)
    return Engine(
        jobs=jobs,
        store=store,
        retries=retries,
        unit_timeout=unit_timeout,
        slab_size=slab_size or None,
        pool=pool,
    )


def _finish_engine(engine) -> None:
    """Persist the run summary, stop warm workers and report stats
    (stderr keeps stdout clean)."""
    engine.write_summary()
    engine.shutdown()
    _LOG.info(engine.stats.formatted())
    for failure in engine.stats.failures:
        _LOG.warning(
            f"failed unit: {failure['design']}/{'+'.join(failure['mix'])} "
            f"{failure['error_type']}: {failure['message']} "
            f"({failure['attempts']} attempt(s))"
        )
    if engine.store is not None and engine.store.degraded:
        _LOG.warning(
            f"store: DEGRADED to in-memory caching "
            f"({engine.store.degraded_reason})"
        )


def _obs_begin(args: argparse.Namespace) -> None:
    """Enable the global tracer/metrics registry per ``--trace``/``--metrics``."""
    if getattr(args, "trace", None):
        TRACER.reset()
        TRACER.enable()
    if getattr(args, "metrics", None):
        METRICS.reset()
        METRICS.enable()


def _obs_finish(args: argparse.Namespace) -> None:
    """Write any requested trace/metrics files, then disable and reset."""
    try:
        if getattr(args, "trace", None) and TRACER.enabled:
            count = TRACER.write(args.trace)
            _LOG.info(f"wrote trace: {args.trace}", events=count)
        if getattr(args, "metrics", None) and METRICS.enabled:
            METRICS.write(args.metrics)
            _LOG.info(f"wrote metrics: {args.metrics}")
    finally:
        reset_observability()


def _cmd_figure(args: argparse.Namespace) -> int:
    registry = _figure_registry()
    if args.id not in registry:
        _LOG.error(f"unknown experiment {args.id!r}; try: {', '.join(registry)}")
        return 2
    if args.server:
        return _cmd_figure_remote(args)
    engine = None
    if args.jobs != 1 or args.cache_dir is not None:
        from repro.experiments.context import set_engine

        engine = _build_engine(
            args.jobs, args.cache_dir, retries=args.retries,
            unit_timeout=args.unit_timeout, store_backend=args.store_backend,
            pool=args.pool,
        )
        engine.progress = ProgressLine(f"figure {args.id}", enabled=args.progress)
        set_engine(engine)
    _obs_begin(args)
    try:
        for table in registry[args.id]():
            print(table.to_json() if args.json else table.formatted())
            print()
    finally:
        if engine is not None:
            _finish_engine(engine)
            set_engine(None)
        _obs_finish(args)
    return 0


def _cmd_figure_remote(args: argparse.Namespace) -> int:
    """``figure --server``: render through the daemon's warm engine.

    The daemon runs the same registry entry through its engine and ships
    back both renderings; stdout is byte-identical to local execution.
    """
    from repro.serve import ServeClient, ServeConnectionError, ServeError

    try:
        with ServeClient(args.server, client_name="cli-figure") as client:
            tables = client.figure(args.id)
    except (ServeError, ServeConnectionError) as exc:
        _LOG.error(f"error: {exc}")
        return 2
    for table in tables:
        print(table["json"] if args.json else table["formatted"])
        print()
    return 0


def _cmd_sweep_remote(args: argparse.Namespace, designs: "Sequence[str]") -> int:
    """``sweep --server``: same table, evaluated by the daemon.

    Stdout must be byte-identical to a local run: the server computes the
    per-(design, thread count) harmonic means through the same study
    helpers in the same order; floats survive the JSON wire exactly
    (``repr`` round-trip), and the table is rebuilt and printed with the
    identical layout code.
    """
    from repro.serve import ServeClient, ServeConnectionError, ServeError

    smt = not args.no_smt
    counts = list(range(1, args.max_threads + 1))
    progress = ProgressLine("sweep", enabled=args.progress)

    def on_progress(event):
        if event.get("final"):
            return  # terminal events carry done_points, not done
        if event.get("event") == "progress":
            progress.begin(event.get("total") or 0)
        progress.update(event.get("done") or 0)

    try:
        with ServeClient(args.server, client_name="cli-sweep") as client:
            result = client.sweep(
                list(designs), args.kind, args.max_threads, smt,
                on_progress=on_progress,
            )
    except (ServeError, ServeConnectionError) as exc:
        progress.finish()
        _LOG.error(f"error: {exc}")
        return 2
    progress.finish()
    mean_stp = result["mean_stp"]
    table = ExperimentTable(
        experiment_id="sweep",
        title=f"mean STP vs thread count, {args.kind} workloads, "
        f"SMT {'on' if smt else 'off'}",
        columns=["threads"] + list(designs),
    )
    for n in counts:
        table.add_row(
            threads=n,
            **{name: mean_stp[name][str(n)] for name in designs},
        )
    print(table.to_json() if args.json else table.formatted())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.design.strip().lower() == "all":
        designs: Sequence[str] = DESIGN_ORDER
    else:
        designs = [d.strip() for d in args.design.split(",") if d.strip()]
    if not designs:
        _LOG.error("error: --design needs at least one design name")
        return 2
    if args.server:
        return _cmd_sweep_remote(args, designs)
    engine = _build_engine(
        args.jobs, args.cache_dir, args.no_cache,
        retries=args.retries, unit_timeout=args.unit_timeout,
        slab_size=args.slab_size, store_backend=args.store_backend,
        pool=args.pool,
    )
    engine.progress = ProgressLine("sweep", enabled=args.progress)
    study = DesignSpaceStudy(engine=engine)
    counts = list(range(1, args.max_threads + 1))
    smt = not args.no_smt
    _obs_begin(args)
    try:
        try:
            study.prefetch(designs, args.kind, counts, smt)
        except KeyError as exc:
            _LOG.error(f"error: {exc.args[0]}")
            return 2
        table = ExperimentTable(
            experiment_id="sweep",
            title=f"mean STP vs thread count, {args.kind} workloads, "
            f"SMT {'on' if smt else 'off'}",
            columns=["threads"] + list(designs),
        )
        for n in counts:
            table.add_row(
                threads=n,
                **{
                    name: study.mean_stp(name, args.kind, n, smt)
                    for name in designs
                },
            )
        print(table.to_json() if args.json else table.formatted())
        _finish_engine(engine)
        return 0
    finally:
        _obs_finish(args)


def _cmd_list_scenarios(_args: argparse.Namespace) -> int:
    from repro.core.scenarios import SCENARIOS

    width = max(len(name) for name in SCENARIOS)
    for name, scenario in SCENARIOS.items():
        print(f"{name.ljust(width)}  {scenario.description}")
    return 0


def _explore_table(result: Dict) -> ExperimentTable:
    """Render one exploration summary as an experiment table.

    A pure function of the JSON-safe result dict, so local and
    ``--server`` runs print byte-identical output.
    """
    table = ExperimentTable(
        experiment_id="explore",
        title=f"adaptive design search, scenario '{result['scenario']}', "
        f"{result['kind']} workloads, SMT "
        f"{'on' if result['smt'] else 'off'}",
        columns=["rung", "designs", "threads", "mixes", "points", "cumulative", "best"],
    )
    for rung in result["rungs"]:
        table.add_row(
            rung=rung["rung"],
            designs=len(rung["designs"]),
            threads=rung["thread_counts"],
            mixes=rung["mixes_per_count"],
            points=rung["new_points"],
            cumulative=rung["cumulative_points"],
            best=rung["kept"][0],
        )
    ranking = " > ".join(
        f"{entry['design']} {entry['score']:.4f}" for entry in result["ranking"]
    )
    table.notes.append(f"final rung ranking: {ranking}")
    if result["tie_escalated"]:
        table.notes.append(
            "near-tie between finalists resolved at full fidelity"
        )
    ga = result.get("ga")
    if ga:
        evaluated = ", ".join(
            f"{entry['design']} {entry['score']:.4f}"
            for entry in ga["evaluated"]
        )
        table.notes.append(
            f"GA refinement ({ga['rounds']} round(s)): {evaluated or 'budget exhausted'}"
        )
    table.notes.append(
        f"winner: {result['winner']} "
        f"(score {result['winner_score']:.4f} on {result['distribution']})"
    )
    table.notes.append(
        f"evaluated {result['evaluations']} of {result['full_grid_points']} "
        f"full-grid points ({result['fraction']:.1%})"
    )
    return table


def _cmd_explore_remote(args: argparse.Namespace, params: Dict) -> int:
    """``explore --server``: the daemon runs the search on its warm study.

    Stdout is byte-identical to a local run: the table is rebuilt from
    the JSON-round-tripped summary with the identical layout code.
    """
    from repro.serve import ServeClient, ServeConnectionError, ServeError

    try:
        with ServeClient(args.server, client_name="cli-explore") as client:
            result = client.explore(params)
    except (ServeError, ServeConnectionError) as exc:
        _LOG.error(f"error: {exc}")
        return 2
    table = _explore_table(result)
    print(table.to_json() if args.json else table.formatted())
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.core.scenarios import get_scenario
    from repro.explore import ExploreConfig, run_explore

    if args.design.strip().lower() == "all":
        designs: Sequence[str] = DESIGN_ORDER
    else:
        designs = [d.strip() for d in args.design.split(",") if d.strip()]
    if not designs:
        _LOG.error("error: --design needs at least one design name")
        return 2
    try:
        get_scenario(args.scenario)
    except ValueError as exc:
        _LOG.error(f"error: {exc}")
        return 2
    params = {
        "scenario": args.scenario,
        "designs": tuple(designs),
        "kind": args.kind,
        "max_threads": args.max_threads,
        "smt": not args.no_smt,
        "seed": args.seed,
        "eta": args.eta,
        "min_counts": args.min_counts,
        "min_mixes": args.min_mixes,
        "budget_fraction": args.budget,
        "ga_rounds": args.ga,
    }
    try:
        config = ExploreConfig(**params)
    except ValueError as exc:
        _LOG.error(f"error: {exc}")
        return 2
    if args.server:
        params["designs"] = list(designs)
        return _cmd_explore_remote(args, params)
    engine = _build_engine(
        args.jobs, args.cache_dir, args.no_cache,
        retries=args.retries, unit_timeout=args.unit_timeout,
        slab_size=args.slab_size, store_backend=args.store_backend,
        pool=args.pool,
    )
    engine.progress = ProgressLine("explore", enabled=args.progress)
    try:
        study = DesignSpaceStudy(
            designs=[get_design(name) for name in designs], engine=engine
        )
    except KeyError as exc:
        _LOG.error(f"error: {exc.args[0]}")
        return 2
    _obs_begin(args)
    try:
        result = run_explore(config, study=study)
        table = _explore_table(result)
        print(table.to_json() if args.json else table.formatted())
        _finish_engine(engine)
        return 0
    finally:
        _obs_finish(args)


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.engine import ResultStore

    store = ResultStore(args.cache_dir, backend=args.store_backend)
    if args.cache_command == "clear":
        removed = store.clear()
        print(f"evicted {removed} record(s) from {store.cache_dir}")
        return 0

    content = store.content_summary()
    last_run = store.read_run_summary()
    if args.json:
        print(json.dumps({"store": content, "last_run": last_run}, indent=2))
        return 0
    print(f"cache dir       : {content['cache_dir']}")
    print(f"schema version  : {content['schema_version']}")
    print(f"records         : {content['records']}")
    print(f"total bytes     : {content['total_bytes']}")
    if content["orphan_tmp_files"] or content["empty_shards"]:
        print(
            f"debris          : {content['orphan_tmp_files']} orphan tmp "
            f"file(s), {content['empty_shards']} empty shard dir(s) "
            "(swept on next clear/prune)"
        )
    if content["degraded"]:
        print(f"degraded        : yes ({content['degraded_reason']})")
    if last_run is None:
        print("last run        : (none recorded)")
        return 0
    print(f"last run        : {last_run.get('finished_at', '?')}")
    print(f"  jobs          : {last_run.get('jobs', '?')}")
    print(f"  units         : {last_run.get('units_total', '?')}")
    hit_rate = last_run.get("store_hit_rate")
    if isinstance(hit_rate, (int, float)):
        print(f"  store hits    : {last_run.get('store_hits', '?')} ({hit_rate:.1%})")
    wall = last_run.get("wall_seconds")
    if isinstance(wall, (int, float)):
        print(f"  wall time     : {wall:.3f} s")
    utilization = last_run.get("worker_utilization")
    if isinstance(utilization, (int, float)):
        print(f"  utilization   : {utilization:.0%}")
    pool_starts = last_run.get("pool_starts", 0)
    pool_reuses = last_run.get("pool_reuses", 0)
    if pool_starts or pool_reuses:
        print(
            f"  pool          : {pool_starts} start(s), "
            f"{pool_reuses} warm reuse(s)"
        )
    failed = last_run.get("units_failed", 0)
    retried = last_run.get("units_retried", 0)
    broken = last_run.get("broken_pools", 0)
    respawned = last_run.get("worker_respawns", 0)
    if failed or retried or broken or respawned:
        print(
            f"  faults        : {failed} failed, {retried} retried, "
            f"{broken} broken pool(s), {respawned} worker(s) respawned"
        )
    phases = last_run.get("phase_seconds")
    shares = last_run.get("phase_shares") or {}
    if isinstance(phases, dict) and phases:
        breakdown = "  ".join(
            f"{name}={seconds:.3f}s/{shares.get(name, 0.0):.0%}"
            for name, seconds in sorted(phases.items())
        )
        print(f"  phases        : {breakdown}")
    unit_seconds = last_run.get("unit_seconds")
    if isinstance(unit_seconds, dict) and unit_seconds.get("count"):
        print(
            f"  unit latency  : p50 {unit_seconds['p50'] * 1e3:.1f} ms  "
            f"p95 {unit_seconds['p95'] * 1e3:.1f} ms  "
            f"over {unit_seconds['count']} computed unit(s)"
        )
    metrics = last_run.get("metrics")
    if isinstance(metrics, dict):
        print(
            f"  metrics       : {len(metrics.get('counters', {}))} counter(s), "
            f"{len(metrics.get('gauges', {}))} gauge(s), "
            f"{len(metrics.get('histograms', {}))} histogram(s)"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the resident evaluation daemon (see docs/serving.md)."""
    from repro.serve import ServeConfig, SweepServer

    if args.socket and args.port is not None:
        _LOG.error("error: give --socket or --port, not both")
        return 2
    if args.socket:
        listen = f"unix:{args.socket}"
    elif args.port is not None:
        listen = f"{args.host}:{args.port}"
    else:
        _LOG.error("error: serve needs --socket PATH or --port N")
        return 2
    if args.jobs < 1:
        _LOG.error(f"error: --jobs must be >= 1, got {args.jobs}")
        return 2
    if args.slab_size < 1:
        _LOG.error(f"error: --slab-size must be >= 1, got {args.slab_size}")
        return 2
    if args.quota < 1:
        _LOG.error(f"error: --quota must be >= 1, got {args.quota}")
        return 2
    if args.max_finished_jobs < 0:
        _LOG.error(
            f"error: --max-finished-jobs must be >= 0, got {args.max_finished_jobs}"
        )
        return 2
    if args.http_port is not None and args.http_port < 0:
        _LOG.error(f"error: --http-port must be >= 0, got {args.http_port}")
        return 2
    if args.record_interval <= 0:
        _LOG.error(
            f"error: --record-interval must be > 0, got {args.record_interval}"
        )
        return 2
    if args.record_window < 1 or args.trace_ring < 1:
        _LOG.error("error: --record-window and --trace-ring must be >= 1")
        return 2
    config = ServeConfig(
        listen=listen,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        store_backend=args.store_backend,
        retries=args.retries,
        unit_timeout=args.unit_timeout,
        slab_size=args.slab_size,
        pool=args.pool,
        quota=args.quota,
        max_finished_jobs=args.max_finished_jobs,
        http_port=args.http_port,
        http_host=args.http_host,
        record_interval=args.record_interval,
        record_window=args.record_window,
        trace_ring=args.trace_ring,
        flight_path=args.flight_record,
    )
    _obs_begin(args)
    try:
        return SweepServer(config).run()
    finally:
        _obs_finish(args)


def _top_snapshot(client) -> Dict:
    """One dashboard frame from a serve daemon's health + metrics ops."""
    health = client.health()
    telemetry = client.metrics(window=3)
    counters = telemetry["snapshot"]["counters"]
    gauges = telemetry["snapshot"].get("gauges", {})
    series = telemetry["series"]
    throughput: Dict[str, Optional[float]] = {
        "points_per_second": None,
        "jobs_per_second": None,
        "window_seconds": None,
    }
    if len(series) >= 2:
        prev, last = series[-2], series[-1]
        dt = last["ts"] - prev["ts"]
        if dt > 0:

            def rate(name: str) -> float:
                delta = last["counters"].get(name, 0) - prev["counters"].get(
                    name, 0
                )
                return round(delta / dt, 3)

            throughput = {
                "points_per_second": rate("serve.points_completed"),
                "jobs_per_second": rate("serve.jobs_completed"),
                "window_seconds": round(dt, 3),
            }
    if throughput["points_per_second"] is None:
        # Not enough samples yet (fresh daemon / long interval): fall
        # back to lifetime averages so --once always reports something.
        uptime = health.get("uptime_seconds") or 0
        if uptime > 0:
            throughput = {
                "points_per_second": round(
                    counters.get("serve.points_completed", 0) / uptime, 3
                ),
                "jobs_per_second": round(
                    counters.get("serve.jobs_completed", 0) / uptime, 3
                ),
                "window_seconds": uptime,
            }
    clients: Dict[str, Dict[str, float]] = {}
    prefix = "serve.client_points_completed{client="
    total_client_points = 0.0
    for name, value in counters.items():
        if name.startswith(prefix) and name.endswith("}"):
            clients[name[len(prefix):-1]] = {"points_completed": value}
            total_client_points += value
    for entry in clients.values():
        entry["share"] = round(
            entry["points_completed"] / total_client_points, 4
        ) if total_client_points else 0.0
    return {
        "address": client.address,
        "uptime_seconds": health.get("uptime_seconds"),
        "ready": health.get("ready"),
        "draining": health.get("draining"),
        "jobs": health.get("jobs", {}),
        "active_jobs": health.get("active_jobs"),
        "queue": health.get("queue", {}),
        "throughput": throughput,
        "latency": health.get("slo", {}),
        "clients": clients,
        "counters": counters,
        "gauges": gauges,
    }


def _fmt_latency(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1000:.1f}ms"


def _top_render(snap: Dict) -> List[str]:
    """Render one snapshot as the fixed-shape dashboard frame."""
    jobs = snap["jobs"]
    queue = snap["queue"]
    rate = snap["throughput"]
    gauges = snap.get("gauges", {})

    def slo_text(key: str) -> str:
        slo = snap["latency"].get(key, {})
        return "/".join(
            _fmt_latency(slo.get(q)) for q in ("p50", "p95", "p99")
        )

    pts = rate.get("points_per_second")
    clients = sorted(
        snap["clients"].items(),
        key=lambda item: -item[1]["points_completed"],
    )
    client_text = "   ".join(
        f"{name} {entry['share'] * 100:.0f}%" for name, entry in clients[:6]
    )
    return [
        f"repro top — {snap['address']}   up {snap['uptime_seconds']:.0f}s   "
        f"ready {'yes' if snap['ready'] else 'no'}   "
        f"draining {'yes' if snap['draining'] else 'no'}",
        "jobs      "
        + "   ".join(
            f"{state} {jobs.get(state, 0)}"
            for state in ("queued", "running", "done", "failed", "cancelled")
        ),
        f"queue     ready {queue.get('ready', 0)}   "
        f"in-flight {queue.get('in_flight', 0)}   "
        f"backlog {sum((queue.get('backlog') or {}).values())}   "
        f"preemptions {queue.get('preemptions', 0)}   "
        f"quota {queue.get('quota', 0)}",
        f"points    {snap['counters'].get('serve.points_requested', 0):.0f} "
        f"requested   "
        f"{snap['counters'].get('serve.points_completed', 0):.0f} done   "
        f"{snap['counters'].get('serve.points_coalesced', 0):.0f} coalesced   "
        f"{pts if pts is not None else 0:.1f} pts/s",
        f"latency   queue-wait {slo_text('queue_wait_seconds')}   "
        f"e2e {slo_text('e2e_seconds')}   "
        f"slab {slo_text('slab_seconds')}   (p50/p95/p99)",
        f"pool      workers {gauges.get('serve.pool_workers', 0):.0f}   "
        f"starts {gauges.get('serve.pool_starts', 0):.0f}   "
        f"warm reuses {gauges.get('serve.pool_reuses', 0):.0f}   "
        f"respawns {gauges.get('serve.worker_respawns', 0):.0f}   "
        f"in-flight pts {gauges.get('serve.in_flight_points', 0):.0f}",
        f"clients   {client_text or '-'}",
    ]


def _cmd_top(args: argparse.Namespace) -> int:
    """TTY dashboard over the serve daemon's health/metrics ops."""
    from repro.obs import MultiLineDisplay
    from repro.serve import ServeClient, ServeConnectionError, ServeError

    display = MultiLineDisplay()
    try:
        with ServeClient(args.server, client_name="cli-top") as client:
            while True:
                try:
                    snap = _top_snapshot(client)
                except (ServeError, ServeConnectionError) as exc:
                    _LOG.error(f"error: {exc}")
                    return 2
                if args.json:
                    print(json.dumps(snap, sort_keys=True))
                else:
                    display.render(_top_render(snap))
                if args.once:
                    return 0
                time.sleep(args.interval)
    except ServeConnectionError as exc:
        _LOG.error(f"error: {exc}")
        return 2
    except KeyboardInterrupt:
        return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro import bench

    if args.scenario:
        names = [s.strip() for s in args.scenario.split(",") if s.strip()]
        unknown = [n for n in names if n not in bench.SCENARIOS]
        if unknown:
            _LOG.error(
                f"unknown scenario(s) {', '.join(unknown)}; "
                f"choose from {', '.join(bench.SCENARIOS)}"
            )
            return 2
    elif args.fast:
        names = list(bench.FAST_SCENARIOS)
    else:
        names = list(bench.SCENARIOS)
    if args.repeat < 1:
        _LOG.error(f"error: --repeat must be >= 1, got {args.repeat}")
        return 2
    by_tier: Dict[str, List[str]] = {}
    for name in names:
        by_tier.setdefault(bench.tier_of(name), []).append(name)
    if args.output is not None and len(by_tier) > 1:
        _LOG.error(
            "error: --output names a single file but the selected scenarios "
            "span multiple tiers; select one tier or drop --output to use "
            "the per-tier defaults (BENCH_cycle.json / BENCH_interval.json "
            "/ BENCH_serve.json)"
        )
        return 2
    # One report file per tier; save-baseline and --check see all scenarios.
    combined: Dict = {"schema_version": None, "baseline": None, "scenarios": {}}
    for tier in bench.TIERS:
        if tier not in by_tier:
            continue
        report = bench.run_suite(
            scenarios=by_tier[tier],
            repeats=args.repeat,
            baseline_path=args.baseline,
            profile=args.profile,
        )
        out = args.output or bench.REPORT_FILES[tier]
        print(
            json.dumps(report, indent=2) if args.json
            else bench.format_report(report)
        )
        bench.write_report(report, out)
        _LOG.info(f"wrote {out}")
        combined["schema_version"] = report["schema_version"]
        combined["baseline"] = combined["baseline"] or report["baseline"]
        combined["scenarios"].update(report["scenarios"])
    if args.save_baseline:
        bench.save_baseline(combined, args.save_baseline, label=args.baseline_label)
        _LOG.info(f"recorded baseline: {args.save_baseline}")
    if args.check is not None:
        failures = bench.check_regressions(combined, max_regression=args.check)
        for message in failures:
            _LOG.error(f"perf regression: {message}")
        if failures:
            return 1
        _LOG.info(
            f"perf check passed: no scenario regressed more than "
            f"{args.check:.0%} vs baseline"
        )
    return 0


def _cmd_findings(_args: argparse.Namespace) -> int:
    from repro.experiments import findings

    ok = True
    for f in findings.evaluate_all():
        status = "PASS" if f.holds else "FAIL"
        ok = ok and f.holds
        print(f"Finding {f.number:2d} [{status}] {f.claim}")
        print(f"    {f.evidence}")
    return 0 if ok else 1


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.analysis.cpi_stacks import cpi_stack_table
    from repro.microarch.config import CORE_CONFIGS
    from repro.workloads.spec import all_profiles

    table = cpi_stack_table(
        all_profiles(), CORE_CONFIGS[args.core], co_runners=args.smt
    )
    print(table.formatted())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.analysis.validation import cross_validate
    from repro.microarch.config import BIG
    from repro.workloads.spec import all_profiles

    if args.sampling == "live":
        cv = cross_validate(
            all_profiles(),
            BIG,
            instructions=args.instructions,
            sampling="live",
        )
    else:
        cv = cross_validate(
            all_profiles(),
            BIG,
            instructions=args.instructions,
            sample_interval=args.sampling,
            sample_warmup=args.sampling_warmup,
        )
    print(f"{'benchmark':12s}{'interval':>10s}{'cycle':>8s}{'ratio':>7s}")
    for name in sorted(cv.interval_ipc):
        print(
            f"{name:12s}{cv.interval_ipc[name]:10.2f}"
            f"{cv.cycle_ipc[name]:8.2f}{cv.ratios[name]:7.2f}"
        )
    print(f"Spearman rank correlation: {cv.rank_correlation:.3f}")
    return 0 if cv.rank_correlation > 0.8 else 1


def _sampling_mode(text: str):
    """``--sampling`` value: an integer interval or the word 'live'."""
    if text.strip().lower() == "live":
        return "live"
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer interval or 'live', got {text!r}"
        )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a Chrome trace-event JSON file (load in Perfetto or "
        "chrome://tracing); includes spans from worker processes",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="write a JSON snapshot of counters/gauges/histograms",
    )
    progress = parser.add_mutually_exclusive_group()
    progress.add_argument(
        "--progress",
        action="store_true",
        dest="progress",
        default=None,
        help="show a live progress line with ETA on stderr (default: "
        "auto, only when stderr is a TTY)",
    )
    progress.add_argument(
        "--no-progress",
        action="store_false",
        dest="progress",
        help="never show the progress line",
    )


def _add_store_backend_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store-backend",
        default="dir",
        choices=("dir", "sqlite"),
        help="result store layout: one JSON file per record ('dir', the "
        "default) or sharded sqlite databases ('sqlite', better under "
        "concurrent writers such as the serve daemon)",
    )


def _add_pool_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--pool",
        default="persistent",
        choices=("persistent", "per-call"),
        help="worker pool lifetime: 'persistent' (the default) keeps warm "
        "workers alive across engine calls — modules imported once, "
        "worker-side model caches retained, crashed workers respawned "
        "individually; 'per-call' builds a fresh process pool for every "
        "engine call (the pre-warm-pool behaviour)",
    )


def _add_server_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--server",
        default=None,
        metavar="ADDR",
        help="evaluate through a running serve daemon instead of a local "
        "engine (unix:PATH, PATH, HOST:PORT or :PORT); output is "
        "byte-identical to local execution, and local engine flags "
        "(--jobs, --cache-dir, ...) are ignored",
    )


def _add_fault_tolerance_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="retry a failing grid point N times with exponential backoff "
        "before reporting it as a structured failure (default: 1)",
    )
    parser.add_argument(
        "--unit-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-unit wall-clock budget; a unit exceeding it counts as a "
        "failed attempt and is retried (default: no timeout)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'The Benefit of SMT in the Multi-Core Era' (ASPLOS 2014)",
    )
    parser.add_argument(
        "--log-level",
        default="info",
        choices=("debug", "info", "warning", "error"),
        help="status output verbosity on stderr (default: info)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit status output as JSON lines instead of text",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-designs", help="show the chip design space").set_defaults(
        func=_cmd_list_designs
    )
    sub.add_parser("list-benchmarks", help="show the workload suites").set_defaults(
        func=_cmd_list_benchmarks
    )
    sub.add_parser(
        "list-experiments", help="show reproducible tables/figures"
    ).set_defaults(func=_cmd_list_experiments)

    p_eval = sub.add_parser("evaluate", help="evaluate one mix on one design")
    p_eval.add_argument("--design", default="4B")
    p_eval.add_argument(
        "--mix", required=True, help="comma-separated benchmark names"
    )
    p_eval.add_argument("--no-smt", action="store_true")
    p_eval.set_defaults(func=_cmd_evaluate)

    p_curve = sub.add_parser("curve", help="STP vs thread count (ASCII chart)")
    p_curve.add_argument("--design", default="4B")
    p_curve.add_argument(
        "--kind", default="heterogeneous", choices=("homogeneous", "heterogeneous")
    )
    p_curve.add_argument("--max-threads", type=int, default=24)
    p_curve.add_argument("--no-smt", action="store_true")
    p_curve.set_defaults(func=_cmd_curve)

    p_fig = sub.add_parser("figure", help="regenerate a paper table/figure")
    p_fig.add_argument("id", help="e.g. fig03, fig15, table1, ext-acs")
    p_fig.add_argument("--json", action="store_true", help="machine-readable output")
    p_fig.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="evaluate grid points on N worker processes (engine mode)",
    )
    p_fig.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="persistent result store location (default: ~/.cache/repro; "
        "engine mode is enabled whenever this or --jobs > 1 is given)",
    )
    _add_fault_tolerance_flags(p_fig)
    _add_obs_flags(p_fig)
    _add_store_backend_flag(p_fig)
    _add_pool_flag(p_fig)
    _add_server_flag(p_fig)
    p_fig.set_defaults(func=_cmd_figure)

    p_sweep = sub.add_parser(
        "sweep",
        help="evaluate a design-space grid through the parallel engine",
    )
    p_sweep.add_argument(
        "--design",
        default="all",
        help="comma-separated design names, or 'all' (default)",
    )
    p_sweep.add_argument(
        "--kind",
        default="heterogeneous",
        choices=("homogeneous", "heterogeneous"),
    )
    p_sweep.add_argument("--max-threads", type=int, default=24)
    p_sweep.add_argument("--no-smt", action="store_true")
    p_sweep.add_argument(
        "--jobs", type=int, default=1, metavar="N", help="worker processes"
    )
    p_sweep.add_argument(
        "--slab-size",
        type=int,
        default=None,
        metavar="N",
        help="grid points per worker dispatch (default: 32 when --jobs > 1, "
        "per-point otherwise; 0 forces per-point dispatch)",
    )
    p_sweep.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="persistent result store location (default: ~/.cache/repro)",
    )
    p_sweep.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the persistent store (compute everything)",
    )
    _add_fault_tolerance_flags(p_sweep)
    _add_obs_flags(p_sweep)
    _add_store_backend_flag(p_sweep)
    _add_pool_flag(p_sweep)
    _add_server_flag(p_sweep)
    p_sweep.add_argument("--json", action="store_true", help="machine-readable output")
    p_sweep.set_defaults(func=_cmd_sweep)

    sub.add_parser(
        "list-scenarios", help="show the thread-count scenario catalog"
    ).set_defaults(func=_cmd_list_scenarios)

    p_explore = sub.add_parser(
        "explore",
        help="adaptive design search on a scenario (successive halving)",
    )
    p_explore.add_argument(
        "--scenario",
        required=True,
        help="scenario name (see 'repro list-scenarios')",
    )
    p_explore.add_argument(
        "--design",
        default="all",
        help="comma-separated candidate design names, or 'all' (default)",
    )
    p_explore.add_argument(
        "--kind",
        default="heterogeneous",
        choices=("homogeneous", "heterogeneous"),
    )
    p_explore.add_argument("--max-threads", type=int, default=24)
    p_explore.add_argument("--no-smt", action="store_true")
    p_explore.add_argument(
        "--seed",
        type=int,
        default=42,
        help="seeds the scenario trace and the GA (default: 42)",
    )
    p_explore.add_argument(
        "--eta",
        type=int,
        default=3,
        metavar="N",
        help="keep 1/N of the candidates per rung; fidelity grows by N "
        "per rung (default: 3)",
    )
    p_explore.add_argument(
        "--min-counts",
        type=int,
        default=4,
        metavar="N",
        help="thread counts evaluated at rung 0, most probable first "
        "(default: 4)",
    )
    p_explore.add_argument(
        "--min-mixes",
        type=int,
        default=3,
        metavar="N",
        help="mixes per thread count at rung 0 (default: 3)",
    )
    p_explore.add_argument(
        "--budget",
        type=float,
        default=0.2,
        metavar="FRACTION",
        help="evaluation ceiling as a fraction of the full grid; bounds "
        "tie escalation and GA refinement (default: 0.2)",
    )
    p_explore.add_argument(
        "--ga",
        type=int,
        default=0,
        metavar="ROUNDS",
        help="GA refinement rounds over the full power-budget composition "
        "space, seeded by the halving winner (default: 0 = off; raise "
        "--budget to give it room)",
    )
    p_explore.add_argument(
        "--jobs", type=int, default=1, metavar="N", help="worker processes"
    )
    p_explore.add_argument(
        "--slab-size",
        type=int,
        default=None,
        metavar="N",
        help="grid points per worker dispatch (default: 32 when --jobs > 1, "
        "per-point otherwise; 0 forces per-point dispatch)",
    )
    p_explore.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="persistent result store location (default: ~/.cache/repro)",
    )
    p_explore.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the persistent store (compute everything)",
    )
    _add_fault_tolerance_flags(p_explore)
    _add_obs_flags(p_explore)
    _add_store_backend_flag(p_explore)
    _add_pool_flag(p_explore)
    _add_server_flag(p_explore)
    p_explore.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_explore.set_defaults(func=_cmd_explore)

    p_cache = sub.add_parser("cache", help="inspect or clear the result store")
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cache_stats = cache_sub.add_parser(
        "stats", help="store contents and last engine run summary"
    )
    p_cache_stats.add_argument("--cache-dir", default=None, metavar="PATH")
    p_cache_stats.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    _add_store_backend_flag(p_cache_stats)
    p_cache_stats.set_defaults(func=_cmd_cache)
    p_cache_clear = cache_sub.add_parser("clear", help="evict every stored record")
    p_cache_clear.add_argument("--cache-dir", default=None, metavar="PATH")
    _add_store_backend_flag(p_cache_clear)
    p_cache_clear.set_defaults(func=_cmd_cache)

    p_serve = sub.add_parser(
        "serve",
        help="run the resident evaluation daemon (async job API over a "
        "unix socket or TCP; see docs/serving.md)",
    )
    listen_group = p_serve.add_mutually_exclusive_group(required=False)
    listen_group.add_argument(
        "--socket", default=None, metavar="PATH", help="unix socket to listen on"
    )
    listen_group.add_argument(
        "--port", type=int, default=None, metavar="N", help="TCP port to listen on"
    )
    p_serve.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="HOST",
        help="TCP bind address with --port (default: 127.0.0.1)",
    )
    p_serve.add_argument(
        "--jobs", type=int, default=1, metavar="N", help="worker processes"
    )
    p_serve.add_argument(
        "--slab-size",
        type=int,
        default=32,
        metavar="N",
        help="grid points per dispatch slab — the preemption granularity "
        "(default: 32)",
    )
    p_serve.add_argument(
        "--quota",
        type=int,
        default=4,
        metavar="N",
        help="max slabs admitted per client at once; the rest queue "
        "fairly (default: 4)",
    )
    p_serve.add_argument(
        "--max-finished-jobs",
        type=int,
        default=512,
        metavar="N",
        help="terminal jobs kept for poll/wait before eviction; 0 keeps "
        "all (default: 512)",
    )
    p_serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="persistent result store location (default: ~/.cache/repro)",
    )
    p_serve.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the persistent store (compute everything)",
    )
    p_serve.add_argument(
        "--http-port",
        type=int,
        default=None,
        metavar="N",
        help="also serve Prometheus-format /metrics and /healthz over "
        "HTTP on this port (0 picks an ephemeral port; see "
        "docs/observability.md)",
    )
    p_serve.add_argument(
        "--http-host",
        default="127.0.0.1",
        metavar="HOST",
        help="bind address for --http-port (default: 127.0.0.1)",
    )
    p_serve.add_argument(
        "--record-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="time-series recorder sampling interval (default: 1.0)",
    )
    p_serve.add_argument(
        "--record-window",
        type=int,
        default=512,
        metavar="N",
        help="time-series samples kept in the ring (default: 512)",
    )
    p_serve.add_argument(
        "--trace-ring",
        type=int,
        default=2048,
        metavar="N",
        help="spans held by the continuous tracer, drainable live via "
        "the trace op (default: 2048)",
    )
    p_serve.add_argument(
        "--flight-record",
        default=None,
        metavar="FILE",
        help="write a flight record (recent spans + time series + "
        "metrics) to FILE on SIGUSR1 and when the drain completes",
    )
    _add_fault_tolerance_flags(p_serve)
    _add_obs_flags(p_serve)
    _add_store_backend_flag(p_serve)
    _add_pool_flag(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_top = sub.add_parser(
        "top",
        help="live dashboard for a running serve daemon: jobs by state, "
        "queue depths, points/s throughput, latency percentiles and "
        "per-client shares (use --once --json for scripting)",
    )
    p_top.add_argument(
        "--server",
        required=True,
        metavar="ADDR",
        help="serve daemon address (unix:PATH, PATH, HOST:PORT or :PORT)",
    )
    p_top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period (default: 2.0)",
    )
    p_top.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit",
    )
    p_top.add_argument(
        "--json",
        action="store_true",
        help="emit each frame as one JSON object on stdout",
    )
    p_top.set_defaults(func=_cmd_top)

    p_bench = sub.add_parser(
        "bench",
        help="time the cycle-level and interval tiers; writes "
        "BENCH_cycle.json and BENCH_interval.json",
    )
    p_bench.add_argument(
        "--scenario",
        default=None,
        metavar="NAME[,NAME]",
        help="run only these scenarios (default: all)",
    )
    p_bench.add_argument(
        "--fast",
        action="store_true",
        help="run only the fast scenarios used by the CI perf gate",
    )
    p_bench.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="repeats per scenario; best wall time wins (default: 1)",
    )
    p_bench.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="report file when a single tier is selected (default: "
        "BENCH_cycle.json / BENCH_interval.json per tier)",
    )
    p_bench.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline to compute speedups against "
        "(default: benchmarks/perf/baseline.json)",
    )
    p_bench.add_argument(
        "--save-baseline",
        default=None,
        metavar="FILE",
        help="also record these numbers as a new baseline file",
    )
    p_bench.add_argument(
        "--baseline-label",
        default="seed",
        metavar="LABEL",
        help="label stored in --save-baseline (default: seed)",
    )
    p_bench.add_argument(
        "--profile",
        action="store_true",
        help="additionally run each scenario under cProfile and log the "
        "top-20 cumulative hotspots",
    )
    p_bench.add_argument(
        "--check",
        type=float,
        default=None,
        nargs="?",
        const=0.25,
        metavar="FRACTION",
        help="exit non-zero if any scenario's instr/sec falls more than "
        "this fraction below the baseline (default when given: 0.25); "
        "the CI perf gate runs with this flag",
    )
    p_bench.add_argument("--json", action="store_true", help="machine-readable output")
    p_bench.set_defaults(func=_cmd_bench)

    sub.add_parser("findings", help="evaluate the 11 findings").set_defaults(
        func=_cmd_findings
    )

    p_char = sub.add_parser(
        "characterize", help="CPI stacks for the benchmark suite"
    )
    p_char.add_argument(
        "--core", default="big", choices=("big", "medium", "small")
    )
    p_char.add_argument(
        "--smt", type=int, default=0, metavar="N", help="co-runners sharing the core"
    )
    p_char.set_defaults(func=_cmd_characterize)

    p_val = sub.add_parser(
        "validate", help="cross-validate interval vs cycle tiers"
    )
    p_val.add_argument("--instructions", type=int, default=15_000)
    p_val.add_argument(
        "--sampling",
        type=_sampling_mode,
        default=None,
        metavar="INTERVAL|live",
        help="run the cycle tier in sampled mode: an integer is a "
        "per-thread periodic sampling interval (instructions), 'live' "
        "enables adaptive live sampling (online phase detector + error "
        "controller, no interval to tune); detailed windows plus "
        "functionally-warmed fast-forward instead of full simulation "
        "(see docs/performance.md)",
    )
    p_val.add_argument(
        "--sampling-warmup",
        type=int,
        default=600,
        metavar="N",
        help="minimum detailed-window half-size for sampled mode "
        "(window = max(2*N, INTERVAL/4); default: 600)",
    )
    p_val.set_defaults(func=_cmd_validate)

    p_rep = sub.add_parser(
        "report", help="regenerate every experiment into one markdown report"
    )
    p_rep.add_argument("--output", default="reproduction_report.md")
    p_rep.add_argument(
        "--heavy", action="store_true", help="include the slow ext-* experiments"
    )
    p_rep.set_defaults(func=_cmd_report)
    return parser


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    text = generate_report(heavy_extensions=args.heavy)
    with open(args.output, "w") as handle:
        handle.write(text)
    print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(level=args.log_level, json_mode=args.log_json)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())

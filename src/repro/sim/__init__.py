"""Cycle-level trace-driven simulator (the detailed validation tier).

``ooo`` and ``inorder`` model single cores with SMT; ``multicore`` composes
cores with the stateful memory hierarchy of :mod:`repro.memory`.  The
design-space study itself runs on the fast interval tier
(:mod:`repro.interval`); this tier exists to cross-validate it and to give
downstream users a mechanistic reference model.
"""

from repro.sim.multicore import MulticoreSimulator, SimulationResult, ThreadSim
from repro.sim.results import CoreSimStats

__all__ = [
    "MulticoreSimulator",
    "SimulationResult",
    "ThreadSim",
    "CoreSimStats",
]

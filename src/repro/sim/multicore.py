"""Multi-core cycle-level simulator.

Composes :class:`~repro.sim.core.PipelineCore` instances with one shared
:class:`~repro.memory.hierarchy.MemoryHierarchy` and steps all cores in
lockstep cycles, so LLC capacity, DRAM banks and the off-chip bus are
contended with real state and real timing.

This is the detailed tier: use it for validation, microbenchmarks and unit
tests.  The design-space study (Figures 3-17) runs on the interval tier,
exactly as the paper ran Sniper rather than a cycle-accurate RTL model.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.designs import ChipDesign
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.core import _NEVER, PipelineCore
from repro.sim.results import CoreSimStats
from repro.util import check_positive
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.tracegen import TraceGenerator, TraceInstruction


@dataclass(frozen=True)
class ThreadSim:
    """One software thread to simulate: a profile pinned to a core."""

    profile: BenchmarkProfile
    core_index: int
    seed: int = 7


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of a cycle-level multi-core run."""

    design_name: str
    #: Per (core_index, thread slot) statistics, flattened in core order.
    thread_stats: Tuple[Tuple[int, CoreSimStats], ...]
    total_cycles: int
    dram_mean_latency_ns: float
    dram_requests: int

    def ipc_of(self, flat_index: int) -> float:
        return self.thread_stats[flat_index][1].ipc

    @property
    def total_ipc(self) -> float:
        return sum(stats.ipc for _idx, stats in self.thread_stats)


class MulticoreSimulator:
    """Trace-driven cycle-level simulation of a full chip design.

    ``fetch_policy`` ("roundrobin"/"icount") selects SMT dispatch priority;
    ``prefetcher`` (None/"nextline"/"stride") installs per-core data
    prefetchers.  Defaults match the paper's configuration.

    ``kernel`` picks the stepping implementation ("numpy"/"scalar", both
    bit-identical; default resolves ``$REPRO_SIM_KERNEL``) — see
    :mod:`repro.sim.kernel`.
    """

    def __init__(
        self,
        design: ChipDesign,
        fetch_policy: str = "roundrobin",
        prefetcher: Optional[str] = None,
        kernel: Optional[str] = None,
    ):
        self.design = design
        self.fetch_policy = fetch_policy
        self.prefetcher = prefetcher
        self.kernel = kernel

    def prepare(
        self,
        threads: Sequence[ThreadSim],
        instructions_per_thread: int = 20_000,
        warmup_instructions: Optional[int] = None,
    ) -> Tuple[MemoryHierarchy, List[PipelineCore]]:
        """Build the hierarchy and cores for a run (traces generated, caches
        warmed) without executing a single cycle.

        Split out of :meth:`run` so callers that time the simulation loop
        (``python -m repro bench``) or drive it in phases (sampled
        simulation) can reuse the exact same setup.
        """
        check_positive("instructions_per_thread", instructions_per_thread)
        if warmup_instructions is None:
            warmup_instructions = instructions_per_thread // 2
        if not threads:
            raise ValueError("need at least one thread")
        by_core: Dict[int, List[ThreadSim]] = {}
        for t in threads:
            if not 0 <= t.core_index < self.design.num_cores:
                raise ValueError(
                    f"core_index {t.core_index} out of range for design "
                    f"{self.design.name} ({self.design.num_cores} cores)"
                )
            by_core.setdefault(t.core_index, []).append(t)

        hierarchy = MemoryHierarchy(
            self.design.cores, self.design.uncore, prefetcher=self.prefetcher
        )
        cores: List[PipelineCore] = []
        flat_index = 0
        for core_index, specs in sorted(by_core.items()):
            traces = []
            for i, s in enumerate(specs):
                # Distinct address spaces per thread, like separate
                # processes (so co-runners contend rather than share data).
                gen = TraceGenerator(
                    s.profile,
                    seed=s.seed + 101 * i,
                    address_offset=flat_index << 40,
                )
                flat_index += 1
                hierarchy.warm(core_index, gen.warm_addresses())
                traces.append(
                    gen.generate(warmup_instructions + instructions_per_thread)
                )
            cores.append(
                PipelineCore(
                    self.design.cores[core_index],
                    core_index,
                    hierarchy,
                    traces,
                    warmup_instructions=warmup_instructions,
                    fetch_policy=self.fetch_policy,
                    kernel=self.kernel,
                )
            )
        return hierarchy, cores

    def execute(
        self,
        hierarchy: MemoryHierarchy,
        cores: List[PipelineCore],
        max_cycles: int = 50_000_000,
        fast_forward: bool = True,
    ) -> SimulationResult:
        """Step prepared ``cores`` in lockstep until every trace drains.

        ``fast_forward`` enables exact idle-cycle skipping: the clock jumps
        straight to the earliest cycle at which *any* core can commit,
        dispatch or finish, and only cores with an event due are stepped
        (in list order, exactly as the naive loop would reach them).  A
        core with no event due would execute a no-op step — commit finds
        nothing retirable, dispatch nothing eligible, and no shared
        (hierarchy/DRAM/bus) state is touched — so skipping it is
        bit-identical to the naive lockstep loop; a golden test asserts
        equality of every reported statistic between both modes.
        """
        if fast_forward:
            self._execute_fast(cores, max_cycles)
        else:
            self._execute_naive(cores, max_cycles)
        hierarchy.publish_metrics()

        flat: List[Tuple[int, CoreSimStats]] = []
        for core in cores:
            for thread in core.threads:
                flat.append((core.core_index, thread.stats))
        return SimulationResult(
            design_name=self.design.name,
            thread_stats=tuple(flat),
            # The naive loop's cycle counter equals the last-finishing
            # core's clock, which both modes leave at the same value.
            total_cycles=max(c.cycle for c in cores),
            dram_mean_latency_ns=hierarchy.dram.stats.mean_latency_ns,
            dram_requests=hierarchy.dram.stats.requests,
        )

    @staticmethod
    def _execute_naive(cores: List[PipelineCore], max_cycles: int) -> None:
        """Reference lockstep loop: every unfinished core steps every cycle."""
        cycle = 0
        while any(not c.finished for c in cores):
            if cycle >= max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles without draining"
                )
            for core in cores:
                if not core.finished:
                    core.step()
            cycle += 1

    @staticmethod
    def _execute_fast(cores: List[PipelineCore], max_cycles: int) -> None:
        """Event-driven lockstep: jump the clock between per-core events.

        Each core's next event depends only on its own state (ROB heads,
        fetch-stall deadlines, producer readiness), and that state only
        changes when the core itself steps — so events stay valid while a
        core waits, and stepping due cores in list order reproduces the
        naive interleaving of shared-hierarchy accesses exactly.

        Two span batchings on top of the event skip (both still exact):
        when a *single* core is due before every other core's event, it
        runs all its cycles up to that event in one
        :meth:`~repro.sim.core.PipelineCore.run_until` call (no other core
        would act in between); and a drained core is recognised by its
        event reaching the drain sentinel, so the loop never scans thread
        states to detect completion.
        """
        active = list(cores)
        events = [c.next_event_cycle() for c in active]
        while active:
            if len(active) == 1:
                # Solo core: run it to drain (or the cycle cap) directly.
                core = active[0]
                if events[0] >= max_cycles:
                    raise RuntimeError(
                        f"simulation exceeded {max_cycles} cycles without draining"
                    )
                core.cycle = events[0]
                if core.run_until(max_cycles) != _NEVER:
                    raise RuntimeError(
                        f"simulation exceeded {max_cycles} cycles without draining"
                    )
                return
            # Earliest event, second-earliest, and whether the earliest is
            # unique (one scan; core counts are small).
            target = _NEVER
            second = _NEVER
            for ev in events:
                if ev < target:
                    second = target
                    target = ev
                elif ev < second:
                    second = ev
            if target >= max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles without draining"
                )
            if second > target:
                # Exactly one core due: batch its whole span up to the next
                # other-core event into one call.
                i = events.index(target)
                core = active[i]
                core.cycle = target
                ev = core.run_until(second if second < max_cycles else max_cycles)
                if ev == _NEVER:
                    del active[i]
                    del events[i]
                else:
                    events[i] = ev
                continue
            # Several cores due at `target`: step them in list order.
            i = 0
            while i < len(active):
                if events[i] <= target:
                    core = active[i]
                    core.cycle = target
                    core.step()
                    ev = core.next_event_cycle()
                    if ev == _NEVER:
                        del active[i]
                        del events[i]
                        continue
                    events[i] = ev
                i += 1

    def run(
        self,
        threads: Sequence[ThreadSim],
        instructions_per_thread: int = 20_000,
        warmup_instructions: Optional[int] = None,
        max_cycles: int = 50_000_000,
        sample_interval: Optional[int] = None,
        sample_warmup: int = 600,
        sampling=None,
    ) -> SimulationResult:
        """Simulate ``threads`` for a fixed instruction budget each.

        Each thread's trace is generated deterministically from its profile
        and seed, prefixed with ``warmup_instructions`` (default: half the
        measured budget) whose cold misses are excluded from the reported
        statistics — the trace-driven analogue of the paper's SimPoint
        fast-forwarding.  Cores advance in lockstep; a core whose threads
        finish early simply idles (its caches stay warm, matching the
        paper's methodology of restarting finished programs only for
        throughput runs — rate metrics use per-thread IPC, so idling is
        equivalent and cheaper).

        ``sample_interval`` switches to sampled simulation (see
        :mod:`repro.sim.sampling`): per-thread periods of that many
        instructions are simulated as a detailed window plus a
        functionally-warmed fast-forward, with the skipped spans'
        cycles reconstructed by an event-priced model fitted to the
        measured windows; ``sample_warmup`` sizes the minimum detailed
        window (``max(2 * warmup, interval // 4)``).  Reported CPI/IPC
        become estimates (held within 3 % of full runs by the test suite
        at the default knobs on single-thread validation workloads).

        ``sampling`` is the newer front door: an ``int`` is a periodic
        interval (same as ``sample_interval``), ``"live"`` (or a
        :class:`~repro.sim.sampling.LiveSamplingConfig`) switches to
        adaptive live sampling — an online phase detector and error
        controller size the detailed windows and fast-forward spans, so
        there is no interval to tune.
        """
        live_config = None
        if sampling is not None:
            if sample_interval is not None:
                raise ValueError(
                    "pass either sampling= or sample_interval=, not both"
                )
            from repro.sim.sampling import LiveSamplingConfig

            if isinstance(sampling, LiveSamplingConfig):
                live_config = sampling
            elif sampling == "live":
                live_config = LiveSamplingConfig()
            elif isinstance(sampling, int) and not isinstance(sampling, bool):
                sample_interval = sampling
            else:
                raise ValueError(
                    f'sampling must be "live", an interval (int), or a '
                    f"LiveSamplingConfig, got {sampling!r}"
                )
        hierarchy, cores = self.prepare(
            threads, instructions_per_thread, warmup_instructions
        )
        if live_config is not None:
            from repro.sim.sampling import execute_sampled_live

            sampled, total_cycles, _diag = execute_sampled_live(
                hierarchy, cores, live_config, max_cycles
            )
            hierarchy.publish_metrics()
            return SimulationResult(
                design_name=self.design.name,
                thread_stats=tuple(
                    (core_index, thread.stats)
                    for core_index, thread in sampled
                ),
                total_cycles=total_cycles,
                dram_mean_latency_ns=hierarchy.dram.stats.mean_latency_ns,
                dram_requests=hierarchy.dram.stats.requests,
            )
        if sample_interval is None:
            return self.execute(hierarchy, cores, max_cycles)
        from repro.sim.sampling import SamplingConfig, execute_sampled

        config = SamplingConfig(interval=sample_interval, warmup=sample_warmup)
        sampled, total_cycles = execute_sampled(
            hierarchy, cores, config, max_cycles
        )
        hierarchy.publish_metrics()
        return SimulationResult(
            design_name=self.design.name,
            thread_stats=tuple(
                (core_index, thread.stats) for core_index, thread in sampled
            ),
            total_cycles=total_cycles,
            dram_mean_latency_ns=hierarchy.dram.stats.mean_latency_ns,
            dram_requests=hierarchy.dram.stats.requests,
        )

"""Sampled cycle-level simulation (Pac-Sim style periodic sampling).

Full cycle-level runs simulate every instruction in detail.  Sampled runs
split each thread's instruction stream into periods of ``interval``
instructions: a **detailed window** at the head of each period is simulated
cycle by cycle on the real pipeline, and the remainder is **fast-forwarded
with functional warming** — caches and branch predictors see every
reference through the real access paths, but no cycles elapse and no
timing state is touched.

Two properties make the estimate sharp:

* **Detailed windows are exact, not extrapolated.**  The clock does not
  advance while fast-forwarding, so the pipeline continues seamlessly from
  one window into the next — in-flight completion times stay valid, there
  is no drain/refill transient to discard, and every cycle spent inside a
  window is *measured*, not modelled.  Only the fast-forwarded spans are
  estimated.
* **Skipped spans are event-priced, not flat-rated.**  The synthetic
  traces have large short-range CPI variance, mostly driven by memory
  misses and branch-mispredict clusters — and functional warming *counts
  those events exactly* in the skipped spans (it runs the real cache and
  predictor state machines).  Span cycles are reconstructed with a
  per-thread model::

      cycles  ≈  a · instructions  +  s · stall_score

  where ``stall_score`` weighs each counted event (L2/LLC/DRAM data
  access, branch mispredict) by its *architectural* latency, and only the
  two scalars ``a`` (base CPI) and ``s`` (effective stall exposure, which
  absorbs memory-level parallelism and overlap) are fitted to the measured
  windows.  Fixing the event-cost ratios to the architecture keeps the fit
  stable with a handful of windows — fitting a free slope per event would
  chase burst noise.  The fit is rescaled so the model reproduces the
  measured window totals exactly, and degrades gracefully to whole-window
  CPI extrapolation when a thread shows no stall-score variance.

The initial trace warm-up prefix (cold-cache exclusion in full runs) is
handled per policy: periodic sampling replaces it entirely by functional
warming — same architectural effect at near-zero cost — while live
sampling lets the prefix participate in the sampling loop at its natural
rate, preserving the wall-clock staggering with which threads enter their
measured regions (an accounting boundary keeps prefix cycles and events
out of the estimate).  ``warmup`` sizes the minimum detailed window
(``window = max(2 * warmup, interval // 4)``) so the fast-forward boundary
(stale dependence ring, leftover in-flight ROB entries) is amortized over
a long measured region.

Two sampling policies share this machinery:

* **Periodic** (:class:`SamplingConfig`, :func:`execute_sampled`) — fixed
  interval and window, chosen up front.  Predictable cost, and the mode
  the accuracy contract in ``tests/test_sampling.py`` validates knobs for.
* **Live** (:class:`LiveSamplingConfig`, :func:`execute_sampled_live`) —
  Pac-Sim-style adaptive sampling: an online *phase detector* compares
  each detailed window's architectural signature (CPI plus L2/LLC/DRAM
  and mispredict rates per instruction) against a smoothed reference, and
  a per-window *error controller* tracks how well the span model would
  have predicted the window it just measured.  Stable phase and low
  model error grow the fast-forward span geometrically; a phase change
  or rising error collapses it, re-sampling the new behaviour
  immediately.  No interval/warmup knobs to tune per workload — the run
  spends detail where the trace actually changes.

Sampling is an *approximation*: reported per-thread cycle counts are
estimates (``tests/test_sampling.py`` holds CPI error against full
simulation on the validation-tier workloads), and cache/mispredict
counters cover only the detailed windows.  Use full runs when exact
statistics matter; use sampling to make long validation sweeps cheap.
"""

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.core import PipelineCore, SimThread


@dataclass(frozen=True)
class SamplingConfig:
    """Knobs for sampled simulation.

    Parameters
    ----------
    interval:
        Per-thread instructions in one sampling period (detailed window
        plus fast-forwarded span).
    warmup:
        Sizes the minimum detailed window: the window is at least twice
        this, so fast-forward boundary artifacts stay a small fraction of
        every measured region.
    """

    interval: int
    warmup: int = 150

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError(f"interval must be >= 1, got {self.interval}")
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.window >= self.interval:
            raise ValueError(
                f"sampling interval {self.interval} leaves no room to "
                f"fast-forward past the detailed window ({self.window}); "
                "use a larger interval or a smaller warmup"
            )

    @property
    def window(self) -> int:
        """Detailed-window length: a quarter of the period, but at least
        twice the warm-up so boundary artifacts are amortized."""
        return max(2 * self.warmup, self.interval // 4, 1)


@dataclass(frozen=True)
class LiveSamplingConfig:
    """Knobs for live (adaptive) sampled simulation.

    Unlike :class:`SamplingConfig` there is no per-workload interval to
    tune: the controller starts cautious (``min_span``) and lets stable,
    well-predicted behaviour earn longer fast-forwards.

    Parameters
    ----------
    target_error:
        Smoothed per-window model-error budget.  While the exponentially
        weighted error stays below this, spans may grow; above it they
        shrink.
    warmup / min_window / max_window:
        ``max(2 * warmup, min_window)`` sizes the *base* detailed
        window; unstable or poorly-predicted behaviour grows the window
        up to ``max_window`` (longer measurements stabilize both the
        signature and the span model).
    min_span / max_span:
        Bounds on one fast-forwarded span (instructions per thread).
    phase_threshold:
        Relative signature distance that declares a phase change
        (0.25 = a 25 % shift in CPI or any event rate).
    grow / shrink:
        Geometric span factors: multiply by ``grow`` while stable, divide
        by ``shrink`` on a phase change or error overrun (shrinking
        faster than growing keeps mispredicted phases cheap).
    error_smoothing:
        EWMA weight of the newest window's model error.
    jitter_seed:
        Seed of the deterministic span jitter (runs are reproducible;
        vary the seed to probe estimator variance).
    max_skip:
        Hard cap on the warmed fraction of the measured region,
        regardless of how well the span model scores.  Two error modes
        are invisible to the model's own generalization estimate: *span
        mispricing* (windows predicting windows says nothing about
        regions that were never measured) and, on multi-thread chips,
        *alignment drift* (mispriced skips slide cursors out of step, so
        later windows co-run regions that never coexist and shared-cache
        contention lands in the wrong place).  Both scale with the
        skipped fraction, so bounding it bounds them.  Most of live
        sampling's speed comes from skipping the warm-up prefix — which
        does not count against this cap — so the cap costs little
        (``>= 1`` disables it).
    """

    target_error: float = 0.02
    warmup: int = 250
    min_window: int = 500
    max_window: int = 2_000
    min_span: int = 500
    max_span: int = 8_000
    phase_threshold: float = 0.25
    grow: float = 2.0
    shrink: float = 4.0
    error_smoothing: float = 0.4
    jitter_seed: int = 0x5EED
    max_skip: float = 0.10

    def __post_init__(self) -> None:
        if not 0.0 < self.target_error < 1.0:
            raise ValueError(
                f"target_error must be in (0, 1), got {self.target_error}"
            )
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.min_window < 1:
            raise ValueError(
                f"min_window must be >= 1, got {self.min_window}"
            )
        if self.min_span < 1:
            raise ValueError(f"min_span must be >= 1, got {self.min_span}")
        if self.max_span < self.min_span:
            raise ValueError(
                f"max_span ({self.max_span}) must be >= min_span "
                f"({self.min_span})"
            )
        if self.max_window < self.window:
            raise ValueError(
                f"max_window ({self.max_window}) must be >= the base "
                f"window ({self.window})"
            )
        if self.phase_threshold <= 0.0:
            raise ValueError(
                f"phase_threshold must be > 0, got {self.phase_threshold}"
            )
        if self.grow < 1.0 or self.shrink < 1.0:
            raise ValueError(
                f"grow and shrink must be >= 1, got {self.grow}/{self.shrink}"
            )
        if not 0.0 < self.error_smoothing <= 1.0:
            raise ValueError(
                f"error_smoothing must be in (0, 1], got "
                f"{self.error_smoothing}"
            )
        if self.max_skip <= 0.0:
            raise ValueError(
                f"max_skip must be > 0, got {self.max_skip}"
            )

    @property
    def window(self) -> int:
        """Detailed-window length (same shape as the periodic mode's)."""
        return max(2 * self.warmup, self.min_window, 1)


@dataclass(frozen=True)
class LiveSamplingDiagnostics:
    """What the live controller actually did during one run."""

    #: Detailed-window rounds executed (lockstep across the chip).
    windows: int
    #: Instructions simulated in detail vs. functionally warmed, counting
    #: only each thread's measured region — the warm-up prefix rides
    #: along in the live loop (detailed or warmed as the controller
    #: decides) but its instructions appear in neither figure.
    detailed_instructions: int
    warmed_instructions: int
    #: Phase changes declared across all threads.
    phase_changes: int
    #: Worst per-thread smoothed model error at the end of the run.
    max_model_error: float

    @property
    def detailed_fraction(self) -> float:
        total = self.detailed_instructions + self.warmed_instructions
        return self.detailed_instructions / total if total else 1.0


def _event_weights(core: PipelineCore) -> Tuple[float, float, float, float]:
    """Architectural cycle costs of (l2, llc, dram, mispredict) events.

    These fix the *ratios* between event costs in the extrapolation model;
    the fitted exposure scalar absorbs overlap, queueing and MLP, so only
    the relative magnitudes need to be right.
    """
    cfg = core.core
    freq = cfg.frequency_ghz
    hierarchy = core.hierarchy
    w_l2 = float(cfg.l2.latency_cycles)
    w_llc = hierarchy._llc_hit_ns() * freq
    dram = hierarchy.dram
    w_dram = w_llc + (
        dram.config.access_latency_ns + dram.transfer_ns
    ) * freq
    w_mp = float(cfg.frontend_depth + 2)
    return (w_l2, w_llc, w_dram, w_mp)


class _ThreadSampleState:
    """Measurement bookkeeping for one hardware thread."""

    __slots__ = (
        "budget",
        "width",
        "weights",
        "boundary",
        "window_start",
        "win_cycle0",
        "win_levels0",
        "win_mispred0",
        "win_active",
        "windows",
        "spans",
        "detailed_cycles",
        "last_window_events",
        "span_anchors",
    )

    def __init__(
        self,
        budget: int,
        width: int,
        weights: Tuple[float, float, float, float],
        boundary: int = 0,
    ):
        self.budget = budget  # post-prefix instructions to account for
        self.width = width
        self.weights = weights
        #: Absolute cursor where accounting starts (end of the warm-up
        #: prefix).  Windows and spans before it still train the model and
        #: the controller, but contribute nothing to the cycle estimate —
        #: matching a full run, which simulates the prefix in detail and
        #: subtracts its statistics.
        self.boundary = boundary
        self.window_start = 0
        self.win_cycle0 = 0
        self.win_levels0 = (0, 0, 0)
        self.win_mispred0 = 0
        self.win_active = True
        #: Per detailed window: (instructions, cycles, stall_score) — the
        #: fitting data for the event-cost model.
        self.windows: List[Tuple[int, int, float]] = []
        #: Per fast-forwarded span: (instructions, stall_score) — the
        #: regions whose cycles the model reconstructs.
        self.spans: List[Tuple[int, float]] = []
        #: Measured-region cycles spent in detailed windows — *exact*,
        #: not estimated (the pipeline runs continuously through them);
        #: fractional at the boundary window.
        self.detailed_cycles = 0.0
        #: For live sampling: how many windows had closed when each span
        #: was warmed (parallel to ``spans``) — anchors spans to the
        #: windows measured around them for phase-local pricing.
        self.span_anchors: List[int] = []
        #: Raw counters of the most recently closed window —
        #: ``(instructions, cycles, l2, llc, dram, mispredicts)`` — for
        #: the live controller's phase signature; ``None`` until a window
        #: with instructions closes (cleared when the next one opens).
        self.last_window_events: Optional[
            Tuple[int, int, int, int, int, int]
        ] = None

    def stall_score(self, l2: int, llc: int, dram: int, mispred: int) -> float:
        w_l2, w_llc, w_dram, w_mp = self.weights
        return w_l2 * l2 + w_llc * llc + w_dram * dram + w_mp * mispred

    # -- window edges ------------------------------------------------------ #

    def _levels(self, thread: SimThread) -> Tuple[int, int, int]:
        hits = thread.stats.level_hits
        return (hits.get("l2", 0), hits.get("llc", 0), hits.get("dram", 0))

    def open_window(self, thread: SimThread, cycle: int) -> None:
        self.window_start = thread.cursor
        self.win_cycle0 = cycle
        self.win_levels0 = self._levels(thread)
        self.win_mispred0 = thread.stats.branch_mispredicts
        self.win_active = thread.done_cycle is None
        self.last_window_events = None

    def close_window(self, thread: SimThread, cycle: int) -> None:
        if not self.win_active:
            return
        end = thread.done_cycle if thread.done_cycle is not None else cycle
        cycles = max(0, end - self.win_cycle0)
        instr = thread.cursor - self.window_start
        snap = thread._warm_snapshot
        if thread.cursor > self.boundary:
            if self.window_start < self.boundary:
                # The accounting boundary was crossed inside this window.
                # The dispatch path snapshots the exact crossing cycle
                # (:meth:`SimThread.maybe_snapshot`); interpolation is
                # only a fallback.
                if snap is not None:
                    self.detailed_cycles += max(0, end - snap[1])
                elif instr > 0:
                    frac = (thread.cursor - self.boundary) / instr
                    self.detailed_cycles += cycles * frac
            else:
                self.detailed_cycles += cycles
        if instr > 0:
            l2, llc, dram = self._levels(thread)
            mispred = thread.stats.branch_mispredicts - self.win_mispred0
            if thread.done_cycle is not None and snap is not None:
                # The thread drained inside this window, so
                # ``finalize_stats`` already subtracted the pre-boundary
                # counters from the cumulative stats; undo that for the
                # in-window deltas.
                levels0 = snap[3]
                l2 += levels0.get("l2", 0)
                llc += levels0.get("llc", 0)
                dram += levels0.get("dram", 0)
                mispred += snap[2]
            l20, llc0, dram0 = self.win_levels0
            d_l2, d_llc, d_dram = l2 - l20, llc - llc0, dram - dram0
            score = self.stall_score(d_l2, d_llc, d_dram, mispred)
            self.windows.append((instr, cycles, score))
            self.last_window_events = (
                instr, cycles, d_l2, d_llc, d_dram, mispred
            )
        if thread.done_cycle is not None:
            self.win_active = False

    def record_span(
        self,
        thread: SimThread,
        warmed: int,
        l2: int,
        llc: int,
        dram: int,
        mispred: int,
    ) -> None:
        """Account one just-warmed span, clipped to the measured region.

        A span entirely inside the warm-up prefix costs nothing (the full
        run subtracts the prefix too); a straddling span contributes its
        post-boundary portion with the stall score scaled pro rata.
        """
        end = thread.cursor
        if end <= self.boundary:
            return
        score = self.stall_score(l2, llc, dram, mispred)
        start = end - warmed
        if start < self.boundary:
            frac = (end - self.boundary) / warmed
            self.spans.append((end - self.boundary, score * frac))
        else:
            self.spans.append((warmed, score))
        self.span_anchors.append(len(self.windows))

    # -- extrapolation ---------------------------------------------------- #

    def span_pricer(self) -> Optional[Tuple[float, float]]:
        """The rescaled global ``(base, exposure)`` span-pricing model.

        ``None`` until at least three windows have been measured — the
        same fit :meth:`estimated_cycles` uses, exposed so the live loop
        can *pace* functional warming with the model that will later
        price it (see the model-guided warming note in
        :func:`execute_sampled_live`).
        """
        if len(self.windows) < 3:
            return None
        measured_instr = sum(w[0] for w in self.windows)
        measured_cycles = sum(w[1] for w in self.windows)
        measured_score = sum(w[2] for w in self.windows)
        if measured_instr <= 0:
            return None
        base, exposure = _fit_model(self.windows, floor=0.5 / self.width)
        predicted = base * measured_instr + exposure * measured_score
        if predicted > 0.0:
            k = measured_cycles / predicted
            base *= k
            exposure *= k
        return base, exposure

    def estimated_cycles(self) -> int:
        """Exact detailed-window cycles plus event-priced span estimates."""
        span_instr = sum(s[0] for s in self.spans)
        if span_instr <= 0:
            # Everything in the measured region was detailed.
            return max(1, int(round(self.detailed_cycles)))
        measured_instr = sum(w[0] for w in self.windows)
        measured_cycles = sum(w[1] for w in self.windows)
        measured_score = sum(w[2] for w in self.windows)
        if measured_instr <= 0:
            # Degenerate: no window recorded any instructions; assume one
            # cycle per skipped instruction.
            return max(1, int(round(self.detailed_cycles + span_instr)))
        base, exposure = _fit_model(self.windows, floor=0.5 / self.width)
        # Rescale so the model reproduces the measured totals exactly: any
        # systematic misfit then cancels between windows and spans.
        predicted = base * measured_instr + exposure * measured_score
        if predicted > 0.0:
            k = measured_cycles / predicted
            base *= k
            exposure *= k
        estimate = float(self.detailed_cycles)
        for instr, score in self.spans:
            estimate += base * instr + exposure * score
        return max(1, int(round(estimate)))

    def estimated_cycles_local(self) -> int:
        """Like :meth:`estimated_cycles`, but each span is priced by the
        windows measured just around it rather than one global fit.

        Live sampling's estimator: when the phase detector has seen the
        behaviour change across the run, a single global model misprices
        the spans inside each phase (it blends phases that never coexist);
        the windows bracketing a span were measured in the *same* phase,
        so a local fit — degrading to plain local CPI when too few
        windows are in reach — prices it far more faithfully.
        """
        if not self.spans or len(self.span_anchors) != len(self.spans):
            return self.estimated_cycles()
        measured_instr = sum(w[0] for w in self.windows)
        if measured_instr <= 0:
            return max(
                1,
                int(round(self.detailed_cycles + sum(s[0] for s in self.spans))),
            )
        estimate = float(self.detailed_cycles)
        for (instr, score), anchor in zip(self.spans, self.span_anchors):
            lo = max(0, anchor - 2)
            local = self.windows[lo : anchor + 2]
            if not local or sum(w[0] for w in local) <= 0:
                local = self.windows
            base, exposure = _fit_model(local, floor=0.5 / self.width)
            local_i = sum(w[0] for w in local)
            local_c = sum(w[1] for w in local)
            local_s = sum(w[2] for w in local)
            predicted = base * local_i + exposure * local_s
            if predicted > 0.0:
                k = local_c / predicted
                base *= k
                exposure *= k
            estimate += base * instr + exposure * score
        return max(1, int(round(estimate)))


def _solve(
    windows: List[Tuple[int, int, float]], floor: float
) -> Tuple[float, float]:
    """Closed-form ``cycles ≈ base·instructions + exposure·stall_score``.

    A through-origin two-parameter least-squares.  With too few windows,
    no stall-score variance, or a sign-violating solution, it degrades to
    plain CPI (exposure 0).
    """
    total_i = sum(w[0] for w in windows)
    total_c = sum(w[1] for w in windows)
    plain = (total_c / total_i if total_i else 1.0, 0.0)
    if len(windows) < 3:
        return plain
    sii = sxx = six = sic = sxc = 0.0
    for instr, cycles, score in windows:
        sii += instr * instr
        sxx += score * score
        six += instr * score
        sic += instr * cycles
        sxc += score * cycles
    det = sii * sxx - six * six
    if det <= 1e-9 or sxx <= 1e-9:
        return plain
    base = (sxx * sic - six * sxc) / det
    exposure = (sii * sxc - six * sic) / det
    if exposure < 0.0:
        return plain
    if base < floor:
        # Clamp the base CPI and re-fit the exposure alone.
        base = floor
        exposure = max(0.0, (sxc - base * six) / sxx)
    return base, exposure


def _fit_model(
    windows: List[Tuple[int, int, float]], floor: float
) -> Tuple[float, float]:
    """Pick the better extrapolation model by leave-one-out error.

    Candidates: plain whole-window CPI, and the two-parameter stall-score
    model.  For compute-bound threads the stall score is sparse noise and
    plain CPI wins; for memory-bound threads the score explains most of
    the window variance.  Leave-one-out prediction error on the measured
    windows decides per thread, which keeps either failure mode from
    leaking into the estimate.
    """
    if len(windows) < 4:
        return _solve(windows, floor)
    err_plain = 0.0
    err_model = 0.0
    for i, (instr, cycles, score) in enumerate(windows):
        rest = windows[:i] + windows[i + 1 :]
        rest_i = sum(w[0] for w in rest)
        rest_c = sum(w[1] for w in rest)
        cpi = rest_c / rest_i if rest_i else 1.0
        err_plain += (cycles - cpi * instr) ** 2
        base, exposure = _solve(rest, floor)
        err_model += (cycles - base * instr - exposure * score) ** 2
    if err_plain <= err_model:
        total_i = sum(w[0] for w in windows)
        total_c = sum(w[1] for w in windows)
        return (total_c / total_i if total_i else 1.0, 0.0)
    return _solve(windows, floor)


def execute_sampled(
    hierarchy: MemoryHierarchy,
    cores: List[PipelineCore],
    config: SamplingConfig,
    max_cycles: int = 50_000_000,
) -> Tuple[List[Tuple[int, SimThread]], int]:
    """Run prepared cores in sampled mode.

    Returns ``(threads, total_cycles)`` where ``threads`` flattens
    ``(core_index, SimThread)`` in core order with each thread's ``stats``
    rewritten to the sampled estimate: ``instructions`` is the full
    post-prefix budget and ``cycles`` the estimated total, so
    ``stats.ipc``/``stats.cpi`` are directly comparable to a full run.
    """
    window = config.window
    ff_span = config.interval - window
    states: Dict[int, _ThreadSampleState] = {}

    # Phase 0: functional warming stands in for the trace warm-up prefix
    # (its events are not part of the measured budget), and the full-run
    # snapshot machinery is neutralized — sampling does its own
    # detailed-window accounting.
    for core in cores:
        prefix = core.threads[0].warmup_instructions
        if prefix:
            core.functional_warm(prefix)
        weights = _event_weights(core)
        for thread in core.threads:
            states[id(thread)] = _ThreadSampleState(
                budget=thread.trace_len - thread.cursor,
                width=core.core.width,
                weights=weights,
            )
            thread._warm_snapshot = (0, 0, 0, {})

    while True:
        _run_window(cores, states, window, max_cycles)
        # Keep the lockstep clock coherent across cores between phases.
        clock = max(core.cycle for core in cores)
        for core in cores:
            core.cycle = clock
        if all(
            thread.cursor >= thread.trace_len
            for core in cores
            for thread in core.threads
        ):
            break
        for core in cores:
            counts = core.functional_warm(ff_span)
            for thread, (warmed, l2, llc, dram, mispred) in zip(
                core.threads, counts
            ):
                if warmed:
                    state = states[id(thread)]
                    state.spans.append(
                        (warmed, state.stall_score(l2, llc, dram, mispred))
                    )

    flat: List[Tuple[int, SimThread]] = []
    total_cycles = 1
    for core in cores:
        for thread in core.threads:
            state = states[id(thread)]
            stats = thread.stats
            stats.instructions = state.budget
            stats.cycles = state.estimated_cycles()
            if stats.cycles > total_cycles:
                total_cycles = stats.cycles
            flat.append((core.core_index, thread))
    return flat, total_cycles


#: Relative-difference floors per signature component — CPI first, then
#: L2/LLC/DRAM/mispredict rates per instruction.  A reference component
#: below its floor is compared *at* the floor, so sparse-event shot noise
#: (one extra DRAM miss in a compute window) cannot declare a phase.
_SIG_FLOORS = (0.25, 0.02, 0.01, 0.005, 0.01)


def _signature_distance(
    a: Tuple[float, ...], b: Tuple[float, ...]
) -> float:
    """Largest relative component difference between two window signatures."""
    return max(
        abs(x - y) / max(abs(y), floor)
        for x, y, floor in zip(a, b, _SIG_FLOORS)
    )


class LiveController:
    """Per-thread online phase detector plus span error controller.

    Feed it each closed detailed window (raw counters and the span
    model's prediction error on that window); read ``span`` for how far
    the thread may fast-forward next.  Stable, well-predicted execution
    grows the span geometrically toward ``max_span``; a phase change or
    an error-budget overrun collapses it so the new behaviour is
    re-sampled immediately.
    """

    __slots__ = (
        "config",
        "span",
        "window",
        "ref_sig",
        "err_ewma",
        "phase_changes",
        "windows_seen",
    )

    def __init__(self, config: LiveSamplingConfig):
        self.config = config
        self.span = config.min_span
        self.window = config.window
        self.ref_sig: Optional[Tuple[float, ...]] = None
        #: Smoothed span-model generalization error — ``None`` until the
        #: model has enough windows to measure it.  While unknown, the
        #: controller refuses to fast-forward at all (the model has not
        #: yet proven it can price a skipped span).
        self.err_ewma: Optional[float] = None
        self.phase_changes = 0
        self.windows_seen = 0

    def observe_window(
        self,
        instructions: int,
        cycles: int,
        l2: int,
        llc: int,
        dram: int,
        mispredicts: int,
        model_error: Optional[float] = None,
    ) -> None:
        """Digest one closed detailed window and adapt the next span."""
        if instructions <= 0:
            return
        cfg = self.config
        inv = 1.0 / instructions
        sig = (
            cycles * inv,
            l2 * inv,
            llc * inv,
            dram * inv,
            mispredicts * inv,
        )
        phase_change = False
        if self.ref_sig is None:
            self.ref_sig = sig
        elif _signature_distance(sig, self.ref_sig) > cfg.phase_threshold:
            phase_change = True
            self.phase_changes += 1
            self.ref_sig = sig  # the new phase becomes the reference
        else:
            self.ref_sig = tuple(
                0.5 * r + 0.5 * s for r, s in zip(self.ref_sig, sig)
            )
        if model_error is not None:
            if self.err_ewma is None:
                self.err_ewma = model_error
            else:
                a = cfg.error_smoothing
                self.err_ewma = (1.0 - a) * self.err_ewma + a * model_error
        self.windows_seen += 1
        if phase_change:
            # Shrink the span; once the span is already floored, the
            # remaining lever is a longer window — measure more, price
            # less (and feed the model/signature steadier data).
            if self.span <= cfg.min_span:
                self.window = min(
                    cfg.max_window, int(self.window * cfg.grow)
                )
            self.span = max(cfg.min_span, int(self.span / cfg.shrink))
        else:
            self.span = min(cfg.max_span, int(self.span * cfg.grow))
            self.window = max(cfg.window, int(self.window / cfg.grow))

    def warm_budget(
        self, detailed: int, warmed: int, max_fraction: float = 1.0
    ) -> int:
        """How many instructions this thread may fast-forward next round.

        The estimator's total CPI error is roughly the warmed fraction
        times the span model's pricing error, so holding
        ``warmed / total <= target_error / model_error`` keeps the
        *run-level* error inside the budget no matter how noisy the model
        is: a model that cannot generalize (or has not yet measured
        whether it can) simply earns no fast-forward, and the run
        degrades gracefully toward full detail.

        ``max_fraction`` additionally caps the warmed fraction outright —
        the live loop passes :attr:`LiveSamplingConfig.max_skip`, since
        span mispricing and (on multi-thread chips) alignment drift are
        invisible to the span model yet also scale with how much is
        skipped.
        """
        if self.err_ewma is None:
            return 0  # unproven model: stay in detail
        cfg = self.config
        f = cfg.target_error / max(self.err_ewma, 1e-9)
        f = min(f, max_fraction)
        if f >= 1.0:
            return self.span
        total = detailed + warmed + self.window
        allowed = (f * total - warmed) / (1.0 - f)
        if allowed <= 0.0:
            return 0
        return min(self.span, int(allowed))


def _recent_cpi(
    state: _ThreadSampleState, controller: LiveController
) -> float:
    """A thread's current CPI estimate, for cycle-proportional warming.

    Prefers the phase detector's smoothed reference signature (it tracks
    the *recent* phase); falls back to the whole-run measured window CPI,
    then to 1.0 before any window has closed.
    """
    if controller.ref_sig is not None:
        return max(controller.ref_sig[0], 1e-6)
    instr = sum(w[0] for w in state.windows)
    cycles = sum(w[1] for w in state.windows)
    if instr > 0:
        return max(cycles / instr, 1e-6)
    return 1.0


def _predict_total(
    fit: List[Tuple[int, int, float]],
    hold: List[Tuple[int, int, float]],
    width: int,
) -> float:
    """Fit the span model on ``fit`` windows (rescaled to their totals,
    exactly like the estimator) and predict ``hold``'s total cycles."""
    base, exposure = _fit_model(fit, floor=0.5 / width)
    fit_i = sum(w[0] for w in fit)
    fit_c = sum(w[1] for w in fit)
    fit_s = sum(w[2] for w in fit)
    predicted = base * fit_i + exposure * fit_s
    if predicted > 0.0:
        k = fit_c / predicted
        base *= k
        exposure *= k
    return base * sum(w[0] for w in hold) + exposure * sum(w[2] for w in hold)


def _model_generalization_error(state: _ThreadSampleState) -> Optional[float]:
    """Split-half generalization error of the span model.

    Fits the event-cost model on the even-indexed windows and scores its
    prediction of the odd-indexed windows' *aggregate* cycles (and vice
    versa, averaged).  The aggregate is the right scale to test at:
    individual windows have large intrinsic CPI variance that cancels
    across spans, so per-window prediction error would keep the
    controller permanently alarmed, while the aggregate error tracks the
    bias that actually survives into the estimate.
    """
    windows = state.windows
    if len(windows) < 4:
        return None
    total = 0.0
    for parity in (0, 1):
        fit = windows[parity::2]
        hold = windows[1 - parity::2]
        hold_c = sum(w[1] for w in hold)
        prediction = _predict_total(fit, hold, state.width)
        total += abs(prediction - hold_c) / max(float(hold_c), 1.0)
    return 0.5 * total


def execute_sampled_live(
    hierarchy: MemoryHierarchy,
    cores: List[PipelineCore],
    config: Optional[LiveSamplingConfig] = None,
    max_cycles: int = 50_000_000,
) -> Tuple[List[Tuple[int, SimThread]], int, LiveSamplingDiagnostics]:
    """Run prepared cores in live (adaptive) sampled mode.

    Same contract as :func:`execute_sampled` — returns flattened
    ``(core_index, SimThread)`` pairs with estimated stats and the chip
    cycle total — plus a :class:`LiveSamplingDiagnostics` describing what
    the controller did.  Cores stay in lockstep: every round runs one
    detailed window on all unfinished cores, then fast-forwards the whole
    chip by the *most cautious* thread's span (a thread entering a new
    phase pulls the chip back to detail with it, so cross-core contention
    is re-measured too).
    """
    if config is None:
        config = LiveSamplingConfig()
    window = config.window
    states: Dict[int, _ThreadSampleState] = {}
    controllers: Dict[int, LiveController] = {}

    # The warm-up prefix is *not* skipped up front (as the periodic mode
    # does): each thread crosses into its measured region at a different
    # wall-clock time in a full run — fast threads drain entirely before
    # slow threads' measured regions begin — and that staggering shapes
    # every shared-resource interaction.  The prefix simply participates
    # in the live loop at its natural rate (windows train the model and
    # controller; spans may skip it once the model has earned trust), and
    # the accounting boundary keeps its cycles out of the estimate.
    for core in cores:
        weights = _event_weights(core)
        for thread in core.threads:
            states[id(thread)] = _ThreadSampleState(
                budget=thread.trace_len - thread.warmup_instructions,
                width=core.core.width,
                weights=weights,
                boundary=thread.warmup_instructions,
            )
            controllers[id(thread)] = LiveController(config)
            # The snapshot machinery stays live (unlike the periodic
            # mode): it records the exact cycle each thread crosses its
            # accounting boundary mid-window.

    rng = random.Random(config.jitter_seed)  # deterministic, reproducible
    n_threads = sum(len(core.threads) for core in cores)
    windows_run = 0
    window_cycles = window  # first round: no CPI measured yet, assume 1.0
    while True:
        _run_window_cycles(cores, states, window_cycles, max_cycles)
        windows_run += 1
        clock = max(core.cycle for core in cores)
        for core in cores:
            core.cycle = clock
        # Digest the closed windows, then pick the chip-wide span and the
        # next window: the most cautious thread wins both (shortest span,
        # longest window) since fast-forward and windows are lockstep.
        # Both are chosen in *cycles* — each thread's proposal is its
        # controller's instruction count times its measured CPI — and
        # warming then advances each thread by ``span_cycles / its CPI``
        # instructions.  Equal-instruction treatment would distort
        # relative progress: a fast thread would stay artificially
        # co-resident with a slow SMT sibling for the whole run, when in
        # a full run it drains its budget early and leaves the sibling
        # running solo (and, across cores, a paused fast core would stop
        # competing for the LLC, DRAM banks and the bus).
        span_cycles = None
        cpis: Dict[int, float] = {}
        window_cycles = window
        for core in cores:
            for thread in core.threads:
                state = states[id(thread)]
                controller = controllers[id(thread)]
                events = state.last_window_events
                if events is not None:
                    controller.observe_window(
                        *events,
                        model_error=_model_generalization_error(state),
                    )
                if thread.cursor < thread.trace_len:
                    cpi = _recent_cpi(state, controller)
                    cpis[id(thread)] = cpi
                    proposal = cpi * controller.warm_budget(
                        sum(w[0] for w in state.windows),
                        sum(s[0] for s in state.spans),
                        max_fraction=config.max_skip,
                    )
                    span_cycles = (
                        proposal
                        if span_cycles is None
                        else min(span_cycles, proposal)
                    )
                    wc = int(controller.window * cpi + 0.5)
                    if wc > window_cycles:
                        window_cycles = wc
        if span_cycles is None:
            break  # every trace drained (and every ROB with it)
        # Jitter the span (deterministically) so the round length cannot
        # alias with periodic structure in the traces — fixed-period
        # sampling would keep landing windows on the same trace phase.
        span_cycles *= rng.uniform(0.7, 1.3)
        if span_cycles < 1.0:
            continue  # no thread has earned a fast-forward: stay detailed
        quotas = {
            id(t): int(span_cycles / cpis[id(t)] + 0.5) if id(t) in cpis else 0
            for core in cores
            for t in core.threads
        }
        # Model-guided warming, in small interleaved slices.
        #
        # Two distortions have to be avoided here.  First, replaying one
        # thread's full span at a time sweeps the shared LLC with each
        # span in turn, mass-evicting its neighbours' resident lines — a
        # contention pattern no real interleaving produces — so every
        # thread advances at most ~32 instructions per slice, keeping the
        # replay order close to the fine-grained execution interleaving
        # it stands in for.  Second, and subtler: every thread must skip
        # the SAME amount of virtual time (``span_cycles``), or their
        # cursors drift out of alignment and later windows co-run trace
        # regions that never actually coexist — shared-cache contention
        # then lands on the wrong regions, and the error compounds round
        # over round (on memory-bound mixes this reached several percent
        # of chip IPC, with large seed-to-seed variance).  A fixed
        # instruction quota from the EWMA CPI estimate is too blunt: the
        # estimate lags exactly where behaviour shifts.  Instead each
        # thread warms until the *priced* cost of what it has warmed —
        # the same ``base·instr + exposure·score`` model that will later
        # price the span — reaches ``span_cycles``.  Pacing and pricing
        # then agree by construction: whatever cycles the estimator will
        # charge for the span is exactly the virtual time the thread
        # skipped.  Threads too young for a model fit (fewer than three
        # windows) fall back to the CPI quota; a 4× cap bounds the
        # fast-forward when the model prices a region as nearly free.
        tallies = {
            id(t): [0, 0, 0, 0, 0] for core in cores for t in core.threads
        }
        virt = dict.fromkeys(tallies, 0.0)
        pricers = {
            id(t): states[id(t)].span_pricer()
            for core in cores
            for t in core.threads
        }
        while True:
            progressed = False
            for core in cores:
                slice_quotas = []
                for t in core.threads:
                    tid = id(t)
                    if quotas[tid] <= 0 or t.cursor >= t.trace_len:
                        slice_quotas.append(0)
                        continue
                    pricer = pricers[tid]
                    if pricer is None:
                        remaining = quotas[tid] - tallies[tid][0]
                    elif virt[tid] < span_cycles:
                        remaining = 4 * quotas[tid] - tallies[tid][0]
                    else:
                        remaining = 0
                    slice_quotas.append(max(0, min(32, remaining)))
                if not any(slice_quotas):
                    continue
                counts = core.functional_warm(slice_quotas)
                for t, c in zip(core.threads, counts):
                    if not c[0]:
                        continue
                    progressed = True
                    tid = id(t)
                    acc = tallies[tid]
                    for j in range(5):
                        acc[j] += c[j]
                    pricer = pricers[tid]
                    if pricer is not None:
                        base, exposure = pricer
                        virt[tid] += base * c[0] + exposure * states[
                            tid
                        ].stall_score(c[1], c[2], c[3], c[4])
            if not progressed:
                break
        for core in cores:
            for thread in core.threads:
                warmed, l2, llc, dram, mispred = tallies[id(thread)]
                if warmed:
                    states[id(thread)].record_span(
                        thread, warmed, l2, llc, dram, mispred
                    )

    flat: List[Tuple[int, SimThread]] = []
    total_cycles = 1
    detailed_instr = 0
    warmed_instr = 0
    phase_changes = 0
    max_err = 0.0
    for core in cores:
        for thread in core.threads:
            state = states[id(thread)]
            controller = controllers[id(thread)]
            detailed_instr += sum(w[0] for w in state.windows)
            warmed_instr += sum(s[0] for s in state.spans)
            phase_changes += controller.phase_changes
            if controller.err_ewma is not None and controller.err_ewma > max_err:
                max_err = controller.err_ewma
            stats = thread.stats
            stats.instructions = state.budget
            stats.cycles = state.estimated_cycles_local()
            if stats.cycles > total_cycles:
                total_cycles = stats.cycles
            flat.append((core.core_index, thread))
    diagnostics = LiveSamplingDiagnostics(
        windows=windows_run,
        detailed_instructions=detailed_instr,
        warmed_instructions=warmed_instr,
        phase_changes=phase_changes,
        max_model_error=max_err,
    )
    return flat, total_cycles, diagnostics


def _run_window_cycles(
    cores: List[PipelineCore],
    states: Dict[int, _ThreadSampleState],
    span_cycles: int,
    max_cycles: int,
) -> None:
    """Simulate one detailed window of ``span_cycles`` *cycles* on every
    core — the live mode's window runner.

    Unlike :func:`_run_window`'s per-thread instruction quotas, every
    core runs until the same bell rings, so no core ever freezes while
    another finishes its quota.  Heterogeneous chips make this matter: a
    solo thread on a medium core clears an instruction quota several
    times faster than an SMT pair on a big core, and pausing it would
    distort every shared resource it competes for (LLC capacity, DRAM
    banks, the off-chip bus) — each thread must stay co-resident for the
    same wall-clock interval it would share in a full run.  Threads whose
    traces drain mid-window stop naturally, exactly as in a full run.
    """
    active: List[PipelineCore] = []
    for core in cores:
        pending = False
        for thread in core.threads:
            states[id(thread)].open_window(thread, core.cycle)
            if thread.cursor < thread.trace_len or thread.rob:
                pending = True
        if pending:
            active.append(core)
    if active:
        end = max(core.cycle for core in active) + span_cycles
        events = [c.next_event_cycle() for c in active]
        while active:
            target = min(events)
            if target >= max_cycles:
                raise RuntimeError(
                    f"sampled simulation exceeded {max_cycles} cycles "
                    "without draining"
                )
            if target >= end:
                break  # no event left before the bell
            next_active: List[PipelineCore] = []
            next_events: List[int] = []
            for i, core in enumerate(active):
                if events[i] > target:
                    next_active.append(core)
                    next_events.append(events[i])
                    continue
                core.cycle = target
                core.step()
                if any(
                    t.cursor < t.trace_len or t.rob for t in core.threads
                ):
                    next_active.append(core)
                    next_events.append(core.next_event_cycle())
            active = next_active
            events = next_events
        for core in active:
            core.cycle = end  # pause in-flight work at the bell
    for core in cores:
        for thread in core.threads:
            states[id(thread)].close_window(thread, core.cycle)


def _run_window(
    cores: List[PipelineCore],
    states: Dict[int, _ThreadSampleState],
    window: int,
    max_cycles: int,
) -> None:
    """Simulate one detailed window on every core with unfinished threads.

    A core leaves the window once each of its threads has dispatched
    ``window`` instructions since the window started; a thread whose trace
    drains mid-window keeps its core stepping until the ROB empties, so
    the drain cycles are counted exactly as a full run would count them.
    """
    active: List[PipelineCore] = []
    for core in cores:
        pending = False
        for thread in core.threads:
            states[id(thread)].open_window(thread, core.cycle)
            if thread.cursor < thread.trace_len or thread.rob:
                pending = True
        if pending:
            active.append(core)

    events = [c.next_event_cycle() for c in active]
    while active:
        target = min(events)
        if target >= max_cycles:
            raise RuntimeError(
                f"sampled simulation exceeded {max_cycles} cycles "
                "without draining"
            )
        next_active: List[PipelineCore] = []
        next_events: List[int] = []
        for i, core in enumerate(active):
            if events[i] > target:
                next_active.append(core)
                next_events.append(events[i])
                continue
            core.cycle = target
            core.step()
            window_done = True
            for thread in core.threads:
                state = states[id(thread)]
                if thread.cursor < thread.trace_len:
                    if thread.cursor - state.window_start < window:
                        window_done = False
                elif thread.rob:
                    window_done = False
            if window_done:
                for thread in core.threads:
                    states[id(thread)].close_window(thread, core.cycle)
                continue
            next_active.append(core)
            next_events.append(core.next_event_cycle())
        active = next_active
        events = next_events

"""Sampled cycle-level simulation (Pac-Sim style periodic sampling).

Full cycle-level runs simulate every instruction in detail.  Sampled runs
split each thread's instruction stream into periods of ``interval``
instructions: a **detailed window** at the head of each period is simulated
cycle by cycle on the real pipeline, and the remainder is **fast-forwarded
with functional warming** — caches and branch predictors see every
reference through the real access paths, but no cycles elapse and no
timing state is touched.

Two properties make the estimate sharp:

* **Detailed windows are exact, not extrapolated.**  The clock does not
  advance while fast-forwarding, so the pipeline continues seamlessly from
  one window into the next — in-flight completion times stay valid, there
  is no drain/refill transient to discard, and every cycle spent inside a
  window is *measured*, not modelled.  Only the fast-forwarded spans are
  estimated.
* **Skipped spans are event-priced, not flat-rated.**  The synthetic
  traces have large short-range CPI variance, mostly driven by memory
  misses and branch-mispredict clusters — and functional warming *counts
  those events exactly* in the skipped spans (it runs the real cache and
  predictor state machines).  Span cycles are reconstructed with a
  per-thread model::

      cycles  ≈  a · instructions  +  s · stall_score

  where ``stall_score`` weighs each counted event (L2/LLC/DRAM data
  access, branch mispredict) by its *architectural* latency, and only the
  two scalars ``a`` (base CPI) and ``s`` (effective stall exposure, which
  absorbs memory-level parallelism and overlap) are fitted to the measured
  windows.  Fixing the event-cost ratios to the architecture keeps the fit
  stable with a handful of windows — fitting a free slope per event would
  chase burst noise.  The fit is rescaled so the model reproduces the
  measured window totals exactly, and degrades gracefully to whole-window
  CPI extrapolation when a thread shows no stall-score variance.

The initial trace warm-up prefix (cold-cache exclusion in full runs) is
replaced entirely by functional warming — same architectural effect at
near-zero cost.  ``warmup`` sizes the minimum detailed window
(``window = max(2 * warmup, interval // 4)``) so the fast-forward boundary
(stale dependence ring, leftover in-flight ROB entries) is amortized over
a long measured region.

Sampling is an *approximation*: reported per-thread cycle counts are
estimates (``tests/test_sampling.py`` holds CPI error against full
simulation on the validation-tier workloads), and cache/mispredict
counters cover only the detailed windows.  Use full runs when exact
statistics matter; use sampling to make long validation sweeps cheap.
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.core import PipelineCore, SimThread


@dataclass(frozen=True)
class SamplingConfig:
    """Knobs for sampled simulation.

    Parameters
    ----------
    interval:
        Per-thread instructions in one sampling period (detailed window
        plus fast-forwarded span).
    warmup:
        Sizes the minimum detailed window: the window is at least twice
        this, so fast-forward boundary artifacts stay a small fraction of
        every measured region.
    """

    interval: int
    warmup: int = 150

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError(f"interval must be >= 1, got {self.interval}")
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.window >= self.interval:
            raise ValueError(
                f"sampling interval {self.interval} leaves no room to "
                f"fast-forward past the detailed window ({self.window}); "
                "use a larger interval or a smaller warmup"
            )

    @property
    def window(self) -> int:
        """Detailed-window length: a quarter of the period, but at least
        twice the warm-up so boundary artifacts are amortized."""
        return max(2 * self.warmup, self.interval // 4, 1)


def _event_weights(core: PipelineCore) -> Tuple[float, float, float, float]:
    """Architectural cycle costs of (l2, llc, dram, mispredict) events.

    These fix the *ratios* between event costs in the extrapolation model;
    the fitted exposure scalar absorbs overlap, queueing and MLP, so only
    the relative magnitudes need to be right.
    """
    cfg = core.core
    freq = cfg.frequency_ghz
    hierarchy = core.hierarchy
    w_l2 = float(cfg.l2.latency_cycles)
    w_llc = hierarchy._llc_hit_ns() * freq
    dram = hierarchy.dram
    w_dram = w_llc + (
        dram.config.access_latency_ns + dram.transfer_ns
    ) * freq
    w_mp = float(cfg.frontend_depth + 2)
    return (w_l2, w_llc, w_dram, w_mp)


class _ThreadSampleState:
    """Measurement bookkeeping for one hardware thread."""

    __slots__ = (
        "budget",
        "width",
        "weights",
        "window_start",
        "win_cycle0",
        "win_levels0",
        "win_mispred0",
        "win_active",
        "windows",
        "spans",
        "detailed_cycles",
    )

    def __init__(
        self,
        budget: int,
        width: int,
        weights: Tuple[float, float, float, float],
    ):
        self.budget = budget  # post-prefix instructions to account for
        self.width = width
        self.weights = weights
        self.window_start = 0
        self.win_cycle0 = 0
        self.win_levels0 = (0, 0, 0)
        self.win_mispred0 = 0
        self.win_active = True
        #: Per detailed window: (instructions, cycles, stall_score) — the
        #: fitting data for the event-cost model.
        self.windows: List[Tuple[int, int, float]] = []
        #: Per fast-forwarded span: (instructions, stall_score) — the
        #: regions whose cycles the model reconstructs.
        self.spans: List[Tuple[int, float]] = []
        #: Cycles spent in detailed windows — *exact*, not estimated (the
        #: pipeline runs continuously through them).
        self.detailed_cycles = 0

    def stall_score(self, l2: int, llc: int, dram: int, mispred: int) -> float:
        w_l2, w_llc, w_dram, w_mp = self.weights
        return w_l2 * l2 + w_llc * llc + w_dram * dram + w_mp * mispred

    # -- window edges ------------------------------------------------------ #

    def _levels(self, thread: SimThread) -> Tuple[int, int, int]:
        hits = thread.stats.level_hits
        return (hits.get("l2", 0), hits.get("llc", 0), hits.get("dram", 0))

    def open_window(self, thread: SimThread, cycle: int) -> None:
        self.window_start = thread.cursor
        self.win_cycle0 = cycle
        self.win_levels0 = self._levels(thread)
        self.win_mispred0 = thread.stats.branch_mispredicts
        self.win_active = thread.done_cycle is None

    def close_window(self, thread: SimThread, cycle: int) -> None:
        if not self.win_active:
            return
        end = thread.done_cycle if thread.done_cycle is not None else cycle
        cycles = max(0, end - self.win_cycle0)
        instr = thread.cursor - self.window_start
        self.detailed_cycles += cycles
        if instr > 0:
            l2, llc, dram = self._levels(thread)
            l20, llc0, dram0 = self.win_levels0
            score = self.stall_score(
                l2 - l20,
                llc - llc0,
                dram - dram0,
                thread.stats.branch_mispredicts - self.win_mispred0,
            )
            self.windows.append((instr, cycles, score))
        if thread.done_cycle is not None:
            self.win_active = False

    # -- extrapolation ---------------------------------------------------- #

    def estimated_cycles(self) -> int:
        """Exact detailed-window cycles plus event-priced span estimates."""
        span_instr = sum(s[0] for s in self.spans)
        if span_instr <= 0:
            return max(1, self.detailed_cycles)  # everything was detailed
        measured_instr = sum(w[0] for w in self.windows)
        measured_cycles = sum(w[1] for w in self.windows)
        measured_score = sum(w[2] for w in self.windows)
        if measured_instr <= 0:
            # Degenerate: no window recorded any instructions; assume one
            # cycle per skipped instruction.
            return max(1, self.detailed_cycles + span_instr)
        base, exposure = _fit_model(self.windows, floor=0.5 / self.width)
        # Rescale so the model reproduces the measured totals exactly: any
        # systematic misfit then cancels between windows and spans.
        predicted = base * measured_instr + exposure * measured_score
        if predicted > 0.0:
            k = measured_cycles / predicted
            base *= k
            exposure *= k
        estimate = float(self.detailed_cycles)
        for instr, score in self.spans:
            estimate += base * instr + exposure * score
        return max(1, int(round(estimate)))


def _solve(
    windows: List[Tuple[int, int, float]], floor: float
) -> Tuple[float, float]:
    """Closed-form ``cycles ≈ base·instructions + exposure·stall_score``.

    A through-origin two-parameter least-squares.  With too few windows,
    no stall-score variance, or a sign-violating solution, it degrades to
    plain CPI (exposure 0).
    """
    total_i = sum(w[0] for w in windows)
    total_c = sum(w[1] for w in windows)
    plain = (total_c / total_i if total_i else 1.0, 0.0)
    if len(windows) < 3:
        return plain
    sii = sxx = six = sic = sxc = 0.0
    for instr, cycles, score in windows:
        sii += instr * instr
        sxx += score * score
        six += instr * score
        sic += instr * cycles
        sxc += score * cycles
    det = sii * sxx - six * six
    if det <= 1e-9 or sxx <= 1e-9:
        return plain
    base = (sxx * sic - six * sxc) / det
    exposure = (sii * sxc - six * sic) / det
    if exposure < 0.0:
        return plain
    if base < floor:
        # Clamp the base CPI and re-fit the exposure alone.
        base = floor
        exposure = max(0.0, (sxc - base * six) / sxx)
    return base, exposure


def _fit_model(
    windows: List[Tuple[int, int, float]], floor: float
) -> Tuple[float, float]:
    """Pick the better extrapolation model by leave-one-out error.

    Candidates: plain whole-window CPI, and the two-parameter stall-score
    model.  For compute-bound threads the stall score is sparse noise and
    plain CPI wins; for memory-bound threads the score explains most of
    the window variance.  Leave-one-out prediction error on the measured
    windows decides per thread, which keeps either failure mode from
    leaking into the estimate.
    """
    if len(windows) < 4:
        return _solve(windows, floor)
    err_plain = 0.0
    err_model = 0.0
    for i, (instr, cycles, score) in enumerate(windows):
        rest = windows[:i] + windows[i + 1 :]
        rest_i = sum(w[0] for w in rest)
        rest_c = sum(w[1] for w in rest)
        cpi = rest_c / rest_i if rest_i else 1.0
        err_plain += (cycles - cpi * instr) ** 2
        base, exposure = _solve(rest, floor)
        err_model += (cycles - base * instr - exposure * score) ** 2
    if err_plain <= err_model:
        total_i = sum(w[0] for w in windows)
        total_c = sum(w[1] for w in windows)
        return (total_c / total_i if total_i else 1.0, 0.0)
    return _solve(windows, floor)


def execute_sampled(
    hierarchy: MemoryHierarchy,
    cores: List[PipelineCore],
    config: SamplingConfig,
    max_cycles: int = 50_000_000,
) -> Tuple[List[Tuple[int, SimThread]], int]:
    """Run prepared cores in sampled mode.

    Returns ``(threads, total_cycles)`` where ``threads`` flattens
    ``(core_index, SimThread)`` in core order with each thread's ``stats``
    rewritten to the sampled estimate: ``instructions`` is the full
    post-prefix budget and ``cycles`` the estimated total, so
    ``stats.ipc``/``stats.cpi`` are directly comparable to a full run.
    """
    window = config.window
    ff_span = config.interval - window
    states: Dict[int, _ThreadSampleState] = {}

    # Phase 0: functional warming stands in for the trace warm-up prefix
    # (its events are not part of the measured budget), and the full-run
    # snapshot machinery is neutralized — sampling does its own
    # detailed-window accounting.
    for core in cores:
        prefix = core.threads[0].warmup_instructions
        if prefix:
            core.functional_warm(prefix)
        weights = _event_weights(core)
        for thread in core.threads:
            states[id(thread)] = _ThreadSampleState(
                budget=thread.trace_len - thread.cursor,
                width=core.core.width,
                weights=weights,
            )
            thread._warm_snapshot = (0, 0, 0, {})

    while True:
        _run_window(cores, states, window, max_cycles)
        # Keep the lockstep clock coherent across cores between phases.
        clock = max(core.cycle for core in cores)
        for core in cores:
            core.cycle = clock
        if all(
            thread.cursor >= thread.trace_len
            for core in cores
            for thread in core.threads
        ):
            break
        for core in cores:
            counts = core.functional_warm(ff_span)
            for thread, (warmed, l2, llc, dram, mispred) in zip(
                core.threads, counts
            ):
                if warmed:
                    state = states[id(thread)]
                    state.spans.append(
                        (warmed, state.stall_score(l2, llc, dram, mispred))
                    )

    flat: List[Tuple[int, SimThread]] = []
    total_cycles = 1
    for core in cores:
        for thread in core.threads:
            state = states[id(thread)]
            stats = thread.stats
            stats.instructions = state.budget
            stats.cycles = state.estimated_cycles()
            if stats.cycles > total_cycles:
                total_cycles = stats.cycles
            flat.append((core.core_index, thread))
    return flat, total_cycles


def _run_window(
    cores: List[PipelineCore],
    states: Dict[int, _ThreadSampleState],
    window: int,
    max_cycles: int,
) -> None:
    """Simulate one detailed window on every core with unfinished threads.

    A core leaves the window once each of its threads has dispatched
    ``window`` instructions since the window started; a thread whose trace
    drains mid-window keeps its core stepping until the ROB empties, so
    the drain cycles are counted exactly as a full run would count them.
    """
    active: List[PipelineCore] = []
    for core in cores:
        pending = False
        for thread in core.threads:
            states[id(thread)].open_window(thread, core.cycle)
            if thread.cursor < thread.trace_len or thread.rob:
                pending = True
        if pending:
            active.append(core)

    events = [c.next_event_cycle() for c in active]
    while active:
        target = min(events)
        if target >= max_cycles:
            raise RuntimeError(
                f"sampled simulation exceeded {max_cycles} cycles "
                "without draining"
            )
        next_active: List[PipelineCore] = []
        next_events: List[int] = []
        for i, core in enumerate(active):
            if events[i] > target:
                next_active.append(core)
                next_events.append(events[i])
                continue
            core.cycle = target
            core.step()
            window_done = True
            for thread in core.threads:
                state = states[id(thread)]
                if thread.cursor < thread.trace_len:
                    if thread.cursor - state.window_start < window:
                        window_done = False
                elif thread.rob:
                    window_done = False
            if window_done:
                for thread in core.threads:
                    states[id(thread)].close_window(thread, core.cycle)
                continue
            next_active.append(core)
            next_events.append(core.next_event_cycle())
        active = next_active
        events = next_events

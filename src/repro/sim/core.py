"""Cycle-level pipeline models: out-of-order and in-order cores with SMT.

One :class:`PipelineCore` advances cycle by cycle:

* **fetch/dispatch** — up to ``width`` instructions per cycle enter the
  back-end, shared round-robin among the resident hardware threads (the
  paper's SMT fetch policy [24]); a thread stalls on branch mispredictions
  (front-end redirect) and instruction-cache misses;
* **out-of-order back-end** — each thread owns a statically partitioned ROB
  slice; a dispatched instruction issues once its register producer has
  completed and a functional unit of its class is free, so independent
  instructions (including loads) overlap — memory-level parallelism emerges
  naturally from the window;
* **in-order back-end** (small cores) — dispatch blocks until the
  instruction's producer has completed (stall-on-use) and miss latencies
  serialize; with two hardware threads the core switches to the other
  thread's instructions while one is stalled (fine-grained MT);
* **commit** — in order per thread, bounded by width.

Memory latencies come from the shared :class:`~repro.memory.hierarchy.
MemoryHierarchy`, so co-running threads and other cores contend for L2/LLC
capacity, DRAM banks and the off-chip bus with real state.

Two fast paths keep this tier usable for cross-validation sweeps without
changing a single reported number:

* the per-cycle work loops bind hot attributes to locals, the functional-
  unit issue probe hops a path-compressed next-free-cycle skip list instead
  of scanning cycle by cycle, and producer completion times live in a flat
  ring buffer;
* **idle-cycle skipping** (:meth:`PipelineCore.next_event_cycle`): when no
  thread can commit, dispatch or finish before some cycle T, the clock
  advances straight to T.  The skip is *exact* — between the current cycle
  and T the naive loop would not change any architectural or statistical
  state — so fast-forwarded runs are bit-identical to naive ones (a golden
  test asserts this across core types and fetch policies).
"""

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.memory.hierarchy import MemoryHierarchy
from repro.microarch.branch import predictor_for_core
from repro.microarch.config import CoreConfig
from repro.sim.results import CoreSimStats
from repro.workloads.tracegen import EXEC_LATENCY, TraceInstruction

#: Ring size for producer completion-time tracking (max dependence distance).
_DEP_WINDOW = 64
_DEP_MASK = _DEP_WINDOW - 1

#: Functional-unit class per instruction kind (int ops and branches share
#: the integer ALUs).
_FU_CLASS = {
    "int": "int",
    "branch": "int",
    "load": "ldst",
    "store": "ldst",
    "muldiv": "muldiv",
    "fp": "fp",
}

#: Issue-slot tables are pruned once they hold this many distinct cycles.
_FU_PRUNE_LIMIT = 4096

#: Sentinel for "no event will ever happen" (all threads drained).
_NEVER = (1 << 63) - 1


class SimThread:
    """Architectural state of one hardware thread on a core."""

    def __init__(
        self,
        thread_id: int,
        trace: Sequence[TraceInstruction],
        warmup_instructions: int = 0,
    ):
        self.thread_id = thread_id
        self.trace = trace
        self.trace_len = len(trace)
        self.cursor = 0
        self.warmup_instructions = min(warmup_instructions, max(0, len(trace) - 1))
        self.stats = CoreSimStats()
        #: Per-thread branch predictor (SMT threads keep private history;
        #: table sharing/aliasing between contexts is not modelled).
        self.predictor = None  # installed by the owning PipelineCore
        self._warm_snapshot: Optional[Tuple[int, int, int, Dict[str, int]]] = None
        #: Completion cycles of the last _DEP_WINDOW dispatched instructions,
        #: as a flat ring buffer (O(1) lookup at any dependence distance).
        self._comp_ring: List[int] = [0] * _DEP_WINDOW
        self._comp_count = 0
        #: In-flight (program-ordered) completion times awaiting commit.
        self.rob: Deque[int] = deque()
        self.fetch_stalled_until = 0
        self.last_fetch_line = -1
        self.done_cycle: Optional[int] = None

    @property
    def finished(self) -> bool:
        return self.cursor >= self.trace_len and not self.rob

    def maybe_snapshot(self, now: int) -> None:
        """Record the warm-up boundary so cold misses are excluded."""
        if self._warm_snapshot is None and self.cursor >= self.warmup_instructions:
            self.stats.cycles = now  # temporary marker; finalized at drain
            self._warm_snapshot = (
                self.stats.instructions,
                now,
                self.stats.branch_mispredicts,
                dict(self.stats.level_hits),
            )

    def finalize_stats(self, done_cycle: int) -> None:
        """Convert cumulative counters into measured-region statistics."""
        if self._warm_snapshot is None:
            self.stats.cycles = done_cycle
            return
        instr0, cycle0, mispred0, levels0 = self._warm_snapshot
        self.stats.instructions -= instr0
        self.stats.cycles = max(1, done_cycle - cycle0)
        self.stats.branch_mispredicts -= mispred0
        for level, count in levels0.items():
            self.stats.level_hits[level] = self.stats.level_hits[level] - count

    def producer_completion(self, dep_distance: int, now: int) -> int:
        """Cycle at which this instruction's register input becomes ready."""
        if (
            dep_distance <= 0
            or dep_distance > self._comp_count
            or dep_distance > _DEP_WINDOW
        ):
            return now
        c = self._comp_ring[(self._comp_count - dep_distance) & _DEP_MASK]
        return c if c > now else now

    def record_completion(self, completion: int) -> None:
        """Append one dispatched instruction's completion cycle."""
        count = self._comp_count
        self._comp_ring[count & _DEP_MASK] = completion
        self._comp_count = count + 1

    def reset_pipeline_state(self, now: int) -> None:
        """Drop in-flight state (sampled simulation window boundaries).

        Clears the ROB and dependence ring as if the pipeline drained; the
        architectural warm state (predictor, cache contents via the shared
        hierarchy, cursor position) is untouched.
        """
        self.rob.clear()
        self._comp_ring = [0] * _DEP_WINDOW
        self._comp_count = 0
        if self.fetch_stalled_until < now:
            self.fetch_stalled_until = now


class PipelineCore:
    """One core (out-of-order or in-order) executing up to N SMT threads."""

    def __init__(
        self,
        core: CoreConfig,
        core_index: int,
        hierarchy: MemoryHierarchy,
        traces: Sequence[Sequence[TraceInstruction]],
        warmup_instructions: int = 0,
        fetch_policy: str = "roundrobin",
    ):
        if fetch_policy not in ("roundrobin", "icount"):
            raise ValueError(
                f"fetch_policy must be 'roundrobin' or 'icount', "
                f"got {fetch_policy!r}"
            )
        self.fetch_policy = fetch_policy
        if not traces:
            raise ValueError("need at least one thread trace")
        if len(traces) > core.max_smt_contexts:
            raise ValueError(
                f"{core.name} core supports {core.max_smt_contexts} hardware "
                f"threads, got {len(traces)}"
            )
        self.core = core
        self.core_index = core_index
        self.hierarchy = hierarchy
        self.threads = [
            SimThread(i, t, warmup_instructions) for i, t in enumerate(traces)
        ]
        for thread in self.threads:
            thread.predictor = predictor_for_core(core.is_out_of_order)
        self.cycle = 0
        self._n_threads = len(self.threads)
        self._is_ooo = core.is_out_of_order
        self._width = core.width
        self._freq = core.frequency_ghz
        #: Instruction fetches dedup at the core's own L1I line granularity.
        self._l1i_line_bytes = core.l1i.line_bytes
        self._rob_share = (
            core.rob_size // len(self.threads) if core.is_out_of_order else core.width * 2
        )
        fu = core.functional_units
        #: Per-cycle issue-slot usage per functional-unit class.  Issue picks
        #: the first cycle >= ready with a free slot (hole-filling, so an
        #: instruction that becomes ready early is not blocked behind
        #: reservations made for later-ready instructions — proper
        #: out-of-order issue).
        self._fu_units: Dict[str, int] = {
            "int": fu.int_alu,
            "ldst": fu.load_store,
            "muldiv": fu.mul_div,
            "fp": fu.fp,
        }
        self._fu_busy: Dict[str, Dict[int, int]] = {k: {} for k in self._fu_units}
        #: Next-free-cycle skip list per class: for a saturated cycle ``c``,
        #: ``_fu_next[cls][c]`` points at the next cycle that might still
        #: have a free slot (path-compressed as probes walk it).
        self._fu_next: Dict[str, Dict[int, int]] = {k: {} for k in self._fu_units}

    # ------------------------------------------------------------------ #
    # helpers                                                             #
    # ------------------------------------------------------------------ #

    def _now_ns(self) -> float:
        return self.cycle / self._freq

    def _fu_class(self, kind: str) -> str:
        return _FU_CLASS.get(kind, "int")

    def _acquire_fu(self, kind: str, ready: int) -> int:
        """Earliest cycle >= ``ready`` with a free unit of this class."""
        cls = _FU_CLASS[kind]
        units = self._fu_units[cls]
        busy = self._fu_busy[cls]
        if len(busy) > _FU_PRUNE_LIMIT:
            self._prune_fu_state()
        t = ready
        used = busy.get(t, 0)
        if used >= units:
            # Saturated: hop the next-free skip list (union-find style with
            # path compression) instead of probing one cycle at a time.
            nxt = self._fu_next[cls]
            path = []
            while used >= units:
                path.append(t)
                t = nxt.get(t, t + 1)
                used = busy.get(t, 0)
            for c in path:
                nxt[c] = t
        busy[t] = used + 1
        return t

    def _prune_fu_state(self) -> None:
        """Drop issue-slot bookkeeping for cycles already in the past.

        Triggered by table *size* (not a wall-cycle stride), so long memory
        stalls cannot accumulate unbounded state; the tables are compacted
        in place.  Reservations at cycles < ``self.cycle`` can never be
        probed again (issue ready times are always >= the current cycle),
        so dropping them never changes an issue decision.
        """
        now = self.cycle
        for cls, busy in self._fu_busy.items():
            if len(busy) <= _FU_PRUNE_LIMIT // 2:
                continue
            kept = {c: n for c, n in busy.items() if c >= now}
            busy.clear()
            busy.update(kept)
            nxt = self._fu_next[cls]
            kept_next = {c: t for c, t in nxt.items() if c >= now}
            nxt.clear()
            nxt.update(kept_next)

    def _fetch_line(self, thread: SimThread, instr: TraceInstruction) -> None:
        """Model instruction-cache behaviour at cache-line granularity."""
        line = instr.pc // self._l1i_line_bytes
        if line == thread.last_fetch_line:
            return
        thread.last_fetch_line = line
        self._fetch_miss(thread, instr.pc)

    def _fetch_miss(self, thread: SimThread, pc: int) -> None:
        """Charge the i-cache for a new fetch line (slow path)."""
        result = self.hierarchy.instruction_access(
            self.core_index, pc, self.cycle / self._freq
        )
        if result.level != "l1":
            # The front end runs ahead and next-line-prefetches sequential
            # code, hiding most of an i-miss behind the fetch buffer; only a
            # fraction of the latency reaches dispatch.
            delay = int(result.latency_ns * self._freq * 0.4) + 1
            stalled = self.cycle + delay
            if stalled > thread.fetch_stalled_until:
                thread.fetch_stalled_until = stalled

    # ------------------------------------------------------------------ #
    # one cycle                                                           #
    # ------------------------------------------------------------------ #

    def step(self) -> None:
        """Advance the core by one cycle (commit, then dispatch)."""
        now = self.cycle
        width = self._width
        threads = self.threads

        # Commit: in order per thread, up to `width` per thread; a thread
        # whose trace and ROB both drained records its finish cycle.
        for thread in threads:
            rob = thread.rob
            if rob:
                retired = 0
                while retired < width and rob and rob[0] <= now:
                    rob.popleft()
                    retired += 1
            if (
                not rob
                and thread.done_cycle is None
                and thread.cursor >= thread.trace_len
            ):
                thread.done_cycle = now
                thread.finalize_stats(now)

        # Dispatch: share the core width across threads.  Round-robin
        # rotates priority cycle by cycle [24]; ICOUNT [31] gives the
        # thread with the fewest in-flight instructions first pick, which
        # keeps fast-moving threads moving.
        budget = width
        n = self._n_threads
        if n == 1:
            order = threads
        elif self.fetch_policy == "icount":
            order = sorted(threads, key=_rob_depth)
        else:
            start = now % n
            order = threads[start:] + threads[:start]
        rob_share = self._rob_share
        is_ooo = self._is_ooo
        dispatch = self._dispatch
        for thread in order:
            if budget <= 0:
                break
            rob = thread.rob
            trace = thread.trace
            tlen = thread.trace_len
            while (
                budget > 0
                and thread.cursor < tlen
                and now >= thread.fetch_stalled_until
                and len(rob) < rob_share
            ):
                if (
                    not is_ooo
                    and thread.producer_completion(
                        trace[thread.cursor].dep_distance, now
                    )
                    > now
                ):
                    # Stall-on-use: the next instruction's input is not ready.
                    break
                dispatch(thread, now)
                budget -= 1
        self.cycle = now + 1

    def _can_dispatch(self, thread: SimThread, now: int) -> bool:
        if thread.cursor >= thread.trace_len:
            return False
        if now < thread.fetch_stalled_until:
            return False
        if len(thread.rob) >= self._rob_share:
            return False
        if not self._is_ooo:
            # Stall-on-use: the next instruction must have its input ready.
            instr = thread.trace[thread.cursor]
            if thread.producer_completion(instr.dep_distance, now) > now:
                return False
        return True

    def _dispatch(self, thread: SimThread, now: int) -> None:
        cursor = thread.cursor
        instr = thread.trace[cursor]
        thread.cursor = cursor + 1
        line = instr.pc // self._l1i_line_bytes
        if line != thread.last_fetch_line:
            thread.last_fetch_line = line
            self._fetch_miss(thread, instr.pc)

        kind = instr.kind
        ready = thread.producer_completion(instr.dep_distance, now)
        issue = self._acquire_fu(kind, ready)
        latency = EXEC_LATENCY[kind]
        stats = thread.stats
        if kind == "load" or kind == "store":
            freq = self._freq
            result = self.hierarchy.data_access(
                self.core_index,
                instr.address,
                issue / freq,
                is_write=(kind == "store"),
                pc=instr.pc,
            )
            level = result.level
            stats.level_hits[level] = stats.level_hits.get(level, 0) + 1
            mem_cycles = (
                int(result.latency_ns * freq)
                if kind == "load"
                else 1  # stores retire through the write buffer
            )
            total = latency + mem_cycles
            completion = issue + (total if total > 1 else 1)
        else:
            completion = issue + latency

        if kind == "branch":
            # A real predictor resolves the trace's concrete outcome; the
            # front end redirects once the branch executes.
            if thread.predictor.update(instr.pc, instr.taken):
                stats.branch_mispredicts += 1
                redirect = completion + self.core.frontend_depth
                if redirect > thread.fetch_stalled_until:
                    thread.fetch_stalled_until = redirect

        thread.record_completion(completion)
        thread.rob.append(completion)
        stats.instructions += 1
        if thread._warm_snapshot is None:
            thread.maybe_snapshot(now)

    # ------------------------------------------------------------------ #
    # idle-cycle skipping                                                 #
    # ------------------------------------------------------------------ #

    def next_event_cycle(self) -> int:
        """Earliest cycle >= ``self.cycle`` at which :meth:`step` can act.

        "Act" means: retire at least one ROB entry, record a thread finish,
        or dispatch at least one instruction.  Between the current cycle
        and the returned cycle the naive per-cycle loop provably does
        nothing — per-thread gating values (ROB head completion, fetch
        stall deadline, producer completion for stall-on-use) only change
        when a commit or dispatch happens — so advancing the clock straight
        to the returned cycle is bit-identical to stepping through.

        Returns a huge sentinel when every thread has drained.
        """
        now = self.cycle
        best = _NEVER
        rob_share = self._rob_share
        is_ooo = self._is_ooo
        for thread in self.threads:
            rob = thread.rob
            if rob:
                head = rob[0]
                if head <= now:
                    return now
                if head < best:
                    best = head
                if len(rob) >= rob_share:
                    # Dispatch gated on commit; the head event covers it.
                    continue
            if thread.cursor < thread.trace_len:
                ready = thread.fetch_stalled_until
                if not is_ooo:
                    pr = thread.producer_completion(
                        thread.trace[thread.cursor].dep_distance, now
                    )
                    if pr > ready:
                        ready = pr
                if ready <= now:
                    return now
                if ready < best:
                    best = ready
        return best

    # ------------------------------------------------------------------ #
    # functional warming (sampled simulation)                             #
    # ------------------------------------------------------------------ #

    def functional_warm(
        self, per_thread: int, dram_addresses: Optional[List[int]] = None
    ) -> List[Tuple[int, int, int, int, int]]:
        """Advance every thread up to ``per_thread`` instructions with
        functional warming only.

        Caches see every reference (contents, LRU and dirty state update
        through the real access path) and branch predictors train on every
        outcome, but no cycles pass, no timing state (DRAM banks, off-chip
        bus) is touched, and no statistics are recorded — the Pac-Sim-style
        fast-forward between detailed windows.  Returns, per thread,
        ``(instructions_warmed, l2_hits, llc_hits, dram_accesses,
        branch_mispredicts)`` for the data stream — the stall events the
        sampled tier's extrapolation model prices (matching the levels a
        detailed window records in ``stats.level_hits``).

        ``dram_addresses``, if given, collects the address of every access
        that missed all cache levels (data and instruction side), so the
        caller can replay them into the DRAM timing model — warming bank
        and bus queues that the functional pass leaves untouched.
        """
        caches = self.hierarchy.core_caches[self.core_index]
        l1i, l1d, l2 = caches.l1i, caches.l1d, caches.l2
        llc = self.hierarchy.llc
        line_bytes = self._l1i_line_bytes
        out: List[Tuple[int, int, int, int, int]] = []
        for thread in self.threads:
            trace = thread.trace
            end = min(thread.trace_len, thread.cursor + per_thread)
            predictor = thread.predictor
            last_line = thread.last_fetch_line
            l2_hits = 0
            llc_hits = 0
            dram = 0
            mispredicts = 0
            for cursor in range(thread.cursor, end):
                instr = trace[cursor]
                line = instr.pc // line_bytes
                if line != last_line:
                    last_line = line
                    if not l1i.access(instr.pc):
                        if not l2.access(instr.pc):
                            if not llc.access(instr.pc):
                                if dram_addresses is not None:
                                    dram_addresses.append(instr.pc)
                kind = instr.kind
                if kind == "load" or kind == "store":
                    is_write = kind == "store"
                    if not l1d.access(instr.address, is_write):
                        if l2.access(instr.address, is_write):
                            l2_hits += 1
                        elif llc.access(instr.address, is_write):
                            llc_hits += 1
                        else:
                            dram += 1
                            if dram_addresses is not None:
                                dram_addresses.append(instr.address)
                elif kind == "branch":
                    if predictor.update(instr.pc, instr.taken):
                        mispredicts += 1
            out.append((end - thread.cursor, l2_hits, llc_hits, dram, mispredicts))
            thread.cursor = end
            thread.last_fetch_line = last_line
        return out

    # ------------------------------------------------------------------ #
    # run loop                                                            #
    # ------------------------------------------------------------------ #

    @property
    def finished(self) -> bool:
        return all(t.finished for t in self.threads)

    def run(self, max_cycles: int = 50_000_000, fast_forward: bool = True) -> None:
        """Run until every thread has drained its trace.

        ``fast_forward`` enables exact idle-cycle skipping (see
        :meth:`next_event_cycle`); disabling it steps the naive per-cycle
        loop — results are bit-identical either way.
        """
        threads = self.threads
        while any(t.done_cycle is None for t in threads):
            if self.cycle >= max_cycles:
                raise RuntimeError(
                    f"core {self.core_index} exceeded {max_cycles} cycles; "
                    "deadlocked or trace too long"
                )
            if fast_forward:
                target = self.next_event_cycle()
                if target > self.cycle:
                    if target >= max_cycles:
                        self.cycle = max_cycles
                        continue  # raises on the next loop check
                    self.cycle = target
            self.step()
        for thread in threads:
            if thread.done_cycle is None:
                thread.done_cycle = self.cycle
                thread.finalize_stats(self.cycle)
        self.hierarchy.publish_metrics()


def _rob_depth(thread: SimThread) -> int:
    """ICOUNT sort key: in-flight instruction count."""
    return len(thread.rob)
